//! Pattern classification: the vocabulary the paper introduces for talking
//! about queries across languages — FIO vs. FOI aggregation (§2.5),
//! aggregate roles (value vs. test, §4), and overall query shape.

use arc_core::ast::{AggFunc, Collection};
use arc_core::binder::{AggRole, Binder, BoundInfo};

/// How an aggregate relates grouping to its consumer (paper §2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggPattern {
    /// **From the inside out**: grouping and aggregation happen inside a
    /// scope on grouped keys; results flow outward (SQL `GROUP BY`,
    /// extended relational algebra, Eq (3)).
    Fio,
    /// **From the outside in**: a per-outer-tuple correlated scope with
    /// `γ∅` computes the aggregate (Klug, Hella et al., Soufflé, Eq (7)).
    Foi,
    /// A global aggregate over the whole input (uncorrelated `γ∅`).
    Global,
}

/// One classified aggregate occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassifiedAggregate {
    /// The function.
    pub func: AggFunc,
    /// FIO / FOI / global.
    pub pattern: AggPattern,
    /// Value (assignment) or test (comparison) use — the distinction that
    /// *names* the count bug.
    pub role: AggRole,
    /// The predicate, rendered.
    pub predicate: String,
}

/// Overall query-shape classes (coarse, for reports and workload tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryShape {
    /// Select–project–join only.
    Conjunctive,
    /// Adds negation/disjunction (first-order / relationally complete).
    FirstOrder,
    /// Uses grouping/aggregation.
    Aggregating,
}

/// A classification report for one collection.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Aggregates with their patterns.
    pub aggregates: Vec<ClassifiedAggregate>,
    /// Coarse shape.
    pub shape: QueryShape,
    /// Number of correlated (outer-referencing) collections.
    pub correlated_collections: usize,
    /// Relation-occurrence signature (how many logical copies of each
    /// base relation — the paper's Fig 6 vs Fig 7/8 distinction).
    pub relation_occurrences: Vec<(String, usize)>,
    /// Maximum scope depth.
    pub max_depth: usize,
}

/// Classify a collection (open-world binding).
pub fn classify(c: &Collection) -> Classification {
    let info = Binder::new().bind_collection(c);
    classify_bound(&info)
}

/// Classify from an existing binder product.
pub fn classify_bound(info: &BoundInfo) -> Classification {
    let aggregates = info
        .aggregates
        .iter()
        .map(|a| {
            let pattern = if a.grouping_keys > 0 {
                AggPattern::Fio
            } else if info.is_correlated(a.collection) || a.outer_refs {
                // Correlated γ∅ scope: either a nested collection
                // referencing an outer variable (Fig 5c) or an aggregation
                // predicate that reaches outside its scope (Eq (27)).
                AggPattern::Foi
            } else {
                AggPattern::Global
            };
            ClassifiedAggregate {
                func: a.func,
                pattern,
                role: a.role,
                predicate: a.predicate.clone(),
            }
        })
        .collect::<Vec<_>>();

    let shape = if !aggregates.is_empty() || info.grouping_scope_count > 0 {
        QueryShape::Aggregating
    } else if info.negation_count > 0 || info.predicates.iter().any(|p| p.under_negation) {
        QueryShape::FirstOrder
    } else {
        QueryShape::Conjunctive
    };

    let mut correlated: Vec<usize> = info.correlations.iter().map(|c| c.inner).collect();
    correlated.sort_unstable();
    correlated.dedup();

    Classification {
        aggregates,
        shape,
        correlated_collections: correlated.len(),
        relation_occurrences: info
            .relation_occurrences
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect(),
        max_depth: info.max_depth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::dsl::*;

    #[test]
    fn eq3_is_fio() {
        let q = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let cls = classify(&q);
        assert_eq!(cls.aggregates.len(), 1);
        assert_eq!(cls.aggregates[0].pattern, AggPattern::Fio);
        assert_eq!(cls.aggregates[0].role, AggRole::Assignment);
        assert_eq!(cls.shape, QueryShape::Aggregating);
    }

    #[test]
    fn eq7_is_foi() {
        let x = collection(
            "X",
            &["sm"],
            quant(
                &[bind("r2", "R")],
                group_all(),
                None,
                and([
                    eq(col("r2", "A"), col("r", "A")),
                    assign_agg("X", "sm", sum(col("r2", "B"))),
                ]),
            ),
        );
        let q = collection(
            "Q",
            &["A", "sm"],
            exists(
                &[bind("r", "R"), bind_coll("x", x)],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "sm", col("x", "sm")),
                ]),
            ),
        );
        let cls = classify(&q);
        assert_eq!(cls.aggregates.len(), 1);
        assert_eq!(cls.aggregates[0].pattern, AggPattern::Foi);
        // The relation signature records two logical copies of R.
        assert_eq!(cls.relation_occurrences, vec![("R".to_string(), 2)]);
    }

    #[test]
    fn global_aggregate_detected() {
        let q = collection(
            "Q",
            &["c"],
            quant(
                &[bind("r", "R")],
                group_all(),
                None,
                and([assign_agg("Q", "c", count(col("r", "A")))]),
            ),
        );
        let cls = classify(&q);
        assert_eq!(cls.aggregates[0].pattern, AggPattern::Global);
    }

    #[test]
    fn count_bug_aggregate_is_a_test() {
        // Eq (27): the aggregate is used as a comparison — the paper's
        // diagnostic vocabulary for the count bug.
        let q = collection(
            "Q",
            &["id"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "id", col("r", "id")),
                    quant(
                        &[bind("s", "S")],
                        group_all(),
                        None,
                        and([
                            eq(col("r", "id"), col("s", "id")),
                            eq(col("r", "q"), count(col("s", "d"))),
                        ]),
                    ),
                ]),
            ),
        );
        let cls = classify(&q);
        assert_eq!(cls.aggregates[0].role, AggRole::Comparison);
    }

    #[test]
    fn shapes() {
        let conj = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        assert_eq!(classify(&conj).shape, QueryShape::Conjunctive);

        let fo = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    not(exists(
                        &[bind("s", "S")],
                        and([eq(col("s", "A"), col("r", "A"))]),
                    )),
                ]),
            ),
        );
        assert_eq!(classify(&fo).shape, QueryShape::FirstOrder);
    }
}
