//! Randomized equivalence testing: evaluate two queries over many random
//! instances and compare results under a convention profile.
//!
//! This is the workhorse behind the paper's rewrite claims: the Fig 13
//! "LEFT JOIN + GROUP BY is wrong under duplicates" counterexample, the
//! §2.7 set-only unnesting rule, and the count-bug fix are all verified by
//! searching for (or failing to find) distinguishing instances.

use crate::generate::{random_catalog, InstanceSpec};
use arc_core::ast::Collection;
use arc_core::conventions::{Conventions, Semantics};
use arc_engine::{Catalog, Engine, Relation};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The outcome of randomized equivalence testing.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// No distinguishing instance found in `trials` trials.
    IndistinguishableAfter {
        /// Number of instances tried.
        trials: usize,
    },
    /// A distinguishing instance was found.
    Distinguished(Box<Counterexample>),
}

impl Verdict {
    /// Did the search find a counterexample?
    pub fn distinguished(&self) -> bool {
        matches!(self, Verdict::Distinguished(_))
    }
}

/// A distinguishing instance with both results.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The instance.
    pub catalog: Catalog,
    /// Result of the first query.
    pub left: Relation,
    /// Result of the second query.
    pub right: Relation,
}

/// Compare two collections over `trials` random instances drawn from
/// `spec`. Results compare as bags under bag semantics, as sets otherwise.
/// Evaluation errors count as distinguishing (reported with empty
/// relations) only if one side errors and the other does not.
pub fn random_equivalence(
    a: &Collection,
    b: &Collection,
    spec: &InstanceSpec,
    conv: Conventions,
    trials: usize,
    seed: u64,
) -> Verdict {
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..trials {
        let catalog = random_catalog(spec, &mut rng);
        let engine = Engine::new(&catalog, conv);
        let ra = engine.eval_collection(a);
        let rb = engine.eval_collection(b);
        match (ra, rb) {
            (Ok(ra), Ok(rb)) => {
                let equal = match conv.semantics {
                    Semantics::Bag => ra.bag_eq(&rb),
                    Semantics::Set => ra.set_eq(&rb),
                };
                if !equal {
                    return Verdict::Distinguished(Box::new(Counterexample {
                        catalog,
                        left: ra,
                        right: rb,
                    }));
                }
            }
            (Err(_), Err(_)) => {}
            (Ok(ra), Err(_)) => {
                return Verdict::Distinguished(Box::new(Counterexample {
                    catalog,
                    left: ra,
                    right: Relation::new("error", &[]),
                }))
            }
            (Err(_), Ok(rb)) => {
                return Verdict::Distinguished(Box::new(Counterexample {
                    catalog,
                    left: Relation::new("error", &[]),
                    right: rb,
                }))
            }
        }
    }
    Verdict::IndistinguishableAfter { trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::RelationSpec;
    use arc_core::dsl::*;

    fn spec() -> InstanceSpec {
        InstanceSpec {
            relations: vec![
                RelationSpec {
                    name: "R".into(),
                    attrs: vec!["A".into(), "B".into()],
                    rows: 0..6,
                    domain: 0..4,
                    null_rate: 0.0,
                },
                RelationSpec {
                    name: "S".into(),
                    attrs: vec!["B".into()],
                    rows: 0..6,
                    domain: 0..4,
                    null_rate: 0.0,
                },
            ],
        }
    }

    fn nested() -> Collection {
        collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([exists(
                    &[bind("s", "S")],
                    and([
                        assign("Q", "A", col("r", "A")),
                        eq(col("r", "B"), col("s", "B")),
                    ]),
                )]),
            ),
        )
    }

    fn unnested() -> Collection {
        collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        )
    }

    #[test]
    fn unnesting_equivalent_under_set_semantics() {
        let v = random_equivalence(&nested(), &unnested(), &spec(), Conventions::set(), 60, 7);
        assert!(!v.distinguished(), "{v:?}");
    }

    #[test]
    fn unnesting_distinguished_under_bag_semantics() {
        let v = random_equivalence(&nested(), &unnested(), &spec(), Conventions::sql(), 200, 7);
        assert!(v.distinguished(), "bag semantics must separate the two");
        if let Verdict::Distinguished(cx) = v {
            assert!(cx.left.len() != cx.right.len());
        }
    }
}
