//! Workload generators: random instances (for equivalence testing and
//! benches) and random conjunctive queries (for similarity benchmarks).

use arc_core::ast::{Collection, Formula};
use arc_core::dsl as d;
use arc_core::value::Value;
use arc_engine::{Catalog, Relation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Shape of one random relation.
#[derive(Debug, Clone)]
pub struct RelationSpec {
    /// Relation name.
    pub name: String,
    /// Attribute names.
    pub attrs: Vec<String>,
    /// Row-count range.
    pub rows: Range<usize>,
    /// Integer value domain (small domains force duplicates and joins).
    pub domain: Range<i64>,
    /// Probability of a `NULL` per cell.
    pub null_rate: f64,
}

/// Shape of a random instance.
#[derive(Debug, Clone, Default)]
pub struct InstanceSpec {
    /// Relations to generate.
    pub relations: Vec<RelationSpec>,
}

impl InstanceSpec {
    /// A two-relation integer spec used by many tests:
    /// `R(A,B)`, `S(B,C)`, small domain, no nulls.
    pub fn rs() -> Self {
        InstanceSpec {
            relations: vec![
                RelationSpec {
                    name: "R".into(),
                    attrs: vec!["A".into(), "B".into()],
                    rows: 0..8,
                    domain: 0..5,
                    null_rate: 0.0,
                },
                RelationSpec {
                    name: "S".into(),
                    attrs: vec!["B".into(), "C".into()],
                    rows: 0..8,
                    domain: 0..5,
                    null_rate: 0.0,
                },
            ],
        }
    }

    /// Like [`InstanceSpec::rs`] but with nulls (for 3VL tests).
    pub fn rs_with_nulls(rate: f64) -> Self {
        let mut s = Self::rs();
        for r in &mut s.relations {
            r.null_rate = rate;
        }
        s
    }
}

/// Draw one random catalog.
pub fn random_catalog(spec: &InstanceSpec, rng: &mut StdRng) -> Catalog {
    let mut catalog = Catalog::with_standard_externals();
    for rs in &spec.relations {
        let n = rng.gen_range(rs.rows.clone());
        let attrs: Vec<&str> = rs.attrs.iter().map(|s| s.as_str()).collect();
        let mut rel = Relation::new(rs.name.clone(), &attrs);
        for _ in 0..n {
            let row: Vec<Value> = (0..rs.attrs.len())
                .map(|_| {
                    if rs.null_rate > 0.0 && rng.gen_bool(rs.null_rate) {
                        Value::Null
                    } else {
                        Value::Int(rng.gen_range(rs.domain.clone()))
                    }
                })
                .collect();
            rel.push(row);
        }
        catalog.add(rel);
    }
    catalog
}

/// Generate a random conjunctive query over the spec's relations: `joins`
/// bindings chained by equality on random attributes, with a projection of
/// the first binding's first attribute and `selections` constant filters.
pub fn random_conjunctive_query(
    spec: &InstanceSpec,
    joins: usize,
    selections: usize,
    seed: u64,
) -> Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    assert!(!spec.relations.is_empty());
    let mut bindings = Vec::new();
    let mut preds: Vec<Formula> = Vec::new();
    let mut prev: Option<(String, String)> = None; // (var, attr)
    for i in 0..joins.max(1) {
        let rs = &spec.relations[rng.gen_range(0..spec.relations.len())];
        let var = format!("t{i}");
        bindings.push(d::bind(&var, &rs.name));
        let attr = rs.attrs[rng.gen_range(0..rs.attrs.len())].clone();
        if let Some((pv, pa)) = prev.take() {
            preds.push(d::eq(d::col(&pv, &pa), d::col(&var, &attr)));
        }
        prev = Some((var, attr));
    }
    for _ in 0..selections {
        let i = rng.gen_range(0..bindings.len());
        let rs_name = match &bindings[i].source {
            arc_core::ast::BindingSource::Named(n) => n.clone(),
            _ => unreachable!("generator emits named bindings"),
        };
        let rs = spec
            .relations
            .iter()
            .find(|r| r.name == rs_name)
            .expect("spec relation");
        let attr = rs.attrs[rng.gen_range(0..rs.attrs.len())].clone();
        let v = rng.gen_range(rs.domain.clone());
        preds.push(d::le(d::col(&bindings[i].var, &attr), d::int(v)));
    }
    // Project the first binding's first attribute.
    let first_var = bindings[0].var.clone();
    let first_attr = match &bindings[0].source {
        arc_core::ast::BindingSource::Named(n) => spec
            .relations
            .iter()
            .find(|r| &r.name == n)
            .expect("spec relation")
            .attrs[0]
            .clone(),
        _ => unreachable!(),
    };
    preds.insert(0, d::assign("Q", "A", d::col(&first_var, &first_attr)));
    d::collection("Q", &["A"], d::exists(&bindings, d::and(preds)))
}

/// Generate a random *correlated boolean* query — the EXISTS-shaped
/// pattern the decorrelation pass targets: an outer binding emits its
/// first attribute, filtered by a nested boolean quantifier scope
/// (negated when `negated`) whose correlation with the outer row is
/// `keys` equi-join predicates on random attributes, with the inner
/// scope's own bindings chained by equality and `selections` constant
/// filters inside it. With `keys = 0` the inner scope is uncorrelated —
/// the loop-invariant corner of the same pass.
pub fn random_correlated_boolean_query(
    spec: &InstanceSpec,
    keys: usize,
    inner_joins: usize,
    selections: usize,
    negated: bool,
    seed: u64,
) -> Collection {
    let mut rng = StdRng::seed_from_u64(seed);
    assert!(!spec.relations.is_empty());
    let pick = |rng: &mut StdRng| spec.relations[rng.gen_range(0..spec.relations.len())].clone();
    let rand_attr = |rng: &mut StdRng, rs: &RelationSpec| -> String {
        rs.attrs[rng.gen_range(0..rs.attrs.len())].clone()
    };

    // Outer binding.
    let outer_rs = pick(&mut rng);
    let outer = d::bind("t0", &outer_rs.name);

    // Inner scope: bindings chained by equality (like the conjunctive
    // generator), plus the correlated keys against the outer row.
    let mut inner_bindings = Vec::new();
    let mut inner_preds: Vec<Formula> = Vec::new();
    let mut inner_specs: Vec<RelationSpec> = Vec::new();
    let mut prev: Option<(String, String)> = None;
    for i in 0..inner_joins.max(1) {
        let rs = pick(&mut rng);
        let var = format!("u{i}");
        inner_bindings.push(d::bind(&var, &rs.name));
        let attr = rand_attr(&mut rng, &rs);
        if let Some((pv, pa)) = prev.take() {
            inner_preds.push(d::eq(d::col(&pv, &pa), d::col(&var, &attr)));
        }
        prev = Some((var, attr));
        inner_specs.push(rs);
    }
    for _ in 0..keys {
        let i = rng.gen_range(0..inner_bindings.len());
        let inner_attr = rand_attr(&mut rng, &inner_specs[i]);
        let outer_attr = rand_attr(&mut rng, &outer_rs);
        // Both orientations occur in the wild; generate both.
        let (l, r) = (
            d::col(&inner_bindings[i].var, &inner_attr),
            d::col("t0", &outer_attr),
        );
        inner_preds.push(if rng.gen_bool(0.5) {
            d::eq(l, r)
        } else {
            d::eq(r, l)
        });
    }
    for _ in 0..selections {
        let i = rng.gen_range(0..inner_bindings.len());
        let attr = rand_attr(&mut rng, &inner_specs[i]);
        let v = rng.gen_range(inner_specs[i].domain.clone());
        inner_preds.push(d::le(d::col(&inner_bindings[i].var, &attr), d::int(v)));
    }
    let inner = d::exists(&inner_bindings, d::and(inner_preds));
    let inner = if negated { d::not(inner) } else { inner };

    let head_attr = outer_rs.attrs[0].clone();
    d::collection(
        "Q",
        &["A"],
        d::exists(
            &[outer],
            d::and([d::assign("Q", "A", d::col("t0", &head_attr)), inner]),
        ),
    )
}

/// A parent-relation instance for recursion benchmarks: a chain of
/// `depth` nodes plus `extra` random edges.
pub fn chain_catalog(depth: usize, extra: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new("P", &["s", "t"]);
    for i in 0..depth {
        rel.push(vec![Value::Int(i as i64), Value::Int(i as i64 + 1)]);
    }
    for _ in 0..extra {
        let a = rng.gen_range(0..depth as i64 + 1);
        let b = rng.gen_range(0..depth as i64 + 1);
        rel.push(vec![Value::Int(a), Value::Int(b)]);
    }
    Catalog::new().with(rel)
}

/// A sparse random matrix in `(row, col, val)` form (Fig 20 workloads).
pub fn sparse_matrix(name: &str, n: usize, density: f64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new(name, &["row", "col", "val"]);
    for i in 0..n {
        for j in 0..n {
            if rng.gen_bool(density) {
                rel.push(vec![
                    Value::Int(i as i64),
                    Value::Int(j as i64),
                    Value::Int(rng.gen_range(1..10)),
                ]);
            }
        }
    }
    rel
}

/// The paper's `Likes(drinker, beer)` generator for the unique-set query:
/// `drinkers` drinkers, each liking a random subset of `beers` beers.
pub fn likes_catalog(drinkers: usize, beers: usize, seed: u64) -> Catalog {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new("L", &["d", "b"]);
    for d in 0..drinkers {
        for b in 0..beers {
            if rng.gen_bool(0.5) {
                rel.push(vec![Value::str(format!("d{d}")), Value::Int(b as i64)]);
            }
        }
    }
    Catalog::new().with(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::binder::Binder;

    #[test]
    fn random_catalog_respects_spec() {
        let mut rng = StdRng::seed_from_u64(1);
        let c = random_catalog(&InstanceSpec::rs(), &mut rng);
        let r = c.relation("R").unwrap();
        assert!(r.len() < 8);
        assert_eq!(r.schema, vec!["A", "B"]);
    }

    #[test]
    fn random_queries_bind() {
        for seed in 0..20 {
            let q = random_conjunctive_query(&InstanceSpec::rs(), 3, 2, seed);
            let info = Binder::new().bind_collection(&q);
            assert!(info.is_valid(), "seed {seed}: {:?}", info.diagnostics);
        }
    }

    #[test]
    fn chain_catalog_shape() {
        let c = chain_catalog(10, 3, 1);
        assert_eq!(c.relation("P").unwrap().len(), 13);
    }

    #[test]
    fn sparse_matrix_density() {
        let m = sparse_matrix("A", 10, 1.0, 1);
        assert_eq!(m.len(), 100);
        let m = sparse_matrix("A", 10, 0.0, 1);
        assert!(m.is_empty());
    }
}
