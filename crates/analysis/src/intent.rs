//! Intent-based query comparison (the paper's NL2SQL discussion, §1/§4):
//! contrasting **surface-level** metrics (exact string match) with
//! **execution match** and **pattern match** — the paper's argument, after
//! Floratou et al. [22], that benchmarks should score *intent*.

use crate::equiv::{random_equivalence, Verdict};
use crate::generate::InstanceSpec;
use crate::similarity::{collection_feature_similarity, structural_similarity};
use arc_core::ast::Collection;
use arc_core::conventions::Conventions;
use arc_core::pattern::signature;

/// A multi-metric comparison of two queries (e.g. gold vs. generated).
#[derive(Debug, Clone)]
pub struct IntentReport {
    /// Surface: the two texts are byte-identical (what exact-match
    /// NL2SQL benchmarks measure).
    pub exact_text_match: bool,
    /// Execution: indistinguishable over the random-instance trials.
    pub execution_match: bool,
    /// Pattern: identical canonical relational patterns (the paper's
    /// intent proxy — syntax-blind, convention-free).
    pub pattern_match: bool,
    /// Feature-multiset cosine similarity in `[0, 1]`.
    pub feature_similarity: f64,
    /// ALT tree-edit similarity in `[0, 1]`.
    pub structural_similarity: f64,
}

/// Compare two queries given their surface texts.
pub fn intent_report(
    a: &Collection,
    a_text: &str,
    b: &Collection,
    b_text: &str,
    spec: &InstanceSpec,
    conv: Conventions,
    trials: usize,
) -> IntentReport {
    let verdict = random_equivalence(a, b, spec, conv, trials, 0xA2C);
    IntentReport {
        exact_text_match: normalize_ws(a_text) == normalize_ws(b_text),
        execution_match: matches!(verdict, Verdict::IndistinguishableAfter { .. }),
        pattern_match: signature(a).canon == signature(b).canon,
        feature_similarity: collection_feature_similarity(a, b),
        structural_similarity: structural_similarity(a, b),
    }
}

fn normalize_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::dsl::*;

    #[test]
    fn renamed_query_fails_exact_match_but_matches_intent() {
        // The paper's point: surface metrics miss semantic equivalence.
        let a = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("u", "R"), bind("v", "S")],
                and([
                    eq(col("u", "B"), col("v", "B")),
                    assign("Q", "A", col("u", "A")),
                ]),
            ),
        );
        let report = intent_report(
            &a,
            "select R.A from R, S where R.B = S.B",
            &b,
            "SELECT u.A FROM R u, S v WHERE u.B = v.B",
            &InstanceSpec::rs(),
            Conventions::set(),
            40,
        );
        assert!(!report.exact_text_match);
        assert!(report.execution_match);
        assert!(report.pattern_match);
        assert_eq!(report.feature_similarity, 1.0);
    }

    #[test]
    fn subtly_different_query_matches_surface_but_not_intent() {
        // Syntactically near-identical, semantically different: < vs <=.
        let a = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([assign("Q", "A", col("r", "A")), lt(col("r", "B"), int(3))]),
            ),
        );
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([assign("Q", "A", col("r", "A")), le(col("r", "B"), int(3))]),
            ),
        );
        let report = intent_report(
            &a,
            "select R.A from R where R.B < 3",
            &b,
            "select R.A from R where R.B < 3", // same surface text!
            &InstanceSpec::rs(),
            Conventions::set(),
            60,
        );
        assert!(report.exact_text_match, "surface metric is fooled");
        assert!(!report.execution_match, "execution testing is not");
        assert!(!report.pattern_match, "pattern comparison is not");
        assert!(report.feature_similarity > 0.8, "but they are *similar*");
    }
}
