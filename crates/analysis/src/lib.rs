//! # arc-analysis — pattern analysis over ARC
//!
//! The machine-facing analyses the paper motivates (§1's three questions):
//!
//! 1. **Making relational structure explicit and comparable**
//!    ([`classify`]): FIO vs. FOI aggregation patterns, aggregate roles
//!    (value vs. test), relation-occurrence signatures, query shapes.
//! 2. **Validating machine-generated queries** — via `arc_core::binder`
//!    plus [`equiv`]'s randomized testing (find the instance where two
//!    "equivalent" queries disagree, or fail to).
//! 3. **Semantic similarity faithful to relational meaning**
//!    ([`similarity`], [`intent`]): feature-multiset and tree-edit
//!    measures over the convention-free pattern layer, contrasted with
//!    surface-level exact match.
//!
//! [`rewrite`] implements the paper's transformations (unnesting,
//! FIO→FOI, arithmetic reification, count-bug decorrelation) so each
//! validity condition is *demonstrated* by tests and benches instead of
//! asserted. [`generate`] provides the workload generators the benchmark
//! suite sweeps.

#![warn(missing_docs)]

pub mod classify;
pub mod equiv;
pub mod generate;
pub mod intent;
pub mod rewrite;
pub mod similarity;

pub use classify::{classify, AggPattern, Classification, QueryShape};
pub use equiv::{random_equivalence, Counterexample, Verdict};
pub use generate::{
    chain_catalog, likes_catalog, random_catalog, random_conjunctive_query,
    random_correlated_boolean_query, sparse_matrix, InstanceSpec, RelationSpec,
};
pub use intent::{intent_report, IntentReport};
pub use rewrite::{decorrelate, fio_to_foi, reify_arith, unnest, Decorrelation};
pub use similarity::{
    collection_feature_similarity, feature_similarity, structural_similarity, tree_edit_distance,
};
