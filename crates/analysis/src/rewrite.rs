//! Pattern rewrites — the transformations the paper discusses, made
//! executable so their validity conditions can be *tested* rather than
//! asserted:
//!
//! * [`unnest`] — flatten positive nested existential scopes (§2.7: valid
//!   under set semantics, changes multiplicities under bag semantics);
//! * [`fio_to_foi`] — turn a grouped FIO scope (Eq (3)) into the
//!   correlated-γ∅ FOI pattern (Eq (7)); valid under set semantics; makes
//!   FIO queries expressible in FOI-only languages (Soufflé, Rel);
//! * [`reify_arith`] — replace arithmetic scalars with external-relation
//!   bindings (§2.13.1, Eq (19) → Eq (20));
//! * [`decorrelate`] — the count-bug transformation (§3.2): the naive
//!   rewrite (Eq (28), *incorrect* on empty groups) and the corrected
//!   left-join rewrite (Eq (29)).

use arc_core::ast::*;

// ---------------------------------------------------------------------------
// Unnesting (§2.7)
// ---------------------------------------------------------------------------

/// Merge positive, annotation-free nested existential scopes into their
/// parent scope, recursively. Under set semantics the result is equivalent;
/// under bag semantics it multiplies multiplicities (the paper's semijoin
/// example) — use `arc-analysis::equiv` to observe both.
///
/// Consults the plan layer's normalizer first, so connective shape
/// (nested `And`s, singleton wrappers, double negations) never hides a
/// mergeable scope from the pattern match.
pub fn unnest(c: &Collection) -> Collection {
    let c = arc_plan::normalize_collection(c);
    Collection {
        head: c.head.clone(),
        body: unnest_formula(c.body.clone()),
    }
}

fn unnest_formula(f: Formula) -> Formula {
    match f {
        Formula::Quant(q) => {
            let mut q = *q;
            q.body = unnest_formula(q.body);
            if q.grouping.is_some() || q.join.is_some() {
                return Formula::Quant(Box::new(q));
            }
            // Pull up mergeable child quants.
            let mut bindings = q.bindings;
            let mut conjuncts: Vec<Formula> = Vec::new();
            let mut changed = false;
            for part in q.body.conjuncts() {
                match part {
                    Formula::Quant(inner) if inner.grouping.is_none() && inner.join.is_none() => {
                        bindings.extend(inner.bindings.clone());
                        conjuncts.extend(inner.body.conjuncts().into_iter().cloned());
                        changed = true;
                    }
                    other => conjuncts.push(other.clone()),
                }
            }
            let merged = Formula::Quant(Box::new(Quant {
                bindings,
                grouping: None,
                join: None,
                body: Formula::And(conjuncts),
            }));
            if changed {
                unnest_formula(merged)
            } else {
                merged
            }
        }
        Formula::And(fs) => Formula::And(fs.into_iter().map(unnest_formula).collect()),
        Formula::Or(fs) => Formula::Or(fs.into_iter().map(unnest_formula).collect()),
        Formula::Not(inner) => Formula::Not(Box::new(unnest_formula(*inner))),
        Formula::Pred(p) => Formula::Pred(p),
    }
}

// ---------------------------------------------------------------------------
// FIO → FOI (§2.5)
// ---------------------------------------------------------------------------

/// Rewrite a top-level FIO grouped scope into the FOI pattern: an outer
/// scope over the same bindings plus a correlated nested `γ∅` collection
/// per the paper's Eq (3) → Eq (7). Valid under set semantics (FIO groups
/// exist only for surviving rows; the outer filters are replicated to
/// preserve that). Returns `None` when the collection is not a single
/// FIO-grouped scope.
///
/// The shape match runs over the plan-normalized form (flattened
/// conjunctions), shared with the planner's lowering.
pub fn fio_to_foi(c: &Collection) -> Option<Collection> {
    let c = &arc_plan::normalize_collection(c);
    let q = match &c.body {
        Formula::Quant(q) if matches!(&q.grouping, Some(g) if !g.keys.is_empty()) => q,
        _ => return None,
    };
    if q.join.is_some() {
        return None;
    }
    let keys = &q.grouping.as_ref().expect("checked").keys;

    // Partition the conjunction.
    let mut filters: Vec<Formula> = Vec::new();
    let mut key_assigns: Vec<(String, AttrRef)> = Vec::new(); // head attr → key
    let mut agg_assigns: Vec<(String, AggCall)> = Vec::new();
    for part in q.body.conjuncts() {
        match part {
            Formula::Pred(Predicate::Cmp {
                left: Scalar::Attr(h),
                op: CmpOp::Eq,
                right,
            }) if h.var == c.head.relation => match right {
                Scalar::Agg(call) => agg_assigns.push((h.attr.clone(), (**call).clone())),
                Scalar::Attr(a) if keys.contains(a) => {
                    key_assigns.push((h.attr.clone(), a.clone()))
                }
                _ => return None,
            },
            Formula::Pred(_) => filters.push(part.clone()),
            _ => return None, // nested scopes: out of the simple FIO shape
        }
    }
    if agg_assigns.is_empty() {
        return None;
    }

    // Inner collection: renamed copies of the bindings, γ∅, filters +
    // key-correlations + one aggregation assignment per aggregate.
    let rename = |v: &str| format!("{v}_i");
    let inner_bindings: Vec<Binding> = q
        .bindings
        .iter()
        .map(|b| match &b.source {
            BindingSource::Named(n) => Binding::named(rename(&b.var), n.clone()),
            BindingSource::Collection(_) => Binding::named(rename(&b.var), "?unsupported"),
        })
        .collect();
    if q.bindings
        .iter()
        .any(|b| matches!(b.source, BindingSource::Collection(_)))
    {
        return None;
    }
    let mut inner_conjuncts: Vec<Formula> = filters
        .iter()
        .map(|f| rename_vars_formula(f.clone(), &rename))
        .collect();
    for k in keys {
        inner_conjuncts.push(Formula::Pred(Predicate::Cmp {
            left: Scalar::Attr(AttrRef::new(rename(&k.var), k.attr.clone())),
            op: CmpOp::Eq,
            right: Scalar::Attr(k.clone()),
        }));
    }
    let inner_name = "X".to_string();
    let mut inner_attrs = Vec::new();
    for (attr, call) in &agg_assigns {
        inner_attrs.push(attr.clone());
        let renamed_call = AggCall {
            func: call.func,
            arg: match &call.arg {
                AggArg::Expr(e) => AggArg::Expr(rename_vars_scalar(e.clone(), &rename)),
                AggArg::Star => AggArg::Star,
            },
            distinct: call.distinct,
        };
        inner_conjuncts.push(Formula::Pred(Predicate::Cmp {
            left: Scalar::Attr(AttrRef::new(inner_name.clone(), attr.clone())),
            op: CmpOp::Eq,
            right: Scalar::Agg(Box::new(renamed_call)),
        }));
    }
    let inner = Collection {
        head: Head {
            relation: inner_name,
            attrs: inner_attrs,
        },
        body: Formula::Quant(Box::new(Quant {
            bindings: inner_bindings,
            grouping: Some(Grouping::empty()),
            join: None,
            body: Formula::And(inner_conjuncts),
        })),
    };

    // Outer scope: original bindings + filters + the nested binding.
    let mut outer_bindings = q.bindings.clone();
    outer_bindings.push(Binding::nested("x", inner));
    let mut outer_conjuncts = filters;
    for (attr, key) in &key_assigns {
        outer_conjuncts.push(Formula::Pred(Predicate::Cmp {
            left: Scalar::Attr(AttrRef::new(c.head.relation.clone(), attr.clone())),
            op: CmpOp::Eq,
            right: Scalar::Attr(key.clone()),
        }));
    }
    for (attr, _) in &agg_assigns {
        outer_conjuncts.push(Formula::Pred(Predicate::Cmp {
            left: Scalar::Attr(AttrRef::new(c.head.relation.clone(), attr.clone())),
            op: CmpOp::Eq,
            right: Scalar::Attr(AttrRef::new("x", attr.clone())),
        }));
    }
    Some(Collection {
        head: c.head.clone(),
        body: Formula::Quant(Box::new(Quant {
            bindings: outer_bindings,
            grouping: None,
            join: None,
            body: Formula::And(outer_conjuncts),
        })),
    })
}

fn rename_vars_formula(f: Formula, rename: &impl Fn(&str) -> String) -> Formula {
    match f {
        Formula::Pred(Predicate::Cmp { left, op, right }) => Formula::Pred(Predicate::Cmp {
            left: rename_vars_scalar(left, rename),
            op,
            right: rename_vars_scalar(right, rename),
        }),
        Formula::Pred(Predicate::IsNull { expr, negated }) => Formula::Pred(Predicate::IsNull {
            expr: rename_vars_scalar(expr, rename),
            negated,
        }),
        other => other, // nested formulas excluded by the caller's shape check
    }
}

fn rename_vars_scalar(s: Scalar, rename: &impl Fn(&str) -> String) -> Scalar {
    match s {
        Scalar::Attr(a) => Scalar::Attr(AttrRef::new(rename(&a.var), a.attr)),
        Scalar::Const(v) => Scalar::Const(v),
        Scalar::Agg(call) => Scalar::Agg(Box::new(AggCall {
            func: call.func,
            arg: match call.arg {
                AggArg::Expr(e) => AggArg::Expr(rename_vars_scalar(e, rename)),
                AggArg::Star => AggArg::Star,
            },
            distinct: call.distinct,
        })),
        Scalar::Arith { op, left, right } => Scalar::Arith {
            op,
            left: Box::new(rename_vars_scalar(*left, rename)),
            right: Box::new(rename_vars_scalar(*right, rename)),
        },
    }
}

// ---------------------------------------------------------------------------
// Reification of arithmetic (§2.13.1)
// ---------------------------------------------------------------------------

/// Replace arithmetic scalars with bindings to the standard external
/// relations (`Add`, `Minus`, `*`, `Div`), turning Eq (19) into Eq (20).
/// The resulting query evaluates identically via access patterns.
pub fn reify_arith(c: &Collection) -> Collection {
    Collection {
        head: c.head.clone(),
        body: reify_formula(c.body.clone(), &mut 0),
    }
}

fn reify_formula(f: Formula, counter: &mut usize) -> Formula {
    match f {
        Formula::Quant(q) => {
            let mut q = *q;
            q.body = reify_formula(q.body, counter);
            // Collect new bindings/preds from predicates directly in this
            // scope's conjunction.
            let mut new_bindings: Vec<Binding> = Vec::new();
            let mut new_preds: Vec<Formula> = Vec::new();
            let conjuncts: Vec<Formula> = q
                .body
                .conjuncts()
                .into_iter()
                .cloned()
                .map(|part| match part {
                    Formula::Pred(Predicate::Cmp { left, op, right }) => {
                        let l = reify_scalar(left, &mut new_bindings, &mut new_preds, counter);
                        let r = reify_scalar(right, &mut new_bindings, &mut new_preds, counter);
                        Formula::Pred(Predicate::Cmp {
                            left: l,
                            op,
                            right: r,
                        })
                    }
                    other => other,
                })
                .collect();
            q.bindings.extend(new_bindings);
            let mut all = conjuncts;
            all.extend(new_preds);
            q.body = Formula::And(all);
            Formula::Quant(Box::new(q))
        }
        Formula::And(fs) => {
            Formula::And(fs.into_iter().map(|s| reify_formula(s, counter)).collect())
        }
        Formula::Or(fs) => Formula::Or(fs.into_iter().map(|s| reify_formula(s, counter)).collect()),
        Formula::Not(inner) => Formula::Not(Box::new(reify_formula(*inner, counter))),
        Formula::Pred(p) => Formula::Pred(p),
    }
}

fn reify_scalar(
    s: Scalar,
    bindings: &mut Vec<Binding>,
    preds: &mut Vec<Formula>,
    counter: &mut usize,
) -> Scalar {
    match s {
        Scalar::Arith { op, left, right } => {
            let l = reify_scalar(*left, bindings, preds, counter);
            let r = reify_scalar(*right, bindings, preds, counter);
            *counter += 1;
            let var = format!("f{counter}");
            let (ext, a1, a2, out) = match op {
                ArithOp::Add => ("Add", "left", "right", "out"),
                ArithOp::Sub => ("Minus", "left", "right", "out"),
                ArithOp::Mul => ("*", "$1", "$2", "out"),
                ArithOp::Div => ("Div", "left", "right", "out"),
            };
            bindings.push(Binding::named(var.clone(), ext));
            preds.push(Formula::Pred(Predicate::Cmp {
                left: Scalar::Attr(AttrRef::new(var.clone(), a1)),
                op: CmpOp::Eq,
                right: l,
            }));
            preds.push(Formula::Pred(Predicate::Cmp {
                left: Scalar::Attr(AttrRef::new(var.clone(), a2)),
                op: CmpOp::Eq,
                right: r,
            }));
            Scalar::Attr(AttrRef::new(var, out))
        }
        // Aggregate arguments keep arithmetic inline: their scope is the
        // grouping scope, reification would move the computation out of it.
        Scalar::Agg(call) => Scalar::Agg(call),
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Count-bug decorrelation (§3.2)
// ---------------------------------------------------------------------------

/// Which decorrelation to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decorrelation {
    /// Eq (28): group the inner relation and join — the **count bug**
    /// (loses outer tuples with empty groups).
    NaiveIncorrect,
    /// Eq (29): group over a LEFT JOIN from the outer relation — correct
    /// when the outer correlation attribute is a key (paper footnote 12).
    LeftJoinCorrect,
}

/// Decorrelate the Eq (27) shape: an outer scope `∃r∈R[… ∧ ∃s∈S, γ∅
/// [r.k = s.k ∧ e(r) cmp agg(s.x)]]`. Returns `None` when the collection
/// does not match the shape (matching runs over the plan-normalized form,
/// like the planner's lowering).
pub fn decorrelate(c: &Collection, style: Decorrelation) -> Option<Collection> {
    let c = &arc_plan::normalize_collection(c);
    let outer = match &c.body {
        Formula::Quant(q) if q.grouping.is_none() && q.join.is_none() => q,
        _ => return None,
    };
    // Find the correlated grouped boolean scope.
    let mut nested: Option<&Quant> = None;
    let mut rest: Vec<Formula> = Vec::new();
    for part in outer.body.conjuncts() {
        match part {
            Formula::Quant(q)
                if matches!(&q.grouping, Some(g) if g.keys.is_empty())
                    && q.bindings.len() == 1
                    && nested.is_none() =>
            {
                nested = Some(q)
            }
            other => rest.push(other.clone()),
        }
    }
    let nested = nested?;
    let (inner_var, inner_rel) = match &nested.bindings[0].source {
        BindingSource::Named(n) => (nested.bindings[0].var.clone(), n.clone()),
        _ => return None,
    };

    // Inside: one correlation equality and one aggregate comparison.
    let mut corr: Option<(AttrRef, AttrRef)> = None; // (inner, outer)
    let mut agg_cmp: Option<(Scalar, CmpOp, AggCall)> = None;
    for part in nested.body.conjuncts() {
        match part {
            Formula::Pred(Predicate::Cmp {
                left: Scalar::Attr(a),
                op: CmpOp::Eq,
                right: Scalar::Attr(b),
            }) if !part.conjuncts().is_empty() && corr.is_none() && !a_has_agg(part) => {
                let (inner_ref, outer_ref) = if a.var == inner_var {
                    (a.clone(), b.clone())
                } else if b.var == inner_var {
                    (b.clone(), a.clone())
                } else {
                    return None;
                };
                corr = Some((inner_ref, outer_ref));
            }
            Formula::Pred(Predicate::Cmp { left, op, right }) => match (left, right) {
                (Scalar::Agg(call), probe) => {
                    agg_cmp = Some((probe.clone(), op.flipped(), (**call).clone()))
                }
                (probe, Scalar::Agg(call)) => {
                    agg_cmp = Some((probe.clone(), *op, (**call).clone()))
                }
                _ => return None,
            },
            _ => return None,
        }
    }
    let (corr_inner, corr_outer) = corr?;
    let (probe, op, agg) = agg_cmp?;

    // The outer relation the correlation points at (for the LEFT JOIN fix).
    let outer_rel = outer.bindings.iter().find(|b| b.var == corr_outer.var)?;
    let outer_rel_name = match &outer_rel.source {
        BindingSource::Named(n) => n.clone(),
        _ => return None,
    };

    let x_name = "X".to_string();
    let nested_coll = match style {
        Decorrelation::NaiveIncorrect => Collection {
            head: Head::new(&x_name, &["k", "ct"]),
            body: Formula::Quant(Box::new(Quant {
                bindings: vec![Binding::named(inner_var.clone(), inner_rel)],
                grouping: Some(Grouping::by(vec![corr_inner.clone()])),
                join: None,
                body: Formula::And(vec![
                    Formula::Pred(Predicate::Cmp {
                        left: Scalar::Attr(AttrRef::new(x_name.clone(), "k")),
                        op: CmpOp::Eq,
                        right: Scalar::Attr(corr_inner.clone()),
                    }),
                    Formula::Pred(Predicate::Cmp {
                        left: Scalar::Attr(AttrRef::new(x_name.clone(), "ct")),
                        op: CmpOp::Eq,
                        right: Scalar::Agg(Box::new(agg.clone())),
                    }),
                ]),
            })),
        },
        Decorrelation::LeftJoinCorrect => {
            let r2 = "r2".to_string();
            Collection {
                head: Head::new(&x_name, &["k", "ct"]),
                body: Formula::Quant(Box::new(Quant {
                    bindings: vec![
                        Binding::named(r2.clone(), outer_rel_name),
                        Binding::named(inner_var.clone(), inner_rel),
                    ],
                    grouping: Some(Grouping::by(vec![AttrRef::new(
                        r2.clone(),
                        corr_outer.attr.clone(),
                    )])),
                    join: Some(JoinTree::Left(
                        Box::new(JoinTree::Var(r2.clone())),
                        Box::new(JoinTree::Var(inner_var.clone())),
                    )),
                    body: Formula::And(vec![
                        Formula::Pred(Predicate::Cmp {
                            left: Scalar::Attr(AttrRef::new(x_name.clone(), "k")),
                            op: CmpOp::Eq,
                            right: Scalar::Attr(AttrRef::new(r2.clone(), corr_outer.attr.clone())),
                        }),
                        Formula::Pred(Predicate::Cmp {
                            left: Scalar::Attr(AttrRef::new(x_name.clone(), "ct")),
                            op: CmpOp::Eq,
                            right: Scalar::Agg(Box::new(agg.clone())),
                        }),
                        Formula::Pred(Predicate::Cmp {
                            left: Scalar::Attr(AttrRef::new(r2, corr_outer.attr.clone())),
                            op: CmpOp::Eq,
                            right: Scalar::Attr(corr_inner.clone()),
                        }),
                    ]),
                })),
            }
        }
    };

    let mut bindings = outer.bindings.clone();
    bindings.push(Binding::nested("x", nested_coll));
    let mut conjuncts = rest;
    conjuncts.push(Formula::Pred(Predicate::Cmp {
        left: Scalar::Attr(corr_outer),
        op: CmpOp::Eq,
        right: Scalar::Attr(AttrRef::new("x", "k")),
    }));
    conjuncts.push(Formula::Pred(Predicate::Cmp {
        left: probe,
        op,
        right: Scalar::Attr(AttrRef::new("x", "ct")),
    }));
    Some(Collection {
        head: c.head.clone(),
        body: Formula::Quant(Box::new(Quant {
            bindings,
            grouping: None,
            join: None,
            body: Formula::And(conjuncts),
        })),
    })
}

fn a_has_agg(f: &Formula) -> bool {
    match f {
        Formula::Pred(p) => p.has_aggregate(),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::conventions::Conventions;
    use arc_core::dsl::*;
    use arc_engine::{Catalog, Engine, Relation};

    #[test]
    fn unnest_merges_positive_scopes() {
        let nested = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([exists(
                    &[bind("s", "S")],
                    and([
                        assign("Q", "A", col("r", "A")),
                        eq(col("r", "B"), col("s", "B")),
                    ]),
                )]),
            ),
        );
        let flat = unnest(&nested);
        match &flat.body {
            Formula::Quant(q) => assert_eq!(q.bindings.len(), 2),
            other => panic!("expected flat quant, got {other:?}"),
        }
    }

    #[test]
    fn unnest_preserves_negation_scopes() {
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    not(exists(
                        &[bind("s", "S")],
                        and([eq(col("s", "B"), col("r", "B"))]),
                    )),
                ]),
            ),
        );
        let flat = unnest(&q);
        match &flat.body {
            Formula::Quant(quant) => {
                assert_eq!(quant.bindings.len(), 1, "negated scope must not merge");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn fio_to_foi_preserves_results_under_set_semantics() {
        let fio = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let foi = fio_to_foi(&fio).expect("rewrite applies");
        let catalog = Catalog::new().with(Relation::from_ints(
            "R",
            &["A", "B"],
            &[&[1, 10], &[1, 20], &[2, 5]],
        ));
        let engine = Engine::new(&catalog, Conventions::set());
        let a = engine.eval_collection(&fio).unwrap();
        let b = engine.eval_collection(&foi).unwrap();
        assert!(a.set_eq(&b), "{a}\nvs\n{b}");
        // And it now renders to Datalog-style FOI: nested collection + γ∅.
        let sig = arc_core::pattern::signature(&foi);
        assert_eq!(sig.features.get("group:0"), Some(&1));
        assert_eq!(sig.features.get("nested-collection"), Some(&1));
    }

    #[test]
    fn fio_to_foi_with_filters() {
        let fio = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    gt(col("r", "B"), int(5)),
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let foi = fio_to_foi(&fio).expect("rewrite applies");
        let catalog = Catalog::new().with(Relation::from_ints(
            "R",
            &["A", "B"],
            &[&[1, 10], &[1, 3], &[2, 5], &[3, 9]],
        ));
        let engine = Engine::new(&catalog, Conventions::set());
        let a = engine.eval_collection(&fio).unwrap();
        let b = engine.eval_collection(&foi).unwrap();
        assert!(a.set_eq(&b), "{a}\nvs\n{b}");
    }

    #[test]
    fn reify_arith_matches_inline_evaluation() {
        // Eq (19) vs Eq (20).
        let inline = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S"), bind("t", "T")],
                and([
                    assign("Q", "A", col("r", "A")),
                    gt(sub(col("r", "B"), col("s", "B")), col("t", "B")),
                ]),
            ),
        );
        let reified = reify_arith(&inline);
        let sig = arc_core::pattern::signature(&reified);
        assert_eq!(sig.features.get("rel:Minus"), Some(&1));

        let catalog = Catalog::with_standard_externals()
            .with(Relation::from_ints("R", &["A", "B"], &[&[1, 10], &[2, 5]]))
            .with(Relation::from_ints("S", &["B"], &[&[3]]))
            .with(Relation::from_ints("T", &["B"], &[&[5]]));
        let engine = Engine::new(&catalog, Conventions::set());
        let a = engine.eval_collection(&inline).unwrap();
        let b = engine.eval_collection(&reified).unwrap();
        assert!(a.set_eq(&b), "{a}\nvs\n{b}");
    }

    fn count_bug_v1() -> Collection {
        collection(
            "Q",
            &["id"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "id", col("r", "id")),
                    quant(
                        &[bind("s", "S")],
                        group_all(),
                        None,
                        and([
                            eq(col("s", "id"), col("r", "id")),
                            eq(col("r", "q"), count(col("s", "d"))),
                        ]),
                    ),
                ]),
            ),
        )
    }

    #[test]
    fn decorrelation_reproduces_the_count_bug() {
        let v1 = count_bug_v1();
        let v2 = decorrelate(&v1, Decorrelation::NaiveIncorrect).expect("shape matches");
        let v3 = decorrelate(&v1, Decorrelation::LeftJoinCorrect).expect("shape matches");

        let catalog = Catalog::new()
            .with(Relation::from_ints("R", &["id", "q"], &[&[9, 0]]))
            .with(Relation::from_ints("S", &["id", "d"], &[]));
        let engine = Engine::new(&catalog, Conventions::sql());
        let r1 = engine.eval_collection(&v1).unwrap();
        let r2 = engine.eval_collection(&v2).unwrap();
        let r3 = engine.eval_collection(&v3).unwrap();
        assert_eq!(r1.len(), 1, "v1 returns 9");
        assert!(r2.is_empty(), "v2 exhibits the count bug");
        assert!(r1.bag_eq(&r3), "v3 is the correct decorrelation");
    }

    #[test]
    fn decorrelation_agrees_when_groups_are_never_empty() {
        let v1 = count_bug_v1();
        let v2 = decorrelate(&v1, Decorrelation::NaiveIncorrect).unwrap();
        let catalog = Catalog::new()
            .with(Relation::from_ints("R", &["id", "q"], &[&[1, 2], &[2, 1]]))
            .with(Relation::from_ints(
                "S",
                &["id", "d"],
                &[&[1, 10], &[1, 11], &[2, 20]],
            ));
        let engine = Engine::new(&catalog, Conventions::sql());
        let r1 = engine.eval_collection(&v1).unwrap();
        let r2 = engine.eval_collection(&v2).unwrap();
        assert!(r1.bag_eq(&r2));
    }
}
