//! Semantic similarity over relational patterns (the paper's question 3:
//! "What language abstraction should an LLM use to internally reason about
//! query intent and semantic similarity?").
//!
//! Two measures over the convention-free pattern layer:
//!
//! * **feature similarity** — cosine similarity of the pattern-signature
//!   feature multisets (relations, scopes, groupings, aggregate kinds,
//!   negations, join kinds);
//! * **structural similarity** — a normalized ordered-tree edit distance
//!   over ALTs (insert/delete/relabel, label-sensitive), computed with the
//!   classic children-sequence DP.
//!
//! Both are *syntax-blind*: variable names, constants, and formatting do
//! not matter — exactly what surface-level metrics (exact/string match)
//! get wrong per Floratou et al. [22].

use arc_core::alt::{collection_tree, TreeNode};
use arc_core::ast::Collection;
use arc_core::pattern::{signature, PatternSignature};

/// Cosine similarity of two feature multisets (1.0 = identical features).
pub fn feature_similarity(a: &PatternSignature, b: &PatternSignature) -> f64 {
    if a.features == b.features {
        return 1.0; // exact (avoids floating-point drift on equal inputs)
    }
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    for (k, va) in &a.features {
        let va = *va as f64;
        na += va * va;
        if let Some(vb) = b.features.get(k) {
            dot += va * *vb as f64;
        }
    }
    for vb in b.features.values() {
        let vb = *vb as f64;
        nb += vb * vb;
    }
    if na == 0.0 || nb == 0.0 {
        return if a.features.is_empty() && b.features.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// Convenience: feature similarity of two collections.
pub fn collection_feature_similarity(a: &Collection, b: &Collection) -> f64 {
    feature_similarity(&signature(a), &signature(b))
}

/// Tree edit distance between two ALTs with unit insert/delete/relabel
/// costs (labels are node labels after canonicalizing variable-bearing
/// parts). Small and exact for the tree sizes ALTs have.
pub fn tree_edit_distance(a: &TreeNode, b: &TreeNode) -> usize {
    let relabel = usize::from(canon_label(&a.label) != canon_label(&b.label));
    relabel + forest_distance(&a.children, &b.children)
}

/// Edit distance between two ordered forests (sequence DP where the
/// substitution cost is the recursive tree distance).
fn forest_distance(a: &[TreeNode], b: &[TreeNode]) -> usize {
    let n = a.len();
    let m = b.len();
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for (i, t) in a.iter().enumerate() {
        dp[i + 1][0] = dp[i][0] + t.size();
    }
    for (j, t) in b.iter().enumerate() {
        dp[0][j + 1] = dp[0][j] + t.size();
    }
    for i in 1..=n {
        for j in 1..=m {
            let del = dp[i - 1][j] + a[i - 1].size();
            let ins = dp[i][j - 1] + b[j - 1].size();
            let sub = dp[i - 1][j - 1] + tree_edit_distance(&a[i - 1], &b[j - 1]);
            dp[i][j] = del.min(ins).min(sub);
        }
    }
    dp[n][m]
}

/// Normalized structural similarity in `[0, 1]`: `1 - TED / (|a| + |b|)`.
pub fn structural_similarity(a: &Collection, b: &Collection) -> f64 {
    let ta = collection_tree(&a.normalized());
    let tb = collection_tree(&b.normalized());
    let ted = tree_edit_distance(&ta, &tb) as f64;
    let total = (ta.size() + tb.size()) as f64;
    (1.0 - ted / total).max(0.0)
}

/// Canonicalize an ALT label for comparison: variable names are blinded,
/// constants are blinded to their presence.
fn canon_label(label: &str) -> String {
    // Labels look like "BINDING: r ∈ R", "PREDICATE: Q.A = r.A",
    // "GROUPING: r.A", "HEAD: Q(A,sm)", "AND ∧", …
    if let Some(rest) = label.strip_prefix("BINDING: ") {
        // Keep only the source relation.
        return match rest.split(" ∈ ").nth(1) {
            Some(src) => format!("BINDING ∈ {src}"),
            None => "BINDING".to_string(),
        };
    }
    if let Some(rest) = label.strip_prefix("PREDICATE: ") {
        // Keep the operator and attribute names, blind the variables.
        let blinded: String = rest
            .split_whitespace()
            .map(|tok| {
                if let Some((_, attr)) = tok.split_once('.') {
                    format!("_.{attr}")
                } else if tok.parse::<f64>().is_ok() || tok.starts_with('\'') {
                    "const".to_string()
                } else {
                    tok.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join(" ");
        return format!("PREDICATE: {blinded}");
    }
    if let Some(rest) = label.strip_prefix("GROUPING: ") {
        let keys = rest.split(", ").count();
        return format!("GROUPING:{keys}");
    }
    if label.starts_with("HEAD: ") {
        return "HEAD".to_string();
    }
    label.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::dsl::*;

    fn q_simple(var: &str, c: i64) -> Collection {
        collection(
            "Q",
            &["A"],
            exists(
                &[bind(var, "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col(var, "A")),
                    eq(col(var, "B"), col("s", "B")),
                    eq(col("s", "C"), int(c)),
                ]),
            ),
        )
    }

    #[test]
    fn renamed_queries_are_identical() {
        let a = q_simple("r", 0);
        let b = q_simple("zz", 42);
        assert_eq!(collection_feature_similarity(&a, &b), 1.0);
        assert!(structural_similarity(&a, &b) > 0.999);
    }

    #[test]
    fn different_patterns_score_lower() {
        let a = q_simple("r", 0);
        // Same relations, but with negation instead of a join.
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    not(exists(
                        &[bind("s", "S")],
                        and([eq(col("r", "B"), col("s", "B"))]),
                    )),
                ]),
            ),
        );
        let sim = collection_feature_similarity(&a, &b);
        assert!(sim < 0.99, "negation must lower similarity, got {sim}");
        assert!(structural_similarity(&a, &b) < 0.95);
    }

    #[test]
    fn fio_vs_foi_are_similar_but_not_identical() {
        let fio = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let x = collection(
            "X",
            &["sm"],
            quant(
                &[bind("r2", "R")],
                group_all(),
                None,
                and([
                    eq(col("r2", "A"), col("r", "A")),
                    assign_agg("X", "sm", sum(col("r2", "B"))),
                ]),
            ),
        );
        let foi = collection(
            "Q",
            &["A", "sm"],
            exists(
                &[bind("r", "R"), bind_coll("x", x)],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "sm", col("x", "sm")),
                ]),
            ),
        );
        let sim = collection_feature_similarity(&fio, &foi);
        assert!(sim > 0.4 && sim < 1.0, "got {sim}");
    }

    #[test]
    fn tree_edit_distance_basics() {
        use arc_core::alt::TreeNode;
        let a = TreeNode::node("X", vec![TreeNode::leaf("a"), TreeNode::leaf("b")]);
        let b = TreeNode::node("X", vec![TreeNode::leaf("a")]);
        assert_eq!(tree_edit_distance(&a, &a), 0);
        assert_eq!(tree_edit_distance(&a, &b), 1);
        let c = TreeNode::node("Y", vec![TreeNode::leaf("a"), TreeNode::leaf("c")]);
        assert_eq!(tree_edit_distance(&a, &c), 2);
    }

    #[test]
    fn similarity_is_symmetric() {
        let a = q_simple("r", 0);
        let b = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        let s1 = structural_similarity(&a, &b);
        let s2 = structural_similarity(&b, &a);
        assert!((s1 - s2).abs() < 1e-9);
    }
}
