//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * **nested-loop vs. hash-join** evaluation strategy on growing
//!   equi-join workloads (the strategy seam's reason to exist);
//! * **naive vs. semi-naive** fixpoint over growing transitive-closure
//!   chains;
//! * **FIO vs. FOI** evaluation cost (the FOI pattern re-scans the inner
//!   relation per outer tuple — the asymptotic price of Klug-style
//!   per-aggregate scopes);
//! * **inline vs. reified arithmetic** (access-pattern dispatch overhead —
//!   now mostly plan-cache hits: repeated queries skip planning through
//!   the global cache);
//! * **set vs. bag** semantics (deduplication cost at collection
//!   boundaries);
//! * **sequential vs. partitioned parallel** execution (`arc-exec`):
//!   the same planned pipeline scattered across 1/2/4/8 pool workers on
//!   scan-heavy fixtures — the `parallel` series of `BENCH_eval.json`;
//! * **statistics on vs. off** (`arc-stats` cost model v2): the skewed
//!   range-filtered join where an `ANALYZE`d catalog flips the join
//!   order/access path, plus the cost of the `ANALYZE` pass itself;
//! * **decorrelated vs. nested boolean scopes** (`ARC_DECORRELATE`): a
//!   correlated `EXISTS`/`NOT EXISTS` over a skewed inner relation, with
//!   growing outer cardinality — the set-level semi/anti-join builds its
//!   key set once while the nested path exhausts a probe bucket per
//!   outer miss;
//! * **ordered index-range vs. vectorized full scan** (`ARC_INDEX`): the
//!   skewed range-join and multi-column prefix fixtures, where a
//!   selective bound prefix turns an O(n) filtered scan into one binary
//!   search over a build-once sorted permutation;
//! * **trace off vs. on** (`ARC_TRACE`): the observability knob's whole
//!   overhead — clock reads around build seams; counters run either way
//!   and per-operator actuals cost nothing outside `explain_analyze_*`.

use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Engine, EvalStrategy, FixpointStrategy};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

/// Eq (1)'s equi-join (R ⋈ S on B, filtered) over growing instances: the
/// nested loop is O(|R|·|S|), the hash join O(|R|+|S|), and the planned
/// pipeline additionally reorders (probing the constant-filtered side
/// first) and pushes the filter onto its scan. This is the headline number
/// recorded in `BENCH_eval.json`.
fn nested_loop_vs_hash_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_join_strategy");
    let q = fx::eq1();
    for n in [64usize, 256, 1024] {
        let catalog = fx::rs_catalog(n);
        for (name, strategy) in [
            ("nested_loop", EvalStrategy::NestedLoop),
            ("hash_join", EvalStrategy::HashJoin),
            ("planned", EvalStrategy::Planned),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql()).with_strategy(strategy);
                b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
            });
        }
    }
    g.finish();
}

fn naive_vs_semi_naive(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fixpoint");
    let program = fx::eq16();
    for depth in [16usize, 32, 64] {
        let catalog = arc_analysis::chain_catalog(depth, 0, 3);
        g.bench_with_input(BenchmarkId::new("naive", depth), &depth, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| {
                black_box(
                    engine
                        .eval_program_with(&program, FixpointStrategy::Naive)
                        .unwrap()
                        .defined["A"]
                        .len(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("semi_naive", depth), &depth, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| {
                black_box(
                    engine
                        .eval_program_with(&program, FixpointStrategy::SemiNaive)
                        .unwrap()
                        .defined["A"]
                        .len(),
                )
            });
        });
    }
    g.finish();
}

fn fio_vs_foi_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_fio_foi");
    let fio = fx::eq3();
    let foi = fx::eq7();
    let rewritten = arc_analysis::fio_to_foi(&fio).expect("rewrite applies");
    for n in [64usize, 192] {
        let catalog = fx::grouped_catalog(n, 8);
        for (name, q) in [("fio", &fio), ("foi", &foi), ("fio_to_foi", &rewritten)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::set());
                b.iter(|| black_box(engine.eval_collection(q).unwrap().len()));
            });
        }
    }
    g.finish();
}

fn inline_vs_reified(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_reify");
    let inline = fx::eq19();
    let reified = arc_analysis::reify_arith(&inline);
    let catalog = fx::fig15_catalog();
    g.bench_function("inline_arith", |b| {
        let engine = Engine::new(&catalog, Conventions::set());
        b.iter(|| black_box(engine.eval_collection(&inline).unwrap().len()));
    });
    g.bench_function("reified_external", |b| {
        let engine = Engine::new(&catalog, Conventions::set());
        b.iter(|| black_box(engine.eval_collection(&reified).unwrap().len()));
    });
    g.finish();
}

fn set_vs_bag(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_set_bag");
    let q = fx::eq1();
    let catalog = fx::rs_catalog(512);
    for (name, conv) in [("set", Conventions::set()), ("bag", Conventions::sql())] {
        g.bench_function(name, |b| {
            let engine = Engine::new(&catalog, conv);
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

/// Partitioned parallel execution: the same planned pipeline under
/// growing `ARC_THREADS` (via `Engine::with_threads`) on two scan-heavy
/// shapes — Eq (3)'s single big grouped scan, and Eq (19)'s multi-scan
/// non-equi join where each morsel of the outer scan drives the full
/// inner pipeline. Merge order is deterministic, so results are
/// row-identical to `threads = 1` (workspace invariant 9).
fn sequential_vs_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_parallel");
    let q3 = fx::eq3();
    for n in [4096usize, 16384] {
        let catalog = fx::grouped_catalog(n, 64);
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("eq3_group_scan_t{threads}"), n),
                &n,
                |b, _| {
                    let engine = Engine::new(&catalog, Conventions::set()).with_threads(threads);
                    b.iter(|| black_box(engine.eval_collection(&q3).unwrap().len()));
                },
            );
        }
    }
    let q19 = fx::eq19();
    for n in [512usize, 2048] {
        let catalog = fx::arith_catalog(n, 24);
        for threads in [1usize, 2, 4, 8] {
            g.bench_with_input(
                BenchmarkId::new(format!("eq19_multi_scan_t{threads}"), n),
                &n,
                |b, _| {
                    let engine = Engine::new(&catalog, Conventions::sql()).with_threads(threads);
                    b.iter(|| black_box(engine.eval_collection(&q19).unwrap().len()));
                },
            );
        }
    }
    g.finish();
}

/// Cost model v2: the skewed fixture (`R` scaled, unique `A`, narrow
/// range filter; fixed 64-row `S`) evaluated with an `ANALYZE`d catalog
/// vs. a statistics-free one. With statistics the planner scans the
/// filtered `R` first and probes `S` (workspace invariant 10's companion
/// test pins the flip); without, it scans all of `S` and probes `R`. The
/// `analyze` series prices the ANALYZE pass itself (sketches, histograms,
/// MCVs for both relations).
fn stats_on_vs_off(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_stats");
    for n in [1024usize, 4096, 16384] {
        let q = fx::eq1_range(n);
        let mut with_stats = fx::stats_skew_catalog(n);
        with_stats.analyze();
        let mut without = fx::stats_skew_catalog(n);
        without.clear_stats();
        for (name, catalog) in [("stats_on", &with_stats), ("stats_off", &without)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(catalog, Conventions::sql());
                b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
            });
        }
        g.bench_with_input(BenchmarkId::new("analyze", n), &n, |b, _| {
            let mut catalog = fx::stats_skew_catalog(n);
            b.iter(|| black_box(catalog.analyze()));
        });
    }
    g.finish();
}

/// Set-level semi/anti-joins vs. the per-outer-row nested path: the
/// correlated `EXISTS`/`NOT EXISTS` fixture over a skewed 16-key inner
/// relation (each probe bucket holds `k/16` rows; only the last few `S`
/// rows pass the inner filter, so most outer rows *miss* and the nested
/// path exhausts a whole bucket per row). The outer cardinality grows
/// while the inner stays fixed — the decorrelated win is the build-once
/// amortization, so it grows with the outer side. Both engines run the
/// planned pipeline; only `Engine::with_decorrelate` differs, mirroring
/// `ARC_DECORRELATE=on/off`.
fn semijoin_on_vs_off(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_semijoin");
    let k = 1024;
    let exists = fx::exists_corr(k);
    let not_exists = fx::not_exists_corr(k);
    for n in [256usize, 1024, 4096] {
        let catalog = fx::semijoin_catalog(n, k);
        for (name, q, decorrelate) in [
            ("exists_decorrelated", &exists, true),
            ("exists_nested", &exists, false),
            ("not_exists_decorrelated", &not_exists, true),
            ("not_exists_nested", &not_exists, false),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql())
                    .with_strategy(EvalStrategy::Planned)
                    .with_decorrelate(decorrelate);
                b.iter(|| black_box(engine.eval_collection(q).unwrap().len()));
            });
        }
    }
    g.finish();
}

/// Vectorized columnar kernels vs. the row-at-a-time path
/// (`ARC_VECTOR=on/off`, via `Engine::with_vectorize`) on three shapes:
/// the constant-filter scan (pure kernel work: one selection vector
/// instead of per-row environment push + predicate dispatch), Eq (1)'s
/// equi-join (columnar hash-index build + filtered scan), and the PR 5
/// correlated-`EXISTS` fixture (the decorrelated semi-join's key set
/// built from column slices). Column encodings are cached on the
/// relations, so the series prices steady-state evaluation, not the
/// one-time encode.
fn vectorized_vs_row_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_columnar");
    let scan = fx::filter_scan();
    for n in [4096usize, 16384, 65536] {
        let catalog = fx::filter_catalog(n);
        for (name, vectorize) in [
            ("filter_scan_vectorized", true),
            ("filter_scan_rows", false),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql()).with_vectorize(vectorize);
                b.iter(|| black_box(engine.eval_collection(&scan).unwrap().len()));
            });
        }
    }
    let join = fx::eq1();
    for n in [1024usize, 4096] {
        let catalog = fx::rs_catalog(n);
        for (name, vectorize) in [("eq1_join_vectorized", true), ("eq1_join_rows", false)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql()).with_vectorize(vectorize);
                b.iter(|| black_box(engine.eval_collection(&join).unwrap().len()));
            });
        }
    }
    let k = 1024;
    let exists = fx::exists_corr(k);
    for n in [1024usize, 4096] {
        let catalog = fx::semijoin_catalog(n, k);
        for (name, vectorize) in [("semijoin_vectorized", true), ("semijoin_rows", false)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql())
                    .with_strategy(EvalStrategy::Planned)
                    .with_vectorize(vectorize);
                b.iter(|| black_box(engine.eval_collection(&exists).unwrap().len()));
            });
        }
    }
    g.finish();
}

/// Ordered index-range vs. the vectorized full scan (`ARC_INDEX=on/off`,
/// via `Engine::with_indexes`) on two shapes, both `ANALYZE`d (only
/// statistics make index-range a candidate): the skewed range-join
/// fixture (`r.A > n-8` keeps 7 of `n` rows — the scan pays O(n) kernel
/// work per evaluation, the index one binary search over a sorted
/// permutation cached on the relation), and the multi-column prefix
/// fixture (`r.A = 3` extends the prefix, `r.B > n-64` closes it,
/// `r.C <> 1` is demoted to a post-filter over the streamed matches).
fn index_vs_scan(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_index");
    for n in [4096usize, 16384, 65536] {
        let q = fx::eq1_range(n);
        let mut catalog = fx::stats_skew_catalog(n);
        catalog.analyze();
        for (name, indexes) in [("range_join_indexed", true), ("range_join_scan", false)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql()).with_indexes(indexes);
                b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
            });
        }
    }
    for n in [16384usize, 65536] {
        let q = fx::prefix_range(n);
        let mut catalog = fx::prefix_catalog(n);
        catalog.analyze();
        for (name, indexes) in [("prefix_indexed", true), ("prefix_scan", false)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let engine = Engine::new(&catalog, Conventions::sql()).with_indexes(indexes);
                b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
            });
        }
    }
    g.finish();
}

/// Trace off vs. on (`ARC_TRACE`, via `Engine::with_trace` plus the
/// registry's global timing gate): the same planned evaluation with and
/// without clock reads at the build seams. No profile sink is attached —
/// plain evaluation never gathers per-operator actuals (those cost only
/// inside `explain_analyze_*`/`profile_*`), so the measured delta is the
/// knob's whole overhead: registry counters are unconditional either way,
/// and trace-on adds `Instant::now` pairs around index/selection/key-set
/// builds (once per build, never per row). The acceptance bar is
/// trace-off within noise of the PR 7 recording and trace-on ≤ 10% over
/// trace-off on both shapes.
fn trace_on_vs_off(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_trace");
    let q1 = fx::eq1();
    for n in [1024usize, 4096] {
        let catalog = fx::rs_catalog(n);
        for (name, trace) in [("eq1_trace_off", false), ("eq1_trace_on", true)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let was = arc_trace::enabled();
                arc_trace::set_enabled(trace);
                let engine = Engine::new(&catalog, Conventions::sql()).with_trace(trace);
                b.iter(|| black_box(engine.eval_collection(&q1).unwrap().len()));
                arc_trace::set_enabled(was);
            });
        }
    }
    let q19 = fx::eq19();
    for n in [512usize, 2048] {
        let catalog = fx::arith_catalog(n, 24);
        for (name, trace) in [("eq19_trace_off", false), ("eq19_trace_on", true)] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let was = arc_trace::enabled();
                arc_trace::set_enabled(trace);
                let engine = Engine::new(&catalog, Conventions::sql()).with_trace(trace);
                b.iter(|| black_box(engine.eval_collection(&q19).unwrap().len()));
                arc_trace::set_enabled(was);
            });
        }
    }
    g.finish();
}

/// Spans off vs. on (`ARC_SPANS`, via `Engine::with_spans`), plus the
/// always-on latency quantiles priced against a quantile-recording-off
/// baseline, on two shapes: the sequential equi-join and the skewed
/// range-join widened past the partition gate so a 4-thread run records
/// morsel spans and per-morsel latency samples. Spans-off is the
/// default engine — no sink is allocated, the only cost is one `Option`
/// check per seam — and spans-on appends two fixed-size ring-buffer
/// slots per scope/step/build/morsel (never per row). The acceptance
/// bar is spans-off within noise of the quantiles-off baseline (the
/// always-on samples sit at per-query/per-morsel seams) and spans-on
/// ≤ 10% over spans-off on both shapes.
fn spans_on_vs_off(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_span");
    let q1 = fx::eq1();
    for n in [1024usize, 4096] {
        let catalog = fx::rs_catalog(n);
        for (name, spans, quantiles) in [
            ("eq1_quantiles_off", false, false),
            ("eq1_spans_off", false, true),
            ("eq1_spans_on", true, true),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                arc_trace::quantile::set_recording(quantiles);
                let engine = Engine::new(&catalog, Conventions::sql()).with_spans(spans);
                b.iter(|| black_box(engine.eval_collection(&q1).unwrap().len()));
                arc_trace::quantile::set_recording(true);
            });
        }
    }
    for n in [4096usize, 16384] {
        // Widened range bound (`r.A > n-33` keeps 32 rows): the filtered
        // `R` scan stays above the partition gate, so the scope fans out
        // and the span path includes per-morsel events.
        let q = fx::q(&format!(
            "{{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ r.A > {}]}}",
            n - 33
        ));
        let catalog = fx::stats_skew_catalog(n);
        for (name, spans, quantiles) in [
            ("range_join_quantiles_off", false, false),
            ("range_join_spans_off", false, true),
            ("range_join_spans_on", true, true),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                arc_trace::quantile::set_recording(quantiles);
                let engine = Engine::new(&catalog, Conventions::sql())
                    .with_threads(4)
                    .with_indexes(false)
                    .with_spans(spans);
                b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
                arc_trace::quantile::set_recording(true);
            });
        }
    }
    g.finish();
}

/// The guard off vs. armed (`arc-guard`, PR 10) on two shapes: the
/// sequential equi-join and the partitioned skewed range-join. Three
/// legs per shape: guard-off is the default engine (`make_guard`
/// returns `None`; the only cost is one `Option` check per seam);
/// guard-on-deadline arms a generous never-hit deadline (every
/// enumeration tick and morsel claim reads the clock at the check
/// cadence); guard-on-limits adds a generous memory budget, so every
/// build admission also charges the atomic accountant. The acceptance
/// bar is guard-on ≤ 5% over guard-off on both shapes (hard bar 10%).
fn guard_on_vs_off(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_guard");
    let generous = std::time::Duration::from_secs(3600);
    let budget = 1usize << 30;
    let q1 = fx::eq1();
    for n in [1024usize, 4096] {
        let catalog = fx::rs_catalog(n);
        for (name, deadline, limits) in [
            ("eq1_guard_off", false, false),
            ("eq1_guard_deadline", true, false),
            ("eq1_guard_limits", true, true),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut engine = Engine::new(&catalog, Conventions::sql());
                if deadline {
                    engine = engine.with_timeout(generous);
                }
                if limits {
                    engine = engine.with_mem_budget(budget);
                }
                b.iter(|| black_box(engine.eval_collection(&q1).unwrap().len()));
            });
        }
    }
    for n in [4096usize, 16384] {
        // Same widened range-join as the span series: the filtered `R`
        // scan stays above the partition gate, so the guard is checked
        // per morsel claim across 4 workers and charged per shared build.
        let q = fx::q(&format!(
            "{{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ r.A > {}]}}",
            n - 33
        ));
        let catalog = fx::stats_skew_catalog(n);
        for (name, deadline, limits) in [
            ("range_join_guard_off", false, false),
            ("range_join_guard_deadline", true, false),
            ("range_join_guard_limits", true, true),
        ] {
            g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
                let mut engine = Engine::new(&catalog, Conventions::sql())
                    .with_threads(4)
                    .with_indexes(false);
                if deadline {
                    engine = engine.with_timeout(generous);
                }
                if limits {
                    engine = engine.with_mem_budget(budget);
                }
                b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
            });
        }
    }
    g.finish();
}

criterion_group! {
    name = ablation;
    config = configured();
    targets = nested_loop_vs_hash_join, naive_vs_semi_naive, fio_vs_foi_cost, inline_vs_reified, set_vs_bag, sequential_vs_parallel, stats_on_vs_off, semijoin_on_vs_off, vectorized_vs_row_path, index_vs_scan, trace_on_vs_off, spans_on_vs_off, guard_on_vs_off
}
criterion_main!(ablation);
