//! One Criterion group per paper figure: each benchmark evaluates the
//! figure's query (or query family) on a scaled version of its instance,
//! so the harness both regenerates the figure's result and measures the
//! conceptual-evaluation cost of its pattern.

use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_engine::{Catalog, Engine, Relation};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

fn fig02_trc(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig02_trc");
    let q = fx::eq1();
    for n in [64usize, 256, 1024] {
        let catalog = fx::rs_catalog(n);
        g.bench_with_input(BenchmarkId::new("eq1_eval", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig03_lateral(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig03_lateral");
    let q = fx::eq2();
    for n in [16usize, 64, 128] {
        let mut x = Relation::new("X", &["A"]);
        let mut y = Relation::new("Y", &["A"]);
        for i in 0..n {
            x.push(vec![(i as i64).into()]);
            y.push(vec![(i as i64).into()]);
        }
        let catalog = Catalog::new().with(x).with(y);
        g.bench_with_input(BenchmarkId::new("eq2_eval", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig04_fio_fig05_foi(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig04_05_fio_vs_foi");
    let fio = fx::eq3();
    let foi = fx::eq7();
    for n in [64usize, 256] {
        let catalog = fx::grouped_catalog(n, 8);
        g.bench_with_input(BenchmarkId::new("fio_eq3", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&fio).unwrap().len()));
        });
        g.bench_with_input(BenchmarkId::new("foi_eq7", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&foi).unwrap().len()));
        });
    }
    g.finish();
}

fn fig06_08_multi_aggregates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig06_08_multi_aggregates");
    for (name, q) in [
        ("eq8_one_scope", fx::eq8()),
        ("eq10_hella", fx::eq10()),
        ("eq12_rel", fx::eq12()),
    ] {
        let catalog = fx::dept_catalog(60, 6);
        g.bench_function(name, |b| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig09_sentences(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig09_sentences");
    let e13 = fx::eq13();
    let e14 = fx::eq14();
    let catalog = fx::count_bug_catalog(false);
    g.bench_function("eq13", |b| {
        let engine = Engine::new(&catalog, Conventions::sql());
        b.iter(|| black_box(engine.eval_sentence(&e13).unwrap()));
    });
    g.bench_function("eq14", |b| {
        let engine = Engine::new(&catalog, Conventions::sql());
        b.iter(|| black_box(engine.eval_sentence(&e14).unwrap()));
    });
    g.finish();
}

fn fig10_recursion(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_recursion");
    let program = fx::eq16();
    for depth in [16usize, 48] {
        let catalog = arc_analysis::chain_catalog(depth, 4, 7);
        g.bench_with_input(BenchmarkId::new("semi_naive", depth), &depth, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| {
                black_box(
                    engine
                        .eval_program_with(&program, arc_engine::FixpointStrategy::SemiNaive)
                        .unwrap()
                        .defined["A"]
                        .len(),
                )
            });
        });
    }
    g.finish();
}

fn fig11_not_in(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_not_in");
    let q = fx::eq17();
    for n in [64usize, 256] {
        let mut r = Relation::new("R", &["A"]);
        let mut s = Relation::new("S", &["A"]);
        for i in 0..n {
            r.push(vec![(i as i64).into()]);
            if i % 2 == 0 {
                s.push(vec![(i as i64).into()]);
            }
        }
        let catalog = Catalog::new().with(r).with(s);
        g.bench_with_input(BenchmarkId::new("eq17_eval", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::sql());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig12_outer_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_outer_join");
    let q = fx::eq18();
    for n in [32usize, 128] {
        let mut r = Relation::new("R", &["m", "y", "h"]);
        let mut s = Relation::new("S", &["y", "n", "q"]);
        for i in 0..n {
            r.push(vec![
                (i as i64).into(),
                (i as i64).into(),
                (if i % 2 == 0 { 11i64 } else { 99 }).into(),
            ]);
            if i % 3 == 0 {
                s.push(vec![(i as i64).into(), (i as i64).into(), 0i64.into()]);
            }
        }
        let catalog = Catalog::new().with(r).with(s);
        g.bench_with_input(BenchmarkId::new("eq18_eval", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::sql());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig13_head_aggregates(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_head_aggregates");
    let schemas = fx::fig13_catalog(true).schema_map();
    let lateral = arc_sql::sql_to_arc(
        "select R.A, X.sm from R join lateral \
         (select sum(S.B) sm from S where S.A < R.A) X on true",
        &schemas,
    )
    .unwrap();
    let leftjoin = arc_sql::sql_to_arc(
        "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A",
        &schemas,
    )
    .unwrap();
    for n in [32usize, 96] {
        let mut r = Relation::new("R", &["A"]);
        let mut s = Relation::new("S", &["A", "B"]);
        for i in 0..n {
            r.push(vec![((i % (n / 2)) as i64).into()]); // duplicates
            s.push(vec![(i as i64).into(), (i as i64).into()]);
        }
        let catalog = Catalog::new().with(r).with(s);
        g.bench_with_input(BenchmarkId::new("lateral", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::sql());
            b.iter(|| black_box(engine.eval_collection(&lateral).unwrap().len()));
        });
        g.bench_with_input(BenchmarkId::new("left_join_group_by", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::sql());
            b.iter(|| black_box(engine.eval_collection(&leftjoin).unwrap().len()));
        });
    }
    g.finish();
}

fn fig15_externals(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig15_externals");
    for (name, q) in [
        ("eq19_inline", fx::eq19()),
        ("eq20_reified", fx::eq20()),
        ("eq21_two_externals", fx::eq21()),
    ] {
        let mut catalog = Catalog::with_standard_externals();
        let mut r = Relation::new("R", &["A", "B"]);
        let mut s = Relation::new("S", &["B"]);
        let mut t = Relation::new("T", &["B"]);
        for i in 0..48i64 {
            r.push(vec![i.into(), (i * 3 % 17).into()]);
            if i < 12 {
                s.push(vec![(i % 7).into()]);
                t.push(vec![(i % 5).into()]);
            }
        }
        catalog.add(r);
        catalog.add(s);
        catalog.add(t);
        g.bench_function(name, |b| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig16_unique_set(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig16_unique_set");
    let direct = fx::eq22();
    let modular = fx::eq24_program();
    for drinkers in [6usize, 10] {
        let catalog = arc_analysis::likes_catalog(drinkers, 4, 11);
        g.bench_with_input(
            BenchmarkId::new("eq22_direct", drinkers),
            &drinkers,
            |b, _| {
                let engine = Engine::new(&catalog, Conventions::set());
                b.iter(|| black_box(engine.eval_collection(&direct).unwrap().len()));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("eq24_abstract_subset", drinkers),
            &drinkers,
            |b, _| {
                let engine = Engine::new(&catalog, Conventions::set());
                b.iter(|| black_box(engine.eval_program(&modular).unwrap().query.unwrap().len()));
            },
        );
    }
    g.finish();
}

fn fig20_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig20_matmul");
    let q = fx::eq26();
    for n in [8usize, 16] {
        let catalog = Catalog::with_standard_externals()
            .with(arc_analysis::sparse_matrix("A", n, 0.4, 1))
            .with(arc_analysis::sparse_matrix("B", n, 0.4, 2));
        g.bench_with_input(BenchmarkId::new("eq26_eval", n), &n, |b, _| {
            let engine = Engine::new(&catalog, Conventions::set());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn fig21_count_bug(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig21_count_bug");
    for (name, q) in [
        ("eq27_v1", fx::eq27()),
        ("eq28_v2", fx::eq28()),
        ("eq29_v3", fx::eq29()),
    ] {
        let mut r = Relation::new("R", &["id", "q"]);
        let mut s = Relation::new("S", &["id", "d"]);
        for i in 0..64i64 {
            r.push(vec![i.into(), (i % 4).into()]);
            if i % 3 != 0 {
                s.push(vec![i.into(), (i * 7).into()]);
            }
        }
        let catalog = Catalog::new().with(r).with(s);
        g.bench_function(name, |b| {
            let engine = Engine::new(&catalog, Conventions::sql());
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

fn conventions(c: &mut Criterion) {
    let mut g = c.benchmark_group("conventions");
    let q = fx::eq15();
    let catalog = fx::eq15_catalog();
    for (name, conv) in [
        ("souffle_zero", Conventions::souffle()),
        ("sql_null", Conventions::sql()),
    ] {
        g.bench_function(name, |b| {
            let engine = Engine::new(&catalog, conv);
            b.iter(|| black_box(engine.eval_collection(&q).unwrap().len()));
        });
    }
    g.finish();
}

criterion_group! {
    name = figures;
    config = configured();
    targets = fig02_trc, fig03_lateral, fig04_fio_fig05_foi, fig06_08_multi_aggregates,
        fig09_sentences, fig10_recursion, fig11_not_in, fig12_outer_join,
        fig13_head_aggregates, fig15_externals, fig16_unique_set, fig20_matmul,
        fig21_count_bug, conventions
}
criterion_main!(figures);
