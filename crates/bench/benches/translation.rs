//! Modality/translation benches: the costs of the machine-facing pipeline
//! the paper proposes for NL2SQL systems — parse, validate, render to
//! SQL/ALT/higraph, compute pattern signatures and similarities.

use arc_bench::fixtures as fx;
use arc_core::binder::Binder;
use arc_core::conventions::Conventions;
use arc_core::pattern::signature;
use arc_higraph::{build_collection, render_svg};
use arc_parser::{parse_collection, print_collection};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn configured() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600))
}

fn parse_print(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_parse_print");
    let src = print_collection(&fx::eq10()); // the largest fixture
    g.bench_function("parse_eq10", |b| {
        b.iter(|| black_box(parse_collection(&src).unwrap()));
    });
    let q = fx::eq10();
    g.bench_function("print_eq10", |b| {
        b.iter(|| black_box(print_collection(&q)));
    });
    g.bench_function("alt_json_round_trip", |b| {
        b.iter(|| {
            let json = arc_core::alt::to_json(&q);
            black_box(arc_core::alt::from_json(&json).unwrap())
        });
    });
    g.finish();
}

fn bind_validate(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_bind");
    let q = fx::eq22(); // deepest nesting
    g.bench_function("bind_eq22", |b| {
        let binder = Binder::new();
        b.iter(|| black_box(binder.bind_collection(&q).is_valid()));
    });
    g.finish();
}

fn sql_round_trip(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_sql");
    let schemas = fx::dept_paper_catalog().schema_map();
    let sql = "select R.dept, avg(S.sal) av from R, S \
               where R.empl = S.empl group by R.dept having sum(S.sal) > 100";
    g.bench_function("lower_fig6a", |b| {
        b.iter(|| black_box(arc_sql::sql_to_arc(sql, &schemas).unwrap()));
    });
    let arc = arc_sql::sql_to_arc(sql, &schemas).unwrap();
    g.bench_function("render_fig6a", |b| {
        b.iter(|| black_box(arc_sql::arc_to_sql(&arc, &Conventions::sql()).unwrap()));
    });
    g.finish();
}

fn datalog_lowering(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_datalog");
    let src = ".decl R(a: number, b: number)\n\
               .decl Q(a: number, s: number)\n\
               Q(a, sum b : {R(a, b)}) :- R(a, _).\n";
    g.bench_function("parse_and_lower_eq6", |b| {
        b.iter(|| {
            let p = arc_datalog::parse_datalog(src).unwrap();
            black_box(arc_datalog::lower_program(&p).unwrap())
        });
    });
    g.finish();
}

fn pattern_and_similarity(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_pattern");
    let a = fx::eq8();
    let b_ = fx::eq10();
    g.bench_function("signature_eq10", |bch| {
        bch.iter(|| black_box(signature(&b_).canon.len()));
    });
    g.bench_function("feature_similarity_eq8_eq10", |bch| {
        bch.iter(|| black_box(arc_analysis::collection_feature_similarity(&a, &b_)));
    });
    g.bench_function("structural_similarity_eq8_eq10", |bch| {
        bch.iter(|| black_box(arc_analysis::structural_similarity(&a, &b_)));
    });
    g.finish();
}

fn higraph_rendering(c: &mut Criterion) {
    let mut g = c.benchmark_group("translation_higraph");
    let q = fx::eq22();
    g.bench_function("build_eq22", |b| {
        b.iter(|| black_box(build_collection(&q).nodes.len()));
    });
    let hg = build_collection(&q);
    g.bench_function("svg_eq22", |b| {
        b.iter(|| black_box(render_svg(&hg).len()));
    });
    g.finish();
}

criterion_group! {
    name = translation;
    config = configured();
    targets = parse_print, bind_validate, sql_round_trip, datalog_lowering,
        pattern_and_similarity, higraph_rendering
}
criterion_main!(translation);
