//! Reproduce every figure/equation of the paper and print the results as
//! Markdown (the content of `EXPERIMENTS.md`):
//!
//! ```text
//! cargo run -p arc-bench --bin experiments > EXPERIMENTS.md
//! ```
//!
//! For each experiment the binary prints the paper's claim, what this
//! implementation measures, and a ✓/✗ status. "Measured" means actually
//! executed on the paper's instances by `arc-engine` (plus pattern-level
//! checks by `arc-core`/`arc-analysis`).

use arc_analysis::{classify, collection_feature_similarity, AggPattern};
use arc_bench::fixtures as fx;
use arc_core::conventions::Conventions;
use arc_core::pattern::signature;
use arc_core::value::Truth;
use arc_engine::{Engine, FixpointStrategy, Relation};
use std::time::Instant;

struct Report {
    rows: Vec<(String, String, String, bool)>,
}

impl Report {
    fn add(&mut self, id: &str, claim: &str, measured: String, ok: bool) {
        self.rows
            .push((id.to_string(), claim.to_string(), measured, ok));
    }
}

fn rows_str(r: &Relation) -> String {
    let rows: Vec<String> = r
        .sorted_rows()
        .iter()
        .map(|row| {
            let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
            format!("({})", cells.join(","))
        })
        .collect();
    if rows.is_empty() {
        "∅".to_string()
    } else {
        rows.join(" ")
    }
}

#[allow(clippy::too_many_lines)]
fn main() {
    let mut rep = Report { rows: Vec::new() };
    let set = Conventions::set();
    let sql = Conventions::sql();

    // ---- Fig 2 / Eq (1) ---------------------------------------------------
    {
        let q = fx::eq1();
        let catalog = fx::rs_catalog(100);
        let out = Engine::new(&catalog, set).eval_collection(&q).unwrap();
        let sig = signature(&q);
        rep.add(
            "Fig 2 / Eq (1)",
            "TRC query binds, links, and evaluates; ALT has explicit bindings + 3 predicates",
            format!(
                "{} rows with 100-row R and S; pattern: {} scope, rel R×{}, rel S×{}",
                out.len(),
                sig.features["scope"],
                sig.features["rel:R"],
                sig.features["rel:S"]
            ),
            sig.features["scope"] == 1 && !out.is_empty(),
        );
    }

    // ---- Fig 3 / Eq (2) ----------------------------------------------------
    {
        let q = fx::eq2();
        let catalog = arc_engine::Catalog::new()
            .with(Relation::from_ints("X", &["A"], &[&[1], &[2]]))
            .with(Relation::from_ints("Y", &["A"], &[&[2], &[3]]));
        let out = Engine::new(&catalog, sql).eval_collection(&q).unwrap();
        let sql_text = "select x.A, z.B from X as x join lateral \
                        (select y.A as B from Y as y where x.A < y.A) as z on true";
        let lowered = arc_sql::sql_to_arc(sql_text, &catalog.schema_map()).unwrap();
        let out2 = Engine::new(&catalog, sql)
            .eval_collection(&lowered)
            .unwrap();
        rep.add(
            "Fig 3 / Eq (2)",
            "Nested comprehension ≡ SQL lateral join",
            format!("ARC: {} — lateral SQL: {}", rows_str(&out), rows_str(&out2)),
            out.bag_eq(&out2),
        );
    }

    // ---- Figs 4+5 / Eqs (3)–(7): FIO vs FOI --------------------------------
    {
        let fio = fx::eq3();
        let foi = fx::eq7();
        let catalog = fx::grouped_catalog(60, 6);
        let engine = Engine::new(&catalog, set);
        let a = engine.eval_collection(&fio).unwrap();
        let b = engine.eval_collection(&foi).unwrap();
        let ca = classify(&fio);
        let cb = classify(&foi);
        rep.add(
            "Figs 4–5 / Eqs (3),(7)",
            "FIO and FOI patterns compute the same grouped sums; FOI uses 2 logical copies of R",
            format!(
                "equal={}, FIO classified {:?} (R×{}), FOI classified {:?} (R×{})",
                a.set_eq(&b),
                ca.aggregates[0].pattern,
                signature(&fio).features["rel:R"],
                cb.aggregates[0].pattern,
                signature(&foi).features["rel:R"],
            ),
            a.set_eq(&b)
                && ca.aggregates[0].pattern == AggPattern::Fio
                && cb.aggregates[0].pattern == AggPattern::Foi,
        );
    }

    // ---- Figs 6/7/8 / Eqs (8),(10),(12) -------------------------------------
    {
        let catalog = fx::dept_paper_catalog();
        let engine = Engine::new(&catalog, set);
        let r8 = engine.eval_collection(&fx::eq8()).unwrap();
        let r10 = engine.eval_collection(&fx::eq10()).unwrap();
        let r12 = engine.eval_collection(&fx::eq12()).unwrap();
        let copies = |c: &arc_core::Collection| signature(c).features["rel:R"];
        rep.add(
            "Figs 6–8 / Eqs (8),(10),(12)",
            "Same answer (dept 1, avg 55); signatures differ: R×1 (ARC/SQL), R×3 (Hella), R×2 (Rel)",
            format!(
                "answers {} / {} / {}; copies of R: {} / {} / {}",
                rows_str(&r8),
                rows_str(&r10),
                rows_str(&r12),
                copies(&fx::eq8()),
                copies(&fx::eq10()),
                copies(&fx::eq12()),
            ),
            r8.set_eq(&r10)
                && r10.set_eq(&r12)
                && copies(&fx::eq8()) == 1
                && copies(&fx::eq10()) == 3
                && copies(&fx::eq12()) == 2,
        );
    }

    // ---- Fig 9 / Eqs (13),(14) ----------------------------------------------
    {
        // R(1,2): count over S = 2, satisfies (13); R(2,5): no S rows, so
        // q=5 > count=0 violates the constraint (14).
        let catalog = arc_engine::Catalog::new()
            .with(Relation::from_ints("R", &["id", "q"], &[&[1, 2], &[2, 5]]))
            .with(Relation::from_ints(
                "S",
                &["id", "d"],
                &[&[1, 10], &[1, 11]],
            ));
        let engine = Engine::new(&catalog, sql);
        let t13 = engine.eval_sentence(&fx::eq13()).unwrap();
        let t14 = engine.eval_sentence(&fx::eq14()).unwrap();
        rep.add(
            "Fig 9 / Eqs (13),(14)",
            "Boolean sentences with aggregation comparison predicates evaluate to truth values",
            format!("(13) = {t13:?}, (14) = {t14:?}"),
            t13 == Truth::True && t14 == Truth::False,
        );
    }

    // ---- Fig 10 / Eq (16): recursion + ablation ------------------------------
    {
        let program = fx::eq16();
        let catalog = arc_analysis::chain_catalog(64, 0, 1);
        let engine = Engine::new(&catalog, set);
        let t0 = Instant::now();
        let naive = engine
            .eval_program_with(&program, FixpointStrategy::Naive)
            .unwrap();
        let t_naive = t0.elapsed();
        let t0 = Instant::now();
        let semi = engine
            .eval_program_with(&program, FixpointStrategy::SemiNaive)
            .unwrap();
        let t_semi = t0.elapsed();
        let n = naive.defined["A"].len();
        rep.add(
            "Fig 10 / Eq (16)",
            "Ancestor = one definition with a disjunctive body; LFP; semi-naive ≡ naive",
            format!(
                "chain(64): {} facts; naive {:?} vs semi-naive {:?} ({}× speedup)",
                n,
                t_naive,
                t_semi,
                (t_naive.as_nanos().max(1) / t_semi.as_nanos().max(1))
            ),
            n == 64 * 65 / 2 && naive.defined["A"].set_eq(&semi.defined["A"]),
        );
    }

    // ---- Fig 11 / Eq (17) ----------------------------------------------------
    {
        let mut s = Relation::new("S", &["A"]);
        s.push(vec![1i64.into()]);
        s.push(vec![arc_core::value::Value::Null]);
        let catalog = arc_engine::Catalog::new()
            .with(Relation::from_ints("R", &["A"], &[&[1], &[3]]))
            .with(s);
        let guarded = Engine::new(&catalog, sql)
            .eval_collection(&fx::eq17())
            .unwrap();
        let not_in = arc_sql::sql_to_arc(
            "select R.A from R where R.A not in (select S.A from S)",
            &catalog.schema_map(),
        )
        .unwrap();
        let same_pattern = signature(&not_in).canon == signature(&fx::eq17()).canon;
        rep.add(
            "Fig 11 / Eq (17)",
            "NOT IN with a NULL in S returns ∅; lowering NOT IN produces exactly the guarded pattern",
            format!("result = {}; NOT IN lowering pattern-identical: {same_pattern}", rows_str(&guarded)),
            guarded.is_empty() && same_pattern,
        );
    }

    // ---- Fig 12 / Eq (18) -----------------------------------------------------
    {
        let catalog = fx::fig12_catalog();
        let out = Engine::new(&catalog, sql)
            .eval_collection(&fx::eq18())
            .unwrap();
        rep.add(
            "Fig 12 / Eq (18)",
            "left(r, inner(11, s)) keeps non-matching R rows null-padded: (1,5) and (2,null)",
            format!("result = {}", rows_str(&out)),
            out.len() == 2 && rows_str(&out).contains("(2,null)"),
        );
    }

    // ---- Fig 13 ---------------------------------------------------------------
    {
        let schemas = fx::fig13_catalog(true).schema_map();
        let lateral = arc_sql::sql_to_arc(
            "select R.A, X.sm from R join lateral \
             (select sum(S.B) sm from S where S.A < R.A) X on true",
            &schemas,
        )
        .unwrap();
        let scalar = arc_sql::sql_to_arc(
            "select R.A, (select sum(S.B) sm from S where S.A < R.A) from R",
            &schemas,
        )
        .unwrap();
        let leftjoin = arc_sql::sql_to_arc(
            "select R.A, sum(S.B) sm from R left join S on S.A < R.A group by R.A",
            &schemas,
        )
        .unwrap();
        let catalog = fx::fig13_catalog(true);
        let engine = Engine::new(&catalog, sql);
        let a = engine.eval_collection(&scalar).unwrap();
        let b = engine.eval_collection(&lateral).unwrap();
        let c = engine.eval_collection(&leftjoin).unwrap();
        rep.add(
            "Fig 13",
            "scalar ≡ lateral under bag semantics with duplicates; LEFT JOIN+GROUP BY diverges",
            format!(
                "scalar {} ; lateral {} ; left-join {}",
                rows_str(&a),
                rows_str(&b),
                rows_str(&c)
            ),
            a.bag_eq(&b) && !a.bag_eq(&c),
        );
    }

    // ---- Fig 15 / Eqs (19)–(21) -------------------------------------------------
    {
        let catalog = fx::fig15_catalog();
        let engine = Engine::new(&catalog, set);
        let a = engine.eval_collection(&fx::eq19()).unwrap();
        let b = engine.eval_collection(&fx::eq20()).unwrap();
        let c = engine.eval_collection(&fx::eq21()).unwrap();
        let reified = arc_analysis::reify_arith(&fx::eq19());
        let d = engine.eval_collection(&reified).unwrap();
        rep.add(
            "Fig 15 / Eqs (19)–(21)",
            "Inline arithmetic ≡ reified Minus ≡ Minus⋈Bigger; reify_arith automates (19)→(20)",
            format!(
                "{} = {} = {} = {} (rewrite)",
                rows_str(&a),
                rows_str(&b),
                rows_str(&c),
                rows_str(&d)
            ),
            a.set_eq(&b) && b.set_eq(&c) && c.set_eq(&d),
        );
    }

    // ---- Figs 16–19 / Eqs (22)–(24) ----------------------------------------------
    {
        let catalog = fx::likes_paper_catalog();
        let engine = Engine::new(&catalog, set);
        let direct = engine.eval_collection(&fx::eq22()).unwrap();
        let modular = engine.eval_program(&fx::eq24_program()).unwrap();
        let modular_q = modular.query.as_ref().unwrap();
        rep.add(
            "Figs 16–19 / Eqs (22)–(24)",
            "Unique-set query; abstract relation Subset modularizes it with the same answer ('b')",
            format!(
                "direct = {}, via abstract Subset = {}",
                rows_str(&direct),
                rows_str(modular_q)
            ),
            direct.set_eq(modular_q) && direct.len() == 1,
        );
    }

    // ---- Fig 20 / Eq (26) ------------------------------------------------------
    {
        let catalog = arc_engine::Catalog::with_standard_externals()
            .with(Relation::from_ints(
                "A",
                &["row", "col", "val"],
                &[&[0, 0, 1], &[0, 1, 2], &[1, 0, 3], &[1, 1, 4]],
            ))
            .with(Relation::from_ints(
                "B",
                &["row", "col", "val"],
                &[&[0, 0, 5], &[0, 1, 6], &[1, 0, 7], &[1, 1, 8]],
            ));
        let out = Engine::new(&catalog, set)
            .eval_collection(&fx::eq26())
            .unwrap();
        rep.add(
            "Fig 20 / Eq (26)",
            "Matrix multiplication via external `*` and grouped sum: [[19,22],[43,50]]",
            format!("C = {}", rows_str(&out)),
            rows_str(&out) == "(0,0,19) (0,1,22) (1,0,43) (1,1,50)",
        );
    }

    // ---- Fig 21 / Eqs (27)–(29) ---------------------------------------------------
    {
        let catalog = fx::count_bug_catalog(true);
        let engine = Engine::new(&catalog, sql);
        let v1 = engine.eval_collection(&fx::eq27()).unwrap();
        let v2 = engine.eval_collection(&fx::eq28()).unwrap();
        let v3 = engine.eval_collection(&fx::eq29()).unwrap();
        rep.add(
            "Fig 21 / Eqs (27)–(29)",
            "On R(9,0), S=∅: version 1 returns 9, version 2 returns ∅ (the bug), version 3 returns 9",
            format!("v1 = {}, v2 = {}, v3 = {}", rows_str(&v1), rows_str(&v2), rows_str(&v3)),
            rows_str(&v1) == "(9)" && v2.is_empty() && rows_str(&v3) == "(9)",
        );
    }

    // ---- §2.6 conventions / Eq (15) -------------------------------------------------
    {
        let catalog = fx::eq15_catalog();
        let souffle = Engine::new(&catalog, Conventions::souffle())
            .eval_collection(&fx::eq15())
            .unwrap();
        let sql_out = Engine::new(&catalog, sql)
            .eval_collection(&fx::eq15())
            .unwrap();
        let same_pattern = signature(&fx::eq15()).canon == signature(&fx::eq15()).canon;
        rep.add(
            "§2.6 / Eq (15)",
            "Conventions flip the result, not the pattern: Soufflé derives Q(1,0), SQL Q(1,null)",
            format!(
                "Soufflé: {}, SQL: {}; pattern unchanged: {same_pattern}",
                rows_str(&souffle),
                rows_str(&sql_out)
            ),
            rows_str(&souffle) == "(1,0)" && rows_str(&sql_out) == "(1,null)",
        );
    }

    // ---- §2.7 set vs bag --------------------------------------------------------------
    {
        let nested = fx::q("{Q(A) | ∃r ∈ R [∃s ∈ S [Q.A = r.A ∧ r.B = s.B]]}");
        let unnested = arc_analysis::unnest(&nested);
        let catalog = arc_engine::Catalog::new()
            .with(Relation::from_ints("R", &["A", "B"], &[&[1, 7]]))
            .with(Relation::from_ints("S", &["B", "C"], &[&[7, 0], &[7, 1]]));
        let set_eq = {
            let e = Engine::new(&catalog, set);
            e.eval_collection(&nested)
                .unwrap()
                .bag_eq(&e.eval_collection(&unnested).unwrap())
        };
        let e = Engine::new(&catalog, sql);
        let n = e.eval_collection(&nested).unwrap();
        let u = e.eval_collection(&unnested).unwrap();
        rep.add(
            "§2.7",
            "Unnesting is valid under set semantics; under bag semantics the nested form is a semijoin",
            format!(
                "set: equal={set_eq}; bag: nested {} row(s) vs unnested {} row(s)",
                n.len(),
                u.len()
            ),
            set_eq && n.len() == 1 && u.len() == 2,
        );
    }

    // ---- Intent metrics (§1/§4) ----------------------------------------------------------
    {
        let gold = fx::eq3();
        let renamed = fx::q("{Out(A,sm) | ∃z ∈ R, γ z.A [Out.A = z.A ∧ Out.sm = sum(z.B)]}");
        let sim = collection_feature_similarity(&gold, &renamed);
        let pattern_match = signature(&gold).canon == signature(&renamed).canon;
        rep.add(
            "§1/§4 intent",
            "Renamed queries fail exact match but are pattern-identical (intent-based comparison)",
            format!("pattern match = {pattern_match}, feature similarity = {sim:.3}"),
            pattern_match && sim == 1.0,
        );
    }

    // ---- Print ----------------------------------------------------------------------------
    println!("# EXPERIMENTS — paper vs. measured\n");
    println!("Generated by `cargo run -p arc-bench --bin experiments`.\n");
    println!("Every row is executed by `arc-engine` on the paper's instances;");
    println!("\"pattern\" checks use `arc-core::pattern` signatures.\n");
    println!("| Experiment | Paper claim | Measured | Status |");
    println!("|---|---|---|---|");
    let mut all_ok = true;
    for (id, claim, measured, ok) in &rep.rows {
        all_ok &= ok;
        println!(
            "| {id} | {claim} | {measured} | {} |",
            if *ok { "✓" } else { "✗" }
        );
    }
    println!();
    println!(
        "**{} / {} experiments reproduce the paper's claims.**",
        rep.rows.iter().filter(|r| r.3).count(),
        rep.rows.len()
    );

    // ---- Execution telemetry appendix -------------------------------------
    // What the runs above *actually did*: an `EXPLAIN ANALYZE` of the
    // skewed range-join (the cost-model acceptance fixture — `q=1.0`
    // means the estimate was exact) and the registry counters the whole
    // binary accumulated. Timings are deliberately absent (`ARC_TRACE`
    // stays off here) so the output is stable enough to diff.
    {
        let n = 1024;
        let mut catalog = fx::stats_skew_catalog(n);
        catalog.analyze();
        let engine = Engine::new(&catalog, sql);
        let analyzed = engine
            .explain_analyze_collection(&fx::eq1_range(n))
            .expect("skew fixture profiles");
        println!();
        println!("## Execution telemetry\n");
        println!("`EXPLAIN ANALYZE` of the skewed range-join (ANALYZEd catalog):\n");
        println!("```\n{analyzed}```\n");
        let counters = arc_trace::Snapshot {
            counters: arc_trace::snapshot().counters,
            histograms: Default::default(),
            quantiles: Default::default(),
        };
        println!("Registry counters accumulated across every experiment above:\n");
        println!("```json\n{}\n```", counters.to_json());
    }

    // ---- Span timeline artifacts ------------------------------------------
    // Perfetto-loadable Chrome-trace timelines for the two ablation
    // fixtures, written next to the build artifacts. Load one at
    // <https://ui.perfetto.dev> (or `chrome://tracing`) to see the
    // query → plan → scope → step → morsel hierarchy per worker lane;
    // span names and `args.op` keys join back to the `EXPLAIN ANALYZE`
    // above.
    {
        let dir = std::path::PathBuf::from(
            std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".into()),
        )
        .join("traces");
        std::fs::create_dir_all(&dir).expect("create trace artifact dir");
        let mut wrote: Vec<(std::path::PathBuf, &str)> = Vec::new();
        {
            let catalog = fx::rs_catalog(100);
            let (_, json) = Engine::new(&catalog, set)
                .span_trace_collection(&fx::eq1())
                .expect("eq1 traces");
            let path = dir.join("eq1.trace.json");
            std::fs::write(&path, json.to_string()).expect("write eq1 trace");
            wrote.push((path, "Eq (1) on the 100-row R ⋈ S instance (sequential)"));
        }
        {
            let n = 4096;
            let catalog = fx::stats_skew_catalog(n);
            // Widened range bound: keeps the filtered `R` scan above the
            // partition gate so the scope fans out across 4 worker lanes
            // (the narrow `eq1_range` bound stays sequential by design).
            let q = fx::q(&format!(
                "{{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ r.A > {}]}}",
                n - 33
            ));
            let (_, json) = Engine::new(&catalog, sql)
                .with_threads(4)
                .with_indexes(false)
                .span_trace_collection(&q)
                .expect("skewed range-join traces");
            let path = dir.join("range_join_skew.trace.json");
            std::fs::write(&path, json.to_string()).expect("write range-join trace");
            wrote.push((path, "skewed range-join partitioned across 4 worker lanes"));
        }
        println!();
        println!("## Span timeline artifacts\n");
        println!("Chrome-trace timelines written by this run (load at ui.perfetto.dev):\n");
        for (path, what) in &wrote {
            println!("- `{}` — {what}", path.display());
        }
        println!();
    }
    if !all_ok {
        std::process::exit(1);
    }
}
