//! Paper fixtures: queries (by equation number) and instances (by figure),
//! in their comprehension-syntax form, parsed on demand.

use arc_core::ast::{Collection, Formula, Program};
use arc_core::binder::SchemaMap;
use arc_engine::{Catalog, Relation};
use arc_parser::{parse_collection, parse_sentence};

/// Parse a fixture (panics on error: fixtures are static).
pub fn q(src: &str) -> Collection {
    parse_collection(src).unwrap_or_else(|e| panic!("fixture parse error: {e}\n{src}"))
}

/// Parse a sentence fixture.
pub fn sentence(src: &str) -> Formula {
    parse_sentence(src).unwrap_or_else(|e| panic!("fixture parse error: {e}\n{src}"))
}

/// Eq (1): the running TRC example (Fig 2).
pub fn eq1() -> Collection {
    q("{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}")
}

/// Eq (2): orthogonal nesting (Fig 3's lateral join).
pub fn eq2() -> Collection {
    q("{Q(A,B) | ∃x ∈ X, z ∈ {Z(B) | ∃y ∈ Y [Z.B = y.A ∧ x.A < y.A]} [Q.A = x.A ∧ Q.B = z.B]}")
}

/// Eq (3): grouped aggregate, FIO (Fig 4).
pub fn eq3() -> Collection {
    q("{Q(A,sm) | ∃r ∈ R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}")
}

/// Eq (7): the same aggregate in the FOI pattern (Fig 5).
pub fn eq7() -> Collection {
    q(
        "{Q(A,sm) | ∃r ∈ R, x ∈ {X(sm) | ∃r2 ∈ R, γ ∅ [r2.A = r.A ∧ X.sm = sum(r2.B)]} \
       [Q.A = r.A ∧ Q.sm = x.sm]}",
    )
}

/// Eq (8): multiple aggregates in one scope + HAVING (Fig 6).
pub fn eq8() -> Collection {
    q(
        "{Q(dept,av) | ∃x ∈ {X(dept,av,sm) | ∃r ∈ R, s ∈ S, γ r.dept \
       [X.dept = r.dept ∧ X.av = avg(s.sal) ∧ X.sm = sum(s.sal) ∧ r.empl = s.empl]} \
       [Q.dept = x.dept ∧ Q.av = x.av ∧ x.sm > 100]}",
    )
}

/// Eq (10): the Hella et al. pattern — separate scope per aggregate (Fig 7).
pub fn eq10() -> Collection {
    q("{Q(dept,av) | ∃r3 ∈ R, s3 ∈ S, \
       x ∈ {X(av) | ∃r1 ∈ R, s1 ∈ S, γ r1.dept \
            [r1.dept = r3.dept ∧ r1.empl = s1.empl ∧ X.av = avg(s1.sal)]}, \
       y ∈ {Y(sm) | ∃r2 ∈ R, s2 ∈ S, γ r2.dept \
            [r2.dept = r3.dept ∧ r2.empl = s2.empl ∧ Y.sm = sum(s2.sal)]} \
       [Q.dept = r3.dept ∧ Q.av = x.av ∧ r3.empl = s3.empl ∧ y.sm > 100]}")
}

/// Eq (12): the Rel pattern — FOI with per-aggregate scopes (Fig 8).
pub fn eq12() -> Collection {
    q(
        "{Q(dept,av) | ∃x ∈ {X(dept,av) | ∃r1 ∈ R, s1 ∈ S, γ r1.dept \
            [X.dept = r1.dept ∧ r1.empl = s1.empl ∧ X.av = avg(s1.sal)]}, \
       y ∈ {Y(dept,sm) | ∃r2 ∈ R, s2 ∈ S, γ r2.dept \
            [Y.dept = r2.dept ∧ r2.empl = s2.empl ∧ Y.sm = sum(s2.sal)]} \
       [Q.dept = x.dept ∧ Q.av = x.av ∧ x.dept = y.dept ∧ y.sm > 100]}",
    )
}

/// Eq (13): boolean sentence with an aggregation comparison (Fig 9b).
pub fn eq13() -> Formula {
    sentence("∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q <= count(s.d)]]")
}

/// Eq (14): its negated integrity-constraint form (Fig 9d).
pub fn eq14() -> Formula {
    sentence("¬∃r ∈ R [∃s ∈ S, γ ∅ [r.id = s.id ∧ r.q > count(s.d)]]")
}

/// Eq (16): recursion — ancestor as one definition (Fig 10).
pub fn eq16() -> Program {
    let anc = q("{A(s,t) | ∃p ∈ P [A.s = p.s ∧ A.t = p.t] ∨ \
                 ∃p ∈ P, a2 ∈ A [A.s = p.s ∧ p.t = a2.s ∧ A.t = a2.t]}");
    Program::default().with_definition(arc_core::ast::Definition { collection: anc })
}

/// Eq (17): NOT IN with explicit null guards (Fig 11).
pub fn eq17() -> Collection {
    q("{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.A = r.A ∨ s.A is null ∨ r.A is null])]}")
}

/// Eq (18): outer join with a literal leaf (Fig 12).
pub fn eq18() -> Collection {
    q("{Q(m,n) | ∃r ∈ R, s ∈ S, left(r, inner(11, s)) \
       [Q.m = r.m ∧ Q.n = s.n ∧ r.y = s.y ∧ r.h = 11]}")
}

/// Eq (19): inline arithmetic (Fig 15a).
pub fn eq19() -> Collection {
    q("{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T [Q.A = r.A ∧ r.B - s.B > t.B]}")
}

/// Eq (20): reified Minus (Fig 15d).
pub fn eq20() -> Collection {
    q("{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus \
       [Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out > t.B]}")
}

/// Eq (21): equijoin between two externals (Fig 15e).
pub fn eq21() -> Collection {
    q("{Q(A) | ∃r ∈ R, s ∈ S, t ∈ T, f ∈ Minus, g ∈ Bigger \
       [Q.A = r.A ∧ f.left = r.B ∧ f.right = s.B ∧ f.out = g.left ∧ g.right = t.B]}")
}

/// Eq (22): the unique-set query, first-order form (Figs 16–17).
pub fn eq22() -> Collection {
    q("{Q(d) | ∃l1 ∈ L [Q.d = l1.d ∧ ¬(∃l2 ∈ L [l2.d <> l1.d ∧ \
       ¬(∃l3 ∈ L [l3.d = l2.d ∧ ¬(∃l4 ∈ L [l4.b = l3.b ∧ l4.d = l1.d])]) ∧ \
       ¬(∃l5 ∈ L [l5.d = l1.d ∧ ¬(∃l6 ∈ L [l6.d = l2.d ∧ l6.b = l5.b])])])]}")
}

/// Eqs (23)+(24): the unique-set query modularized through the abstract
/// relation `Subset` (Figs 16/19).
pub fn eq24_program() -> Program {
    let subset = q("{Subset(left,right) | ¬(∃l3 ∈ L [l3.d = Subset.left ∧ \
                    ¬(∃l4 ∈ L [l4.b = l3.b ∧ l4.d = Subset.right])])}");
    let query = q(
        "{Q(d) | ∃l1 ∈ L [Q.d = l1.d ∧ ¬(∃l2 ∈ L, s1 ∈ Subset, s2 ∈ Subset \
                   [l2.d <> l1.d ∧ s1.left = l1.d ∧ s1.right = l2.d ∧ \
                    s2.left = l2.d ∧ s2.right = l1.d])]}",
    );
    let mut p =
        Program::default().with_definition(arc_core::ast::Definition { collection: subset });
    p.query = Some(query);
    p
}

/// Eq (26): matrix multiplication over the `*` external (Fig 20).
pub fn eq26() -> Collection {
    q(
        "{C(row,col,val) | ∃a ∈ A, b ∈ B, f ∈ \"*\", γ a.row, b.col \
       [C.row = a.row ∧ C.col = b.col ∧ a.col = b.row ∧ \
        C.val = sum(f.out) ∧ f.$1 = a.val ∧ f.$2 = b.val]}",
    )
}

/// Eq (27): count bug version 1 (Fig 21 left).
pub fn eq27() -> Collection {
    q("{Q(id) | ∃r ∈ R [Q.id = r.id ∧ ∃s ∈ S, γ ∅ [s.id = r.id ∧ r.q = count(s.d)]]}")
}

/// Eq (28): count bug version 2 — the bug (Fig 21 middle).
pub fn eq28() -> Collection {
    q(
        "{Q(id) | ∃r ∈ R, x ∈ {X(id,ct) | ∃s ∈ S, γ s.id [X.id = s.id ∧ X.ct = count(s.d)]} \
       [Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}",
    )
}

/// Eq (29): count bug version 3 — the fix (Fig 21 right).
pub fn eq29() -> Collection {
    q(
        "{Q(id) | ∃r ∈ R, x ∈ {X(id,ct) | ∃s ∈ S, r2 ∈ R, γ r2.id, left(r2, s) \
       [X.id = r2.id ∧ X.ct = count(s.d) ∧ r2.id = s.id]} \
       [Q.id = r.id ∧ r.id = x.id ∧ r.q = x.ct]}",
    )
}

/// Eq (15)'s FOI sum with a correlated filter (§2.6 conventions example).
pub fn eq15() -> Collection {
    q(
        "{Q(ak,sm) | ∃r ∈ R, x ∈ {X(sm) | ∃s ∈ S, γ ∅ [s.A < r.A ∧ X.sm = sum(s.B)]} \
       [Q.ak = r.A ∧ Q.sm = x.sm]}",
    )
}

// ---------------------------------------------------------------------------
// Instances
// ---------------------------------------------------------------------------

/// `R(A,B)`, `S(B,C)` with `n` rows each (Fig 2 scale-up).
pub fn rs_catalog(n: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B"]);
    let mut s = Relation::new("S", &["B", "C"]);
    for i in 0..n {
        r.push(vec![(i as i64).into(), ((i % 10) as i64).into()]);
        s.push(vec![((i % 10) as i64).into(), ((i % 2) as i64).into()]);
    }
    Catalog::new().with(r).with(s)
}

/// `R(A,B)` with `n` rows over `groups` distinct keys (Figs 4/5 scale-up).
pub fn grouped_catalog(n: usize, groups: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B"]);
    for i in 0..n {
        r.push(vec![((i % groups) as i64).into(), (i as i64).into()]);
    }
    Catalog::new().with(r)
}

/// The Eq (19) non-equi workload at scale: `R(A,B)` with `n` rows plus
/// `S(B)`/`T(B)` side relations of `k` rows each. No equality predicate
/// reaches any binding, so every step is a scan and the planned pipeline
/// partitions its outer scan under `ARC_THREADS > 1` — the multi-scan
/// fixture of the parallel ablation.
pub fn arith_catalog(n: usize, k: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B"]);
    for i in 0..n {
        r.push(vec![(i as i64).into(), ((i % 97) as i64).into()]);
    }
    let mut s = Relation::new("S", &["B"]);
    let mut t = Relation::new("T", &["B"]);
    for i in 0..k {
        s.push(vec![((i % 13) as i64).into()]);
        t.push(vec![((i % 41) as i64).into()]);
    }
    Catalog::new().with(r).with(s).with(t)
}

/// The statistics-ablation workload: `R(A,B)` with `n` rows (`A` unique,
/// `B = A mod 8`) joined to a fixed 64-row `S(B,C)`. Combined with
/// [`eq1_range`]'s narrow range predicate on `R.A`, only an `ANALYZE`d
/// catalog can see that the big scan shrinks to a handful of rows — the
/// fixture where cost model v2 demonstrably flips the join order and the
/// access path (pinned by workspace invariant 10's companion test).
pub fn stats_skew_catalog(n: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B"]);
    for i in 0..n {
        r.push(vec![(i as i64).into(), ((i % 8) as i64).into()]);
    }
    let mut s = Relation::new("S", &["B", "C"]);
    for i in 0..64 {
        s.push(vec![((i % 8) as i64).into(), ((i % 4) as i64).into()]);
    }
    Catalog::new().with(r).with(s)
}

/// Eq (1)'s join shape with the constant filter turned into a narrow
/// range on the big relation: `r.A > n - 8` keeps 7 of `n` rows. Pairs
/// with [`stats_skew_catalog`].
pub fn eq1_range(n: usize) -> Collection {
    q(&format!(
        "{{Q(A) | ∃r ∈ R, s ∈ S [Q.A = r.A ∧ r.B = s.B ∧ r.A > {}]}}",
        n - 8
    ))
}

/// Multi-column prefix fixture: `R(A,B,C)` with `n` rows, `A = i mod 8`
/// (the equality-prefix column), `B = i` (unique — the range column),
/// `C = i mod 5` (a residue column for demotion). Pairs with
/// [`prefix_range`], whose `r.A = 3 ∧ r.B > n-64` bound an ordered
/// `[A, B]` index answers with one binary search while `r.C <> 1` is
/// demoted to a post-filter over the streamed matches.
pub fn prefix_catalog(n: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B", "C"]);
    for i in 0..n {
        r.push(vec![
            ((i % 8) as i64).into(),
            (i as i64).into(),
            ((i % 5) as i64).into(),
        ]);
    }
    Catalog::new().with(r)
}

/// Constant equality + range + demoted residue over [`prefix_catalog`].
pub fn prefix_range(n: usize) -> Collection {
    q(&format!(
        "{{Q(B) | ∃r ∈ R [Q.B = r.B ∧ r.A = 3 ∧ r.B > {} ∧ r.C <> 1]}}",
        n as i64 - 64
    ))
}

/// Correlated `EXISTS` over [`semijoin_catalog`]: keep outer rows whose
/// join key has a match among the last few `S` rows (`s.C > k - 5`).
/// Most outer rows miss, so the nested path exhausts their whole (skewed)
/// probe bucket per row, while the decorrelated path probes a build-once
/// key set — the `ablation_semijoin` fixture.
pub fn exists_corr(k: usize) -> Collection {
    q(&format!(
        "{{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ∃s ∈ S [s.B = r.B ∧ s.C > {}]]}}",
        k as i64 - 5
    ))
}

/// The negated twin of [`exists_corr`]: `NOT EXISTS`, where the nested
/// path cannot even early-exit on the ~75% of outer rows that succeed.
pub fn not_exists_corr(k: usize) -> Collection {
    q(&format!(
        "{{Q(A) | ∃r ∈ R [Q.A = r.A ∧ ¬(∃s ∈ S [s.B = r.B ∧ s.C > {}])]}}",
        k as i64 - 5
    ))
}

/// Skewed semi-join fixture: `R(A,B)` with `n` rows over 16 heavy join
/// keys, `S(B,C)` with `k` rows over the same 16 keys (`C` unique). Each
/// probe bucket holds `k/16` rows, so a correlated scope that filters on
/// `C` makes the per-outer-row nested path scan ~`k/16` rows per miss.
pub fn semijoin_catalog(n: usize, k: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B"]);
    for i in 0..n {
        r.push(vec![(i as i64).into(), ((i % 16) as i64).into()]);
    }
    let mut s = Relation::new("S", &["B", "C"]);
    for i in 0..k {
        s.push(vec![((i % 16) as i64).into(), (i as i64).into()]);
    }
    Catalog::new().with(r).with(s)
}

/// Constant-filter scan fixture: `R(A,B)` with `n` rows, `B = i mod
/// 1000`, paired with [`filter_scan`]'s `r.B > 995` predicate (~0.4%
/// selectivity). Runtime is dominated by filter evaluation over a big
/// scan — the shape the columnar kernels accelerate
/// (`ablation_columnar`).
pub fn filter_catalog(n: usize) -> Catalog {
    let mut r = Relation::new("R", &["A", "B"]);
    for i in 0..n {
        r.push(vec![(i as i64).into(), ((i % 1000) as i64).into()]);
    }
    Catalog::new().with(r)
}

/// The constant-filter scan over [`filter_catalog`].
pub fn filter_scan() -> Collection {
    q("{Q(A) | ∃r ∈ R [Q.A = r.A ∧ r.B > 995]}")
}

/// Employees/departments (Figs 6–8): `n` employees over `depts` departments.
pub fn dept_catalog(n: usize, depts: usize) -> Catalog {
    let mut r = Relation::new("R", &["empl", "dept"]);
    let mut s = Relation::new("S", &["empl", "sal"]);
    for i in 0..n {
        r.push(vec![(i as i64).into(), ((i % depts) as i64).into()]);
        s.push(vec![(i as i64).into(), ((40 + i % 30) as i64).into()]);
    }
    Catalog::new().with(r).with(s)
}

/// The paper's Fig 6 instance (two departments, salaries 50/60/40).
pub fn dept_paper_catalog() -> Catalog {
    Catalog::new()
        .with(Relation::from_ints(
            "R",
            &["empl", "dept"],
            &[&[1, 1], &[2, 1], &[3, 2]],
        ))
        .with(Relation::from_ints(
            "S",
            &["empl", "sal"],
            &[&[1, 50], &[2, 60], &[3, 40]],
        ))
}

/// Fig 9 / count-bug instances: `R(id,q)`, `S(id,d)`.
pub fn count_bug_catalog(paper: bool) -> Catalog {
    if paper {
        Catalog::new()
            .with(Relation::from_ints("R", &["id", "q"], &[&[9, 0]]))
            .with(Relation::from_ints("S", &["id", "d"], &[]))
    } else {
        Catalog::new()
            .with(Relation::from_ints(
                "R",
                &["id", "q"],
                &[&[1, 2], &[2, 1], &[3, 0]],
            ))
            .with(Relation::from_ints(
                "S",
                &["id", "d"],
                &[&[1, 10], &[1, 11], &[2, 20]],
            ))
    }
}

/// Fig 12's outer-join instance.
pub fn fig12_catalog() -> Catalog {
    Catalog::new()
        .with(Relation::from_ints(
            "R",
            &["m", "y", "h"],
            &[&[1, 10, 11], &[2, 20, 99]],
        ))
        .with(Relation::from_ints(
            "S",
            &["y", "n", "q"],
            &[&[10, 5, 0], &[30, 6, 0]],
        ))
}

/// Fig 15's arithmetic instance (with standard externals registered).
pub fn fig15_catalog() -> Catalog {
    Catalog::with_standard_externals()
        .with(Relation::from_ints("R", &["A", "B"], &[&[1, 10], &[2, 5]]))
        .with(Relation::from_ints("S", &["B"], &[&[3]]))
        .with(Relation::from_ints("T", &["B"], &[&[5]]))
}

/// Fig 13's duplicate-sensitive instance.
pub fn fig13_catalog(dup: bool) -> Catalog {
    let r: &[&[i64]] = if dup {
        &[&[3], &[3], &[5]]
    } else {
        &[&[3], &[5]]
    };
    Catalog::new()
        .with(Relation::from_ints("R", &["A"], r))
        .with(Relation::from_ints(
            "S",
            &["A", "B"],
            &[&[1, 10], &[2, 20], &[4, 40]],
        ))
}

/// Eq (15)'s instance: `R = {(1,2)}`, `S = ∅`.
pub fn eq15_catalog() -> Catalog {
    Catalog::new()
        .with(Relation::from_ints("R", &["A", "B"], &[&[1, 2]]))
        .with(Relation::from_ints("S", &["A", "B"], &[]))
}

/// The paper's beer-drinkers instance (§2.13.2): only `b` is unique.
pub fn likes_paper_catalog() -> Catalog {
    let mut l = Relation::new("L", &["d", "b"]);
    for (d, b) in [("a", 1), ("a", 2), ("b", 1), ("c", 1), ("c", 2)] {
        l.push(vec![arc_core::value::Value::str(d), (b as i64).into()]);
    }
    Catalog::new().with(l)
}

/// Schema map covering every fixture (for binder/SQL round-trips).
pub fn all_schemas() -> SchemaMap {
    let mut m = SchemaMap::new();
    for (name, attrs) in [
        ("R", vec!["A", "B"]),
        ("S", vec!["B", "C"]),
        ("T", vec!["B"]),
        ("X", vec!["A"]),
        ("Y", vec!["A"]),
        ("P", vec!["s", "t"]),
        ("L", vec!["d", "b"]),
    ] {
        m.insert(
            name.to_string(),
            attrs.into_iter().map(|s| s.to_string()).collect(),
        );
    }
    m
}
