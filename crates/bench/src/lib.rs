//! Shared fixtures for the benchmark suite and the experiments binary:
//! every paper figure's queries and instances, constructed once, reused by
//! `benches/*` and `src/bin/experiments.rs`.

#![warn(missing_docs)]

pub mod fixtures;
