//! The **Abstract Language Tree (ALT)** text modality.
//!
//! Renders a collection in exactly the tree style of the paper's figures
//! (Fig 2a, 4b, 5c, 6b, 10a, 13d, 21g–i):
//!
//! ```text
//! COLLECTION
//! ├─ HEAD: Q(A,sm)
//! └─ QUANTIFIER ∃
//!    ├─ BINDING: r ∈ R
//!    ├─ GROUPING: r.A
//!    └─ AND ∧
//!       ├─ PREDICATE: Q.A = r.A
//!       └─ PREDICATE: Q.sm = sum(r.B)
//! ```
//!
//! Because ARC's AST *is* its ALT, this is a direct structural rendering,
//! not a lowering. The JSON form (the [`crate::json`] wire format) serves
//! as the machine-interchange format the paper proposes for NL2SQL
//! pipelines.

use crate::ast::*;

/// A generic labelled tree, the rendering intermediate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeNode {
    /// Node label as shown in the figure.
    pub label: String,
    /// Children in display order.
    pub children: Vec<TreeNode>,
}

impl TreeNode {
    /// Leaf constructor.
    pub fn leaf(label: impl Into<String>) -> Self {
        TreeNode {
            label: label.into(),
            children: Vec::new(),
        }
    }

    /// Inner-node constructor.
    pub fn node(label: impl Into<String>, children: Vec<TreeNode>) -> Self {
        TreeNode {
            label: label.into(),
            children,
        }
    }

    /// Total number of nodes.
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(|c| c.size()).sum::<usize>()
    }
}

/// Build the ALT for a collection.
pub fn collection_tree(c: &Collection) -> TreeNode {
    let mut children = vec![TreeNode::leaf(format!("HEAD: {}", c.head))];
    children.push(formula_tree(&c.body));
    TreeNode::node("COLLECTION", children)
}

/// Build the ALT for a sentence (a formula without a head, Fig 9).
pub fn sentence_tree(f: &Formula) -> TreeNode {
    TreeNode::node("SENTENCE", vec![formula_tree(f)])
}

/// Build the ALT for a formula.
pub fn formula_tree(f: &Formula) -> TreeNode {
    match f {
        Formula::Quant(q) => quant_tree(q),
        Formula::And(fs) => TreeNode::node("AND ∧", fs.iter().map(formula_tree).collect()),
        Formula::Or(fs) => TreeNode::node("OR ∨", fs.iter().map(formula_tree).collect()),
        Formula::Not(inner) => TreeNode::node("NOT ¬", vec![formula_tree(inner)]),
        Formula::Pred(p) => TreeNode::leaf(format!("PREDICATE: {p}")),
    }
}

fn quant_tree(q: &Quant) -> TreeNode {
    let mut children = Vec::with_capacity(q.bindings.len() + 3);
    for b in &q.bindings {
        match &b.source {
            BindingSource::Named(rel) => {
                children.push(TreeNode::leaf(format!("BINDING: {} ∈ {}", b.var, rel)));
            }
            BindingSource::Collection(c) => {
                children.push(TreeNode::node(
                    format!("BINDING: {} ∈", b.var),
                    vec![collection_tree(c)],
                ));
            }
        }
    }
    if let Some(g) = &q.grouping {
        if g.keys.is_empty() {
            children.push(TreeNode::leaf("GROUPING: ∅"));
        } else {
            let keys: Vec<String> = g.keys.iter().map(|k| k.to_string()).collect();
            children.push(TreeNode::leaf(format!("GROUPING: {}", keys.join(", "))));
        }
    }
    if let Some(j) = &q.join {
        children.push(TreeNode::leaf(format!("JOIN: {j}")));
    }
    children.push(formula_tree(&q.body));
    TreeNode::node("QUANTIFIER ∃", children)
}

/// Render a tree with box-drawing connectors, matching the paper's layout.
pub fn render_tree(t: &TreeNode) -> String {
    let mut out = String::new();
    out.push_str(&t.label);
    out.push('\n');
    render_children(&t.children, "", &mut out);
    out
}

fn render_children(children: &[TreeNode], prefix: &str, out: &mut String) {
    for (i, child) in children.iter().enumerate() {
        let last = i + 1 == children.len();
        let (connector, extension) = if last {
            ("└─ ", "   ")
        } else {
            ("├─ ", "│  ")
        };
        out.push_str(prefix);
        out.push_str(connector);
        out.push_str(&child.label);
        out.push('\n');
        let child_prefix = format!("{prefix}{extension}");
        render_children(&child.children, &child_prefix, out);
    }
}

/// Render a collection's ALT to text (the paper's machine-facing modality
/// shown human-readably).
pub fn render_collection(c: &Collection) -> String {
    render_tree(&collection_tree(c))
}

/// Render a sentence's ALT to text.
pub fn render_sentence(f: &Formula) -> String {
    render_tree(&sentence_tree(f))
}

/// Serialize a collection's ALT to pretty JSON (the machine-interchange
/// form for NL2SQL intermediate targets, §4/§5). The wire format is
/// defined by [`crate::json`].
pub fn to_json(c: &Collection) -> String {
    crate::json::to_json(c)
}

/// Deserialize a collection from its JSON ALT.
pub fn from_json(s: &str) -> Result<Collection, crate::json::JsonError> {
    crate::json::from_json(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    /// Eq (1) / Fig 2a.
    fn eq1() -> Collection {
        collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(0)),
                ]),
            ),
        )
    }

    #[test]
    fn fig2a_alt_rendering_matches_paper_layout() {
        let rendered = render_collection(&eq1());
        let expected = "\
COLLECTION
├─ HEAD: Q(A)
└─ QUANTIFIER ∃
   ├─ BINDING: r ∈ R
   ├─ BINDING: s ∈ S
   └─ AND ∧
      ├─ PREDICATE: Q.A = r.A
      ├─ PREDICATE: r.B = s.B
      └─ PREDICATE: s.C = 0
";
        assert_eq!(rendered, expected);
    }

    #[test]
    fn fig4b_grouping_rendered() {
        let q = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let rendered = render_collection(&q);
        assert!(rendered.contains("GROUPING: r.A"));
        assert!(rendered.contains("PREDICATE: Q.sm = sum(r.B)"));
    }

    #[test]
    fn nested_collection_binding_renders_as_subtree() {
        // Fig 5c shape.
        let inner = collection(
            "X",
            &["sm"],
            quant(
                &[bind("r2", "R")],
                group_all(),
                None,
                and([
                    eq(col("r2", "A"), col("r", "A")),
                    assign_agg("X", "sm", sum(col("r2", "B"))),
                ]),
            ),
        );
        let q = collection(
            "Q",
            &["A", "sm"],
            exists(
                &[bind("r", "R"), bind_coll("x", inner)],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "sm", col("x", "sm")),
                ]),
            ),
        );
        let rendered = render_collection(&q);
        assert!(rendered.contains("BINDING: x ∈"));
        assert!(rendered.contains("GROUPING: ∅"));
        assert!(rendered.contains("│     ├─ HEAD: X(sm)"));
    }

    #[test]
    fn fig21i_join_annotation_rendered() {
        let inner = collection(
            "X",
            &["id", "ct"],
            quant(
                &[bind("r2", "R"), bind("s", "S")],
                group(&[("r2", "id")]),
                Some(jleft(jvar("r2"), jvar("s"))),
                and([
                    assign("X", "id", col("r2", "id")),
                    assign_agg("X", "ct", count(col("s", "d"))),
                    eq(col("r2", "id"), col("s", "id")),
                ]),
            ),
        );
        let rendered = render_collection(&collection(
            "Q",
            &["id"],
            exists(
                &[bind("r", "R"), bind_coll("x", inner)],
                and([
                    assign("Q", "id", col("r", "id")),
                    eq(col("r", "id"), col("x", "id")),
                    eq(col("r", "q"), col("x", "ct")),
                ]),
            ),
        ));
        assert!(rendered.contains("JOIN: left(r2, s)"));
        assert!(rendered.contains("GROUPING: r2.id"));
    }

    #[test]
    fn json_round_trip() {
        let q = eq1();
        let json = to_json(&q);
        let back = from_json(&json).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn sentence_rendering() {
        let s = exists(
            &[bind("r", "R")],
            and([quant(
                &[bind("s", "S")],
                group_all(),
                None,
                and([
                    eq(col("r", "id"), col("s", "id")),
                    le(col("r", "q"), count(col("s", "d"))),
                ]),
            )]),
        );
        let rendered = render_sentence(&s);
        assert!(rendered.starts_with("SENTENCE\n"));
        assert!(rendered.contains("PREDICATE: r.q <= count(s.d)"));
    }

    #[test]
    fn tree_size_counts_nodes() {
        let t = collection_tree(&eq1());
        // COLLECTION + HEAD + QUANT + 2 BINDINGS + AND + 3 PREDICATES = 9
        assert_eq!(t.size(), 9);
    }
}
