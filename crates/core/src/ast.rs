//! The ARC abstract syntax — which, by design, *is* the Abstract Language
//! Tree (ALT).
//!
//! The paper argues (§1, §2.2) that for an abstract relational query
//! language the AST and the ALT should coincide: the syntax reflects the
//! semantics. The types below mirror the ALT nodes of the paper's figures
//! one-to-one: `COLLECTION`, `HEAD`, `QUANTIFIER ∃`, `BINDING`, `GROUPING`,
//! `JOIN`, `AND/OR/NOT`, and `PREDICATE`.
//!
//! Key design points inherited from the paper:
//!
//! * **Named perspective** (§2.1): every attribute access is `var.attr`
//!   ([`AttrRef`]); there is no positional addressing.
//! * **Strict scoping** (§2.1): head attributes are never bound in the body;
//!   they are assigned via explicit *assignment predicates* `Q.A = r.A`.
//! * **Explicit quantifiers**: every range variable is introduced by a
//!   quantifier binding `∃ r ∈ R`; several bindings may share one quantifier.
//! * **Grouping operator γ** (§2.5): an aggregation predicate turns an
//!   existential scope into a grouping scope; `γ∅` denotes grouping on the
//!   empty key list ("group by true").
//! * **Join annotations** (§2.11): `inner`/`left`/`full` trees over the
//!   bound variables express arbitrary nestings of outer joins.
//! * **Nesting is orthogonal** (§2.4): a binding may range over a nested
//!   collection (SQL's `LATERAL`), but nesting in the *head* is disallowed
//!   (§2.3, §2.12).

use crate::value::Value;
use std::fmt;

/// A program: an ordered list of relation [`Definition`]s (views, CTEs,
/// intensional relations — possibly mutually recursive) plus an optional
/// final query collection.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// Defined (intensional) relations, in declaration order.
    pub definitions: Vec<Definition>,
    /// The query to evaluate, if any.
    pub query: Option<Collection>,
}

impl Program {
    /// A program consisting of a single query.
    pub fn query(collection: Collection) -> Self {
        Program {
            definitions: Vec::new(),
            query: Some(collection),
        }
    }

    /// Add a definition (builder style).
    pub fn with_definition(mut self, def: Definition) -> Self {
        self.definitions.push(def);
        self
    }
}

/// A defined (intensional) relation: `name` is given by the collection's
/// head. Definitions may reference earlier definitions and — for recursion
/// (§2.9) — themselves or later ones; the engine stratifies and solves with
/// a least fixed point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Definition {
    /// The collection whose head names the defined relation.
    pub collection: Collection,
}

impl Definition {
    /// The defined relation's name (the head relation symbol).
    pub fn name(&self) -> &str {
        &self.collection.head.relation
    }
}

/// A collection comprehension `{ Head | Body }` — the paper's `COLLECTION`
/// node. Under set semantics it denotes a set of head tuples; under bag
/// semantics a bag (§2.7 — a convention, not part of the syntax).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collection {
    /// The output relation: name + attribute list.
    pub head: Head,
    /// The body formula; almost always rooted in a quantifier or a
    /// disjunction of quantifiers.
    pub body: Formula,
}

/// The head `Q(A, B, …)` of a collection. Head attributes receive values
/// only through assignment predicates in the body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Head {
    /// The output relation name (`Q`, `X`, …). Nested collections may leave
    /// it unnamed in diagrams, but the calculus always names it.
    pub relation: String,
    /// Output attribute names, in display order.
    pub attrs: Vec<String>,
}

impl Head {
    /// Construct a head from a name and attribute list.
    pub fn new(relation: impl Into<String>, attrs: &[&str]) -> Self {
        Head {
            relation: relation.into(),
            attrs: attrs.iter().map(|a| a.to_string()).collect(),
        }
    }
}

/// A body formula. `Pred` leaves are predicates; inner nodes are the logical
/// connectives and quantifier scopes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// An existential quantifier scope with bindings (and optionally a
    /// grouping operator and/or join annotation).
    Quant(Box<Quant>),
    /// Conjunction. The order of conjuncts carries no meaning (§2.3).
    And(Vec<Formula>),
    /// Disjunction; also expresses union of rules (§2.8, §2.9).
    Or(Vec<Formula>),
    /// Negation `¬`. Opens a negation scope in the higraph modality.
    Not(Box<Formula>),
    /// A predicate leaf.
    Pred(Predicate),
}

impl Formula {
    /// `true` as an empty conjunction.
    pub fn truth() -> Formula {
        Formula::And(Vec::new())
    }

    /// Flatten nested `And`s (used by normalizers and printers).
    pub fn conjuncts(&self) -> Vec<&Formula> {
        match self {
            Formula::And(fs) => fs.iter().flat_map(|f| f.conjuncts()).collect(),
            other => vec![other],
        }
    }

    /// Structural normalization: flatten nested `And`/`Or`, unwrap
    /// singletons, and drop double negations. Modalities round-trip up to
    /// this normalization (the connective tree shape is presentation, not
    /// pattern).
    pub fn normalized(&self) -> Formula {
        match self {
            Formula::And(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    match f.normalized() {
                        Formula::And(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                if out.len() == 1 {
                    out.pop().expect("len checked")
                } else {
                    Formula::And(out)
                }
            }
            Formula::Or(fs) => {
                let mut out = Vec::new();
                for f in fs {
                    match f.normalized() {
                        Formula::Or(inner) => out.extend(inner),
                        other => out.push(other),
                    }
                }
                if out.len() == 1 {
                    out.pop().expect("len checked")
                } else {
                    Formula::Or(out)
                }
            }
            Formula::Not(inner) => match inner.normalized() {
                Formula::Not(f) => *f,
                other => Formula::Not(Box::new(other)),
            },
            Formula::Quant(q) => Formula::Quant(Box::new(Quant {
                bindings: q
                    .bindings
                    .iter()
                    .map(|b| Binding {
                        var: b.var.clone(),
                        source: match &b.source {
                            BindingSource::Named(n) => BindingSource::Named(n.clone()),
                            BindingSource::Collection(c) => {
                                BindingSource::Collection(Box::new(c.normalized()))
                            }
                        },
                    })
                    .collect(),
                grouping: q.grouping.clone(),
                join: q.join.clone(),
                body: q.body.normalized(),
            })),
            Formula::Pred(p) => Formula::Pred(p.clone()),
        }
    }
}

impl Collection {
    /// Normalize the body (see [`Formula::normalized`]).
    pub fn normalized(&self) -> Collection {
        Collection {
            head: self.head.clone(),
            body: self.body.normalized(),
        }
    }
}

/// A quantifier scope `∃ b₁, b₂, …[, γ keys][, join] [ body ]`.
///
/// The paper's `QUANTIFIER ∃` ALT node, whose children are `BINDING`s, an
/// optional `GROUPING`, an optional `JOIN`, and the body formula.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quant {
    /// Range-variable bindings introduced by this quantifier.
    pub bindings: Vec<Binding>,
    /// `Some(γ)` turns this existential scope into a grouping scope.
    pub grouping: Option<Grouping>,
    /// Outer-join annotation over the bound variables (§2.11). `None` means
    /// the default k-ary `inner` over all bindings.
    pub join: Option<JoinTree>,
    /// The scope body.
    pub body: Formula,
}

/// A range-variable binding `r ∈ R` (named source) or `x ∈ { … }` (nested
/// collection — the lateral-join pattern of §2.4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Binding {
    /// The range variable name.
    pub var: String,
    /// What the variable ranges over.
    pub source: BindingSource,
}

impl Binding {
    /// Bind `var` to a named relation.
    pub fn named(var: impl Into<String>, relation: impl Into<String>) -> Self {
        Binding {
            var: var.into(),
            source: BindingSource::Named(relation.into()),
        }
    }

    /// Bind `var` to a nested collection.
    pub fn nested(var: impl Into<String>, collection: Collection) -> Self {
        Binding {
            var: var.into(),
            source: BindingSource::Collection(Box::new(collection)),
        }
    }
}

/// The source of a binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BindingSource {
    /// A base, defined, or external relation referenced by name.
    Named(String),
    /// A nested comprehension evaluated per environment of the enclosing
    /// scope (correlated / lateral).
    Collection(Box<Collection>),
}

/// The grouping operator `γ keys…`. An empty key list is the explicit `γ∅`
/// of the paper ("group by true"): a single group over the whole join.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Grouping {
    /// Grouping-key attributes (possibly empty = `γ∅`).
    pub keys: Vec<AttrRef>,
}

impl Grouping {
    /// `γ∅`.
    pub fn empty() -> Self {
        Grouping { keys: Vec::new() }
    }

    /// `γ k₁, k₂, …`.
    pub fn by(keys: Vec<AttrRef>) -> Self {
        Grouping { keys }
    }
}

/// A join annotation tree over bound variables (§2.11).
///
/// `inner` is k-ary; `left`/`full` are binary. A literal leaf denotes a
/// singleton virtual relation containing exactly that value (paper Fig 12:
/// `left(r, inner(11, s))`); it participates in join conditions through the
/// implicit attribute `v` of an auto-generated variable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinTree {
    /// A bound variable.
    Var(String),
    /// A literal singleton relation (a "virtual unary table").
    Lit(Value),
    /// Inner join of the children (k-ary).
    Inner(Vec<JoinTree>),
    /// Left outer join: the right side is optional.
    Left(Box<JoinTree>, Box<JoinTree>),
    /// Full outer join: both sides optional.
    Full(Box<JoinTree>, Box<JoinTree>),
}

impl JoinTree {
    /// All variable leaves, in tree order (literal leaves excluded).
    pub fn vars(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            JoinTree::Var(v) => out.push(v),
            JoinTree::Lit(_) => {}
            JoinTree::Inner(children) => {
                for c in children {
                    c.collect_vars(out);
                }
            }
            JoinTree::Left(l, r) | JoinTree::Full(l, r) => {
                l.collect_vars(out);
                r.collect_vars(out);
            }
        }
    }

    /// True if the tree contains any outer (left/full) node.
    pub fn has_outer(&self) -> bool {
        match self {
            JoinTree::Var(_) | JoinTree::Lit(_) => false,
            JoinTree::Inner(children) => children.iter().any(|c| c.has_outer()),
            JoinTree::Left(..) | JoinTree::Full(..) => true,
        }
    }
}

/// A predicate leaf.
///
/// The paper distinguishes *assignment predicates* (`Q.A = r.A`, head on one
/// side), *comparison predicates*, and *aggregation predicates* (an
/// aggregate appears as an operand). These are **roles**, not syntax: the
/// binder classifies each `Cmp` occurrence (see [`crate::binder`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum Predicate {
    /// `left op right`.
    Cmp {
        left: Scalar,
        op: CmpOp,
        right: Scalar,
    },
    /// `expr IS [NOT] NULL` — needed to replicate SQL's `NOT IN` behaviour
    /// in two-valued logic (§2.10, Eq (17)).
    IsNull { expr: Scalar, negated: bool },
}

impl Predicate {
    /// True iff an aggregate occurs anywhere in the predicate.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Predicate::Cmp { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
            Predicate::IsNull { expr, .. } => expr.has_aggregate(),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// The operator with sides swapped (`a < b` ⇔ `b > a`).
    pub fn flipped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// Display symbol (`=`, `<>`, `<`, `<=`, `>`, `>=`).
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// Scalar expressions: attribute references, constants, aggregates, and
/// arithmetic. Arithmetic may alternatively be *reified* into external
/// relations (§2.13.1, Eqs (19)–(21)); both forms are supported and the
/// `reify` rewrite in `arc-analysis` converts between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Scalar {
    /// `var.attr`.
    Attr(AttrRef),
    /// A constant.
    Const(Value),
    /// An aggregate call, e.g. `sum(r.B)`. Only legal inside a grouping
    /// scope (validated by the binder).
    Agg(Box<AggCall>),
    /// Binary arithmetic.
    Arith {
        /// The operator.
        op: ArithOp,
        /// Left operand.
        left: Box<Scalar>,
        /// Right operand.
        right: Box<Scalar>,
    },
}

impl Scalar {
    /// True iff an aggregate occurs anywhere in this expression.
    pub fn has_aggregate(&self) -> bool {
        match self {
            Scalar::Attr(_) | Scalar::Const(_) => false,
            Scalar::Agg(_) => true,
            Scalar::Arith { left, right, .. } => left.has_aggregate() || right.has_aggregate(),
        }
    }

    /// All attribute references in this expression, in occurrence order
    /// (including those inside aggregates).
    pub fn attr_refs(&self) -> Vec<&AttrRef> {
        let mut out = Vec::new();
        self.collect_attr_refs(&mut out);
        out
    }

    fn collect_attr_refs<'a>(&'a self, out: &mut Vec<&'a AttrRef>) {
        match self {
            Scalar::Attr(a) => out.push(a),
            Scalar::Const(_) => {}
            Scalar::Agg(call) => {
                if let AggArg::Expr(e) = &call.arg {
                    e.collect_attr_refs(out);
                }
            }
            Scalar::Arith { left, right, .. } => {
                left.collect_attr_refs(out);
                right.collect_attr_refs(out);
            }
        }
    }
}

/// An attribute reference `var.attr` in the named perspective.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef {
    /// Range variable (or head relation name, for assignment predicates).
    pub var: String,
    /// Attribute name.
    pub attr: String,
}

impl AttrRef {
    /// Construct `var.attr`.
    pub fn new(var: impl Into<String>, attr: impl Into<String>) -> Self {
        AttrRef {
            var: var.into(),
            attr: attr.into(),
        }
    }
}

/// An aggregate call `func([distinct] arg)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggCall {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated expression (or `*` for `count(*)`).
    pub arg: AggArg,
    /// Deduplicate input values first (`countdistinct` & co., §2.5).
    pub distinct: bool,
}

/// Argument of an aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggArg {
    /// An expression evaluated per tuple of the group.
    Expr(Scalar),
    /// `*`: count rows (only meaningful for `count`).
    Star,
}

/// Aggregate functions. The initialization on empty input is a *convention*
/// (§2.6): SQL returns `NULL` for `sum/avg/min/max`, Soufflé returns 0 for
/// `sum`; `count` is 0 in both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum AggFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggFunc {
    /// Lower-case name as written in the comprehension syntax.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
}

impl ArithOp {
    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        }
    }
}

// ---------------------------------------------------------------------------
// Display impls (used by the ALT renderer and error messages; the full
// comprehension-syntax printer lives in `arc-parser`).
// ---------------------------------------------------------------------------

impl fmt::Display for AttrRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.var, self.attr)
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Attr(a) => write!(f, "{a}"),
            Scalar::Const(v) => write!(f, "{v}"),
            Scalar::Agg(call) => write!(f, "{call}"),
            Scalar::Arith { op, left, right } => {
                let fmt_side = |s: &Scalar| -> String {
                    match s {
                        Scalar::Arith { .. } => format!("({s})"),
                        _ => format!("{s}"),
                    }
                };
                write!(f, "{} {} {}", fmt_side(left), op.symbol(), fmt_side(right))
            }
        }
    }
}

impl fmt::Display for AggCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let d = if self.distinct { "distinct " } else { "" };
        match &self.arg {
            AggArg::Expr(e) => write!(f, "{}({d}{e})", self.func.name()),
            AggArg::Star => write!(f, "{}({d}*)", self.func.name()),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Cmp { left, op, right } => {
                write!(f, "{left} {} {right}", op.symbol())
            }
            Predicate::IsNull { expr, negated } => {
                write!(f, "{expr} is {}null", if *negated { "not " } else { "" })
            }
        }
    }
}

impl fmt::Display for Head {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.relation, self.attrs.join(","))
    }
}

impl fmt::Display for JoinTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinTree::Var(v) => write!(f, "{v}"),
            JoinTree::Lit(v) => write!(f, "{v}"),
            JoinTree::Inner(children) => {
                let parts: Vec<String> = children.iter().map(|c| c.to_string()).collect();
                write!(f, "inner({})", parts.join(", "))
            }
            JoinTree::Left(l, r) => write!(f, "left({l}, {r})"),
            JoinTree::Full(l, r) => write!(f, "full({l}, {r})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(v: &str, a: &str) -> Scalar {
        Scalar::Attr(AttrRef::new(v, a))
    }

    #[test]
    fn display_predicate_forms() {
        let p = Predicate::Cmp {
            left: attr("Q", "A"),
            op: CmpOp::Eq,
            right: attr("r", "A"),
        };
        assert_eq!(p.to_string(), "Q.A = r.A");

        let agg = Predicate::Cmp {
            left: attr("Q", "sm"),
            op: CmpOp::Eq,
            right: Scalar::Agg(Box::new(AggCall {
                func: AggFunc::Sum,
                arg: AggArg::Expr(attr("r", "B")),
                distinct: false,
            })),
        };
        assert_eq!(agg.to_string(), "Q.sm = sum(r.B)");
        assert!(agg.has_aggregate());
    }

    #[test]
    fn arith_display_parenthesizes_nested() {
        let e = Scalar::Arith {
            op: ArithOp::Sub,
            left: Box::new(attr("r", "B")),
            right: Box::new(Scalar::Arith {
                op: ArithOp::Mul,
                left: Box::new(attr("s", "B")),
                right: Box::new(Scalar::Const(Value::Int(2))),
            }),
        };
        assert_eq!(e.to_string(), "r.B - (s.B * 2)");
    }

    #[test]
    fn join_tree_vars_and_outer() {
        let jt = JoinTree::Left(
            Box::new(JoinTree::Var("r".into())),
            Box::new(JoinTree::Inner(vec![
                JoinTree::Lit(Value::Int(11)),
                JoinTree::Var("s".into()),
            ])),
        );
        assert_eq!(jt.vars(), vec!["r", "s"]);
        assert!(jt.has_outer());
        assert_eq!(jt.to_string(), "left(r, inner(11, s))");
    }

    #[test]
    fn conjunct_flattening() {
        let f = Formula::And(vec![
            Formula::And(vec![Formula::Pred(Predicate::Cmp {
                left: attr("r", "A"),
                op: CmpOp::Eq,
                right: Scalar::Const(Value::Int(1)),
            })]),
            Formula::Pred(Predicate::IsNull {
                expr: attr("r", "B"),
                negated: false,
            }),
        ]);
        assert_eq!(f.conjuncts().len(), 2);
    }

    #[test]
    fn json_round_trip() {
        let c = Collection {
            head: Head::new("Q", &["A"]),
            body: Formula::Quant(Box::new(Quant {
                bindings: vec![Binding::named("r", "R")],
                grouping: Some(Grouping::by(vec![AttrRef::new("r", "A")])),
                join: None,
                body: Formula::Pred(Predicate::Cmp {
                    left: attr("Q", "A"),
                    op: CmpOp::Eq,
                    right: attr("r", "A"),
                }),
            })),
        };
        let json = crate::json::to_json_compact(&c);
        let back: Collection = crate::json::from_json(&json).unwrap();
        assert_eq!(c, back);
    }
}
