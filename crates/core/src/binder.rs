//! The binder: name resolution and the "linking step" of the paper (§2.2).
//!
//! Binding turns the ALT into the *linked* ALT (conceptually an Abstract
//! Language Higraph): every attribute reference is connected to the binding
//! that declares its range variable (the red overlay arrows of Fig 2a), and
//! every predicate occurrence is classified into its **role**:
//!
//! * *assignment predicate* — `Q.A = r.A` with the head on one side (§2.1);
//! * *comparison predicate* — everything else;
//! * either may additionally be an *aggregation predicate* when an aggregate
//!   appears as an operand (§2.5, footnote 5).
//!
//! The binder also performs the validation the paper assigns to the
//! machine-facing modality ("well-scoped variables, grouping legality,
//! correlation shape", §4): see [`BindError`] for the full rule list.

use crate::ast::*;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Relation name → attribute list, for schema-aware (closed-world) binding.
pub type SchemaMap = HashMap<String, Vec<String>>;

/// Sentinel collection ordinal for variables bound outside any collection
/// (boolean sentences, Fig 9).
const ROOT: usize = usize::MAX;

/// A binding/validation diagnostic. [`BindError::is_error`] distinguishes
/// hard errors from warnings (an *abstract* definition is legal but unsafe
/// on its own, §2.13.2).
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum BindError {
    /// A binding references a relation not in scope (closed-world mode only).
    UnknownRelation { relation: String },
    /// An attribute reference's variable is not bound in any enclosing scope.
    UnboundVariable { var: String, place: String },
    /// The attribute does not exist on the resolved relation.
    UnknownAttribute {
        var: String,
        attr: String,
        relation: String,
    },
    /// Two bindings in the same visible scope chain share a variable name.
    ShadowedVariable { var: String },
    /// An aggregate occurs in a predicate whose scope has no grouping
    /// operator ("the appearance of any aggregation predicate … requires a
    /// grouping operator", §2.5).
    AggregateOutsideGroupingScope { predicate: String },
    /// A grouping key's variable is not bound by the same quantifier.
    GroupingKeyNotLocal { key: String },
    /// An aggregate's argument references a variable not bound by the
    /// quantifier whose scope contains the aggregation predicate.
    AggregateArgNotLocal { predicate: String, var: String },
    /// In a grouping scope, a non-aggregated attribute that escapes the
    /// group (head assignment or aggregation-predicate operand) is not a
    /// grouping key — SQL's "column must appear in GROUP BY" rule.
    NonKeyAttributeEscapesGroup { attr: String, predicate: String },
    /// A head attribute never receives an assignment.
    HeadAttrNotAssigned { collection: String, attr: String },
    /// A head reference names an attribute that is not in the head.
    HeadAttrUnknown { collection: String, attr: String },
    /// A join-annotation leaf names a variable not bound by the quantifier.
    JoinVarUnknown { var: String },
    /// A quantifier variable appears more than once in its join annotation.
    JoinVarDuplicated { var: String },
    /// A quantifier with a join annotation omits one of its variables.
    JoinVarMissing { var: String },
    /// Warning: the definition is *abstract* (§2.13.2): its head attributes
    /// are range-restricted by the surrounding query rather than assigned,
    /// so the relation has no standalone extension.
    AbstractDefinition { collection: String },
    /// A head attribute reference is nested inside an arithmetic or
    /// aggregate expression; heads stay "clean" (§2.3).
    HeadRefNested { attr: String, predicate: String },
}

impl BindError {
    /// Whether the diagnostic is a hard error (vs. informational warning).
    pub fn is_error(&self) -> bool {
        !matches!(self, BindError::AbstractDefinition { .. })
    }
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownRelation { relation } => write!(f, "unknown relation `{relation}`"),
            BindError::UnboundVariable { var, place } => {
                write!(f, "unbound variable `{var}` in `{place}`")
            }
            BindError::UnknownAttribute { var, attr, relation } => {
                write!(f, "relation `{relation}` (via `{var}`) has no attribute `{attr}`")
            }
            BindError::ShadowedVariable { var } => {
                write!(f, "variable `{var}` shadows an enclosing binding")
            }
            BindError::AggregateOutsideGroupingScope { predicate } => {
                write!(f, "aggregation predicate `{predicate}` requires a grouping scope (γ)")
            }
            BindError::GroupingKeyNotLocal { key } => {
                write!(f, "grouping key `{key}` must be bound by the same quantifier")
            }
            BindError::AggregateArgNotLocal { predicate, var } => write!(
                f,
                "aggregate in `{predicate}` ranges over `{var}`, which is not bound in the grouping scope"
            ),
            BindError::NonKeyAttributeEscapesGroup { attr, predicate } => write!(
                f,
                "`{attr}` escapes a grouping scope in `{predicate}` but is not a grouping key"
            ),
            BindError::HeadAttrNotAssigned { collection, attr } => {
                write!(f, "head attribute `{collection}.{attr}` is never assigned")
            }
            BindError::HeadAttrUnknown { collection, attr } => {
                write!(f, "head reference `{collection}.{attr}` is not in the head")
            }
            BindError::JoinVarUnknown { var } => {
                write!(f, "join annotation references unknown variable `{var}`")
            }
            BindError::JoinVarDuplicated { var } => {
                write!(f, "join annotation references `{var}` more than once")
            }
            BindError::JoinVarMissing { var } => {
                write!(f, "join annotation does not cover bound variable `{var}`")
            }
            BindError::AbstractDefinition { collection } => write!(
                f,
                "definition `{collection}` is abstract: head attributes are range-restricted, not assigned"
            ),
            BindError::HeadRefNested { attr, predicate } => write!(
                f,
                "head attribute `{attr}` must not be nested inside expressions (`{predicate}`)"
            ),
        }
    }
}

/// Role of a predicate occurrence (paper vocabulary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredRole {
    /// `Head.attr = expr` in a positive equality.
    Assignment {
        /// The assigned head attribute.
        target: AttrRef,
        /// Does the assigned expression aggregate (`Q.sm = sum(r.B)`)?
        aggregating: bool,
    },
    /// Any other predicate.
    Comparison {
        /// Does an aggregate appear as an operand (`r.q = count(s.d)`)?
        aggregating: bool,
    },
}

impl PredRole {
    /// True for aggregation predicates of either role.
    pub fn is_aggregating(&self) -> bool {
        match self {
            PredRole::Assignment { aggregating, .. } | PredRole::Comparison { aggregating } => {
                *aggregating
            }
        }
    }

    /// True for assignment predicates.
    pub fn is_assignment(&self) -> bool {
        matches!(self, PredRole::Assignment { .. })
    }
}

/// A recorded correlation: an attribute reference inside one collection that
/// resolves to a binding of an *enclosing* collection — the "from the
/// outside in" ingredient of §2.5 and the lateral pattern of §2.4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Correlation {
    /// Ordinal of the referencing (inner) collection.
    pub inner: usize,
    /// Head name of the referencing collection.
    pub inner_name: String,
    /// The referenced variable and attribute.
    pub var: String,
    /// The referenced attribute.
    pub attr: String,
    /// Ordinal of the collection that binds the variable ([`ROOT`]-level
    /// sentences use `usize::MAX`).
    pub outer: usize,
}

/// Assignment vs. comparison use of an aggregate — the distinction the
/// paper uses to *name* the count bug ("an aggregate used as a value …
/// and an aggregate used as a test", §4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggRole {
    /// `Q.sm = sum(r.B)`.
    Assignment,
    /// `r.q = count(s.d)` — a test.
    Comparison,
}

/// Information about one aggregate occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggOccurrence {
    /// The function.
    pub func: AggFunc,
    /// Distinct aggregate?
    pub distinct: bool,
    /// Assignment or comparison use.
    pub role: AggRole,
    /// Number of grouping keys of the scope holding the predicate
    /// (`0` = `γ∅`).
    pub grouping_keys: usize,
    /// Ordinal of the collection containing the predicate.
    pub collection: usize,
    /// Whether the predicate references variables bound by an *enclosing*
    /// quantifier (per-outer-tuple correlation, e.g. the count-bug shape
    /// `r.q = count(s.d)` where `r` is outer).
    pub outer_refs: bool,
    /// Rendered predicate, for diagnostics and reports.
    pub predicate: String,
}

/// One classified predicate occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredOccurrence {
    /// Rendered predicate.
    pub display: String,
    /// Classified role.
    pub role: PredRole,
    /// Scope-nesting depth at the occurrence.
    pub depth: usize,
    /// Whether the predicate sits under a negation.
    pub under_negation: bool,
    /// Ordinal of the collection containing the predicate.
    pub collection: usize,
}

/// The product of binding: link structure plus the summary statistics used
/// by the pattern layer and renderers.
#[derive(Debug, Clone, Default)]
pub struct BoundInfo {
    /// Diagnostics (errors and warnings).
    pub diagnostics: Vec<BindError>,
    /// How many times each named relation is bound — the **signature** of
    /// the query that the paper uses to distinguish Fig 6 from Figs 7/8.
    pub relation_occurrences: BTreeMap<String, usize>,
    /// Number of quantifier scopes.
    pub scope_count: usize,
    /// Number of collections (outer + nested + definitions).
    pub collection_count: usize,
    /// Number of negation scopes.
    pub negation_count: usize,
    /// Number of grouping scopes.
    pub grouping_scope_count: usize,
    /// Maximum scope-nesting depth.
    pub max_depth: usize,
    /// All correlations.
    pub correlations: Vec<Correlation>,
    /// All aggregate occurrences.
    pub aggregates: Vec<AggOccurrence>,
    /// All predicate occurrences with roles.
    pub predicates: Vec<PredOccurrence>,
    /// Head names of collections classified as abstract (§2.13.2).
    pub abstract_collections: Vec<String>,
}

impl BoundInfo {
    /// Hard errors only.
    pub fn errors(&self) -> Vec<&BindError> {
        self.diagnostics.iter().filter(|d| d.is_error()).collect()
    }

    /// True if binding produced no hard errors.
    pub fn is_valid(&self) -> bool {
        self.diagnostics.iter().all(|d| !d.is_error())
    }

    /// Whether a given collection ordinal is correlated to any enclosing
    /// scope (used by the FIO/FOI classifier in `arc-analysis`).
    pub fn is_correlated(&self, collection: usize) -> bool {
        self.correlations.iter().any(|c| c.inner == collection)
    }
}

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

/// The binder. Construct with [`Binder::new`] (open world: unknown relation
/// names allowed, attributes unchecked) or [`Binder::with_schemas`]
/// (closed world).
pub struct Binder {
    schemas: Option<SchemaMap>,
}

impl Default for Binder {
    fn default() -> Self {
        Binder::new()
    }
}

impl Binder {
    /// Open-world binder.
    pub fn new() -> Self {
        Binder { schemas: None }
    }

    /// Closed-world binder: named sources must be known base relations,
    /// program definitions, or recursive self-references; attribute names
    /// are checked.
    pub fn with_schemas(schemas: SchemaMap) -> Self {
        Binder {
            schemas: Some(schemas),
        }
    }

    /// Bind a single query collection.
    pub fn bind_collection(&self, c: &Collection) -> BoundInfo {
        let mut w = Walk::new(self.schemas.as_ref());
        w.collection(c, true);
        w.info
    }

    /// Bind a boolean sentence (Fig 9): a formula with no head.
    pub fn bind_sentence(&self, f: &Formula) -> BoundInfo {
        let mut w = Walk::new(self.schemas.as_ref());
        w.formula(f);
        w.info
    }

    /// Bind a whole program: definitions (mutually visible, so recursion
    /// binds) then the query.
    pub fn bind_program(&self, p: &Program) -> BoundInfo {
        let mut w = Walk::new(self.schemas.as_ref());
        for def in &p.definitions {
            w.local_defs
                .insert(def.name().to_string(), def.collection.head.attrs.clone());
        }
        for def in &p.definitions {
            w.collection(&def.collection, false);
        }
        if let Some(q) = &p.query {
            w.collection(q, true);
        }
        w.info
    }
}

struct VarEntry {
    var: String,
    /// Attribute list when known (None for open-world named relations).
    attrs: Option<Vec<String>>,
    /// Source relation name (None for nested collections).
    relation: Option<String>,
    /// Ordinal of the collection this binding belongs to.
    collection: usize,
    /// Ordinal of the quantifier this binding belongs to.
    quant: usize,
}

struct CollFrame {
    name: String,
    attrs: Vec<String>,
    ordinal: usize,
    head_used_in_comparison: bool,
    /// Negation depth at frame creation; predicates are "positive" for this
    /// collection only while the global depth equals this base.
    neg_base: usize,
}

struct QuantFrame {
    id: usize,
    /// `Some(keys)` iff the quantifier carries a grouping operator.
    grouping: Option<Vec<AttrRef>>,
}

struct Walk<'a> {
    schemas: Option<&'a SchemaMap>,
    local_defs: HashMap<String, Vec<String>>,
    vars: Vec<VarEntry>,
    colls: Vec<CollFrame>,
    quants: Vec<QuantFrame>,
    quant_counter: usize,
    depth: usize,
    neg_depth: usize,
    /// Set per-predicate: does the current predicate reference variables
    /// bound outside the innermost quantifier?
    pred_outer_refs: bool,
    info: BoundInfo,
}

impl<'a> Walk<'a> {
    fn new(schemas: Option<&'a SchemaMap>) -> Self {
        Walk {
            schemas,
            local_defs: HashMap::new(),
            vars: Vec::new(),
            colls: Vec::new(),
            quants: Vec::new(),
            quant_counter: 0,
            depth: 0,
            neg_depth: 0,
            pred_outer_refs: false,
            info: BoundInfo::default(),
        }
    }

    fn diag(&mut self, e: BindError) {
        self.info.diagnostics.push(e);
    }

    fn relation_attrs(&self, name: &str) -> Option<Vec<String>> {
        if let Some(a) = self.local_defs.get(name) {
            return Some(a.clone());
        }
        self.schemas.and_then(|s| s.get(name).cloned())
    }

    fn current_collection(&self) -> usize {
        self.colls.last().map(|c| c.ordinal).unwrap_or(ROOT)
    }

    fn collection(&mut self, c: &Collection, is_query: bool) {
        let ordinal = self.info.collection_count;
        self.info.collection_count += 1;
        self.colls.push(CollFrame {
            name: c.head.relation.clone(),
            attrs: c.head.attrs.clone(),
            ordinal,
            head_used_in_comparison: false,
            neg_base: self.neg_depth,
        });
        self.depth += 1;
        self.info.max_depth = self.info.max_depth.max(self.depth);

        self.formula(&c.body);

        let assigned = assigned_attrs(&c.body, &c.head.relation);
        let frame = self.colls.pop().expect("collection frame");
        self.depth -= 1;

        let missing: Vec<&String> = c
            .head
            .attrs
            .iter()
            .filter(|a| !assigned.contains(a.as_str()))
            .collect();
        if !missing.is_empty() {
            if frame.head_used_in_comparison && !is_query {
                // Unsafe standalone, meaningful in context: abstract (§2.13.2).
                self.info.abstract_collections.push(frame.name.clone());
                self.diag(BindError::AbstractDefinition {
                    collection: frame.name,
                });
            } else {
                for attr in missing {
                    self.diag(BindError::HeadAttrNotAssigned {
                        collection: frame.name.clone(),
                        attr: attr.clone(),
                    });
                }
            }
        }
    }

    fn formula(&mut self, f: &Formula) {
        match f {
            Formula::Quant(q) => self.quant(q),
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    self.formula(sub);
                }
            }
            Formula::Not(inner) => {
                self.info.negation_count += 1;
                self.neg_depth += 1;
                self.formula(inner);
                self.neg_depth -= 1;
            }
            Formula::Pred(p) => self.predicate(p),
        }
    }

    fn quant(&mut self, q: &Quant) {
        let quant_id = self.quant_counter;
        self.quant_counter += 1;
        self.info.scope_count += 1;
        if q.grouping.is_some() {
            self.info.grouping_scope_count += 1;
        }
        let coll_ordinal = self.current_collection();
        let var_base = self.vars.len();

        for b in &q.bindings {
            if self.vars.iter().any(|v| v.var == b.var)
                || self.colls.iter().any(|c| c.name == b.var)
            {
                self.diag(BindError::ShadowedVariable { var: b.var.clone() });
            }
            let (attrs, relation) = match &b.source {
                BindingSource::Named(rel) => {
                    *self
                        .info
                        .relation_occurrences
                        .entry(rel.clone())
                        .or_insert(0) += 1;
                    let attrs = self.relation_attrs(rel);
                    if attrs.is_none() && self.schemas.is_some() {
                        self.diag(BindError::UnknownRelation {
                            relation: rel.clone(),
                        });
                    }
                    (attrs, Some(rel.clone()))
                }
                BindingSource::Collection(c) => {
                    self.collection(c, true);
                    (Some(c.head.attrs.clone()), None)
                }
            };
            self.vars.push(VarEntry {
                var: b.var.clone(),
                attrs,
                relation,
                collection: coll_ordinal,
                quant: quant_id,
            });
        }

        // The join annotation must cover exactly the bound variables.
        if let Some(jt) = &q.join {
            let mut seen: HashMap<String, usize> = HashMap::new();
            for v in jt.vars() {
                *seen.entry(v.to_string()).or_insert(0) += 1;
            }
            for (v, n) in &seen {
                if *n > 1 {
                    self.diag(BindError::JoinVarDuplicated { var: v.clone() });
                }
                if !q.bindings.iter().any(|b| &b.var == v) {
                    self.diag(BindError::JoinVarUnknown { var: v.clone() });
                }
            }
            for b in &q.bindings {
                if !seen.contains_key(&b.var) {
                    self.diag(BindError::JoinVarMissing { var: b.var.clone() });
                }
            }
        }

        // Grouping keys must be bound by this very quantifier.
        if let Some(g) = &q.grouping {
            for key in &g.keys {
                let local = self.vars[var_base..].iter().any(|v| v.var == key.var);
                if !local {
                    self.diag(BindError::GroupingKeyNotLocal {
                        key: key.to_string(),
                    });
                } else {
                    self.check_attr_exists(key);
                }
            }
        }

        self.quants.push(QuantFrame {
            id: quant_id,
            grouping: q.grouping.as_ref().map(|g| g.keys.clone()),
        });
        self.depth += 1;
        self.info.max_depth = self.info.max_depth.max(self.depth);
        self.formula(&q.body);
        self.depth -= 1;
        self.quants.pop();
        self.vars.truncate(var_base);
    }

    fn check_attr_exists(&mut self, r: &AttrRef) {
        let diag = {
            let entry = match self.vars.iter().rev().find(|v| v.var == r.var) {
                Some(e) => e,
                None => return,
            };
            match &entry.attrs {
                Some(attrs) if !attrs.iter().any(|a| a == &r.attr) => {
                    Some(BindError::UnknownAttribute {
                        var: r.var.clone(),
                        attr: r.attr.clone(),
                        relation: entry
                            .relation
                            .clone()
                            .unwrap_or_else(|| "<nested collection>".to_string()),
                    })
                }
                _ => None,
            }
        };
        if let Some(d) = diag {
            self.diag(d);
        }
    }

    /// Resolve a non-head attribute reference, recording correlations.
    /// Returns the binding's quantifier id when resolution succeeds.
    fn resolve(&mut self, r: &AttrRef, place: &str) -> Option<usize> {
        let current = self.current_collection();
        let found = self
            .vars
            .iter()
            .rev()
            .find(|v| v.var == r.var)
            .map(|e| (e.collection, e.quant));
        match found {
            Some((coll, quant)) => {
                if coll != current {
                    let inner_name = self
                        .colls
                        .last()
                        .map(|c| c.name.clone())
                        .unwrap_or_default();
                    self.info.correlations.push(Correlation {
                        inner: current,
                        inner_name,
                        var: r.var.clone(),
                        attr: r.attr.clone(),
                        outer: coll,
                    });
                }
                self.check_attr_exists(r);
                Some(quant)
            }
            None => {
                self.diag(BindError::UnboundVariable {
                    var: r.var.clone(),
                    place: place.to_string(),
                });
                None
            }
        }
    }

    /// Does `var` name the head of an enclosing collection (and is not
    /// shadowed by a range-variable binding)?
    fn is_head_var(&self, var: &str) -> bool {
        !self.vars.iter().any(|v| v.var == var) && self.colls.iter().any(|c| c.name == var)
    }

    fn head_frame_mut(&mut self, var: &str) -> Option<&mut CollFrame> {
        self.colls.iter_mut().rev().find(|c| c.name == var)
    }

    fn predicate(&mut self, p: &Predicate) {
        let display = p.to_string();
        let aggregating = p.has_aggregate();

        // Does this predicate reach outside the innermost quantifier?
        self.pred_outer_refs = {
            let current = self.quants.last().map(|q| q.id);
            let mut refs: Vec<&AttrRef> = Vec::new();
            match p {
                Predicate::Cmp { left, right, .. } => {
                    refs.extend(left.attr_refs());
                    refs.extend(right.attr_refs());
                }
                Predicate::IsNull { expr, .. } => refs.extend(expr.attr_refs()),
            }
            refs.iter().any(|r| {
                self.vars
                    .iter()
                    .rev()
                    .find(|v| v.var == r.var)
                    .map(|v| Some(v.quant) != current)
                    .unwrap_or(false)
            })
        };

        // Negation relative to the innermost collection: an equality with a
        // head side can only *assign* in a positive context; under negation
        // it is a test (which is what makes a definition abstract, §2.13.2).
        let positive = self.neg_depth == self.colls.last().map(|c| c.neg_base).unwrap_or(0);

        // Role classification.
        let role = match p {
            Predicate::Cmp { left, op, right } if *op == CmpOp::Eq && positive => {
                let head_side = |s: &Scalar| -> Option<AttrRef> {
                    match s {
                        Scalar::Attr(a) if self.is_head_var(&a.var) => Some(a.clone()),
                        _ => None,
                    }
                };
                match (head_side(left), head_side(right)) {
                    (Some(t), None) => PredRole::Assignment {
                        target: t,
                        aggregating: right.has_aggregate(),
                    },
                    (None, Some(t)) => PredRole::Assignment {
                        target: t,
                        aggregating: left.has_aggregate(),
                    },
                    _ => PredRole::Comparison { aggregating },
                }
            }
            _ => PredRole::Comparison { aggregating },
        };

        // Resolve operands.
        match p {
            Predicate::Cmp { left, right, .. } => {
                self.scalar(left, &display, &role, false);
                self.scalar(right, &display, &role, false);
            }
            Predicate::IsNull { expr, .. } => {
                self.scalar(expr, &display, &role, false);
            }
        }

        // Aggregation predicates need a grouping scope (§2.5).
        if aggregating {
            let grouped = self
                .quants
                .last()
                .map(|q| q.grouping.is_some())
                .unwrap_or(false);
            if !grouped {
                self.diag(BindError::AggregateOutsideGroupingScope {
                    predicate: display.clone(),
                });
            }
        }

        // Grouping legality: in a grouping scope, plain attributes that
        // escape the group (via head assignment or as operands of an
        // aggregation predicate) must be grouping keys.
        let escapes = role.is_assignment() || aggregating;
        if escapes {
            if let Some(QuantFrame {
                id,
                grouping: Some(keys),
            }) = self.quants.last()
            {
                let qid = *id;
                let keys = keys.clone();
                let mut bare: Vec<AttrRef> = Vec::new();
                match p {
                    Predicate::Cmp { left, right, .. } => {
                        collect_bare_refs(left, &mut bare);
                        collect_bare_refs(right, &mut bare);
                    }
                    Predicate::IsNull { expr, .. } => collect_bare_refs(expr, &mut bare),
                }
                for a in bare {
                    if self.is_head_var(&a.var) {
                        continue; // assignment target
                    }
                    let local = self
                        .vars
                        .iter()
                        .rev()
                        .find(|v| v.var == a.var)
                        .map(|v| v.quant == qid)
                        .unwrap_or(false);
                    if local && !keys.contains(&a) {
                        self.diag(BindError::NonKeyAttributeEscapesGroup {
                            attr: a.to_string(),
                            predicate: display.clone(),
                        });
                    }
                }
            }
        }

        let collection = self.current_collection();
        self.info.predicates.push(PredOccurrence {
            display,
            role,
            depth: self.depth,
            under_negation: !positive,
            collection,
        });
    }

    /// Resolve the attribute references of a scalar. `nested` is true when
    /// the scalar is an operand of arithmetic or an aggregate (head
    /// references are illegal there).
    fn scalar(&mut self, s: &Scalar, pred_display: &str, role: &PredRole, nested: bool) {
        match s {
            Scalar::Attr(a) => {
                if self.is_head_var(&a.var) {
                    if nested {
                        self.diag(BindError::HeadRefNested {
                            attr: a.to_string(),
                            predicate: pred_display.to_string(),
                        });
                        return;
                    }
                    // Check the attribute is declared in the head.
                    let unknown = self
                        .head_frame_mut(&a.var)
                        .map(|f| !f.attrs.iter().any(|x| x == &a.attr))
                        .unwrap_or(false);
                    if unknown {
                        self.diag(BindError::HeadAttrUnknown {
                            collection: a.var.clone(),
                            attr: a.attr.clone(),
                        });
                    }
                    // A head ref that is not the assignment target marks the
                    // collection abstract-capable (§2.13.2).
                    let is_target =
                        matches!(role, PredRole::Assignment { target, .. } if target == a);
                    if !is_target {
                        if let Some(frame) = self.head_frame_mut(&a.var) {
                            frame.head_used_in_comparison = true;
                        }
                    }
                } else {
                    self.resolve(a, pred_display);
                }
            }
            Scalar::Const(_) => {}
            Scalar::Agg(call) => {
                self.record_aggregate(call, pred_display, role);
                if let AggArg::Expr(e) = &call.arg {
                    self.aggregate_arg(e, pred_display);
                }
            }
            Scalar::Arith { left, right, .. } => {
                self.scalar(left, pred_display, role, true);
                self.scalar(right, pred_display, role, true);
            }
        }
    }

    /// Aggregate arguments must range over variables bound by the
    /// quantifier whose scope contains the aggregation predicate (§2.5:
    /// "the full join, determined by the scope in which the aggregation
    /// predicate appears").
    fn aggregate_arg(&mut self, e: &Scalar, pred_display: &str) {
        let current_quant = self.quants.last().map(|q| q.id);
        let refs: Vec<AttrRef> = e.attr_refs().into_iter().cloned().collect();
        for a in refs {
            if self.is_head_var(&a.var) {
                self.diag(BindError::HeadRefNested {
                    attr: a.to_string(),
                    predicate: pred_display.to_string(),
                });
                continue;
            }
            let resolved_quant = self.resolve(&a, pred_display);
            if let (Some(rq), Some(cq)) = (resolved_quant, current_quant) {
                if rq != cq {
                    self.diag(BindError::AggregateArgNotLocal {
                        predicate: pred_display.to_string(),
                        var: a.var.clone(),
                    });
                }
            }
        }
    }

    fn record_aggregate(&mut self, call: &AggCall, pred_display: &str, role: &PredRole) {
        let agg_role = match role {
            PredRole::Assignment { .. } => AggRole::Assignment,
            PredRole::Comparison { .. } => AggRole::Comparison,
        };
        let grouping_keys = self
            .quants
            .last()
            .and_then(|q| q.grouping.as_ref())
            .map(|k| k.len())
            .unwrap_or(0);
        let collection = self.current_collection();
        self.info.aggregates.push(AggOccurrence {
            func: call.func,
            distinct: call.distinct,
            role: agg_role,
            grouping_keys,
            collection,
            outer_refs: self.pred_outer_refs,
            predicate: pred_display.to_string(),
        });
    }
}

/// Collect bare (non-aggregated) attribute references of a scalar.
fn collect_bare_refs(s: &Scalar, out: &mut Vec<AttrRef>) {
    match s {
        Scalar::Attr(a) => out.push(a.clone()),
        Scalar::Const(_) => {}
        Scalar::Agg(_) => {} // aggregated refs do not escape bare
        Scalar::Arith { left, right, .. } => {
            collect_bare_refs(left, out);
            collect_bare_refs(right, out);
        }
    }
}

/// Attributes of `head` definitely assigned when `f` holds (conjunction ∪,
/// disjunction ∩, negation ∅). Used for head-completeness checking.
pub fn assigned_attrs<'f>(f: &'f Formula, head: &str) -> HashSet<&'f str> {
    match f {
        Formula::Pred(Predicate::Cmp { left, op, right }) if *op == CmpOp::Eq => {
            let mut out = HashSet::new();
            if let Scalar::Attr(a) = left {
                if a.var == head {
                    out.insert(a.attr.as_str());
                }
            }
            if let Scalar::Attr(a) = right {
                if a.var == head {
                    out.insert(a.attr.as_str());
                }
            }
            out
        }
        Formula::Pred(_) => HashSet::new(),
        Formula::And(fs) => {
            let mut out = HashSet::new();
            for sub in fs {
                out.extend(assigned_attrs(sub, head));
            }
            out
        }
        Formula::Or(fs) => {
            let mut iter = fs.iter();
            let mut out = match iter.next() {
                Some(first) => assigned_attrs(first, head),
                None => return HashSet::new(),
            };
            for sub in iter {
                let s = assigned_attrs(sub, head);
                out.retain(|a| s.contains(a));
            }
            out
        }
        Formula::Not(_) => HashSet::new(),
        Formula::Quant(q) => assigned_attrs(&q.body, head),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    fn schemas() -> SchemaMap {
        let mut m = SchemaMap::new();
        m.insert("R".into(), vec!["A".into(), "B".into()]);
        m.insert("S".into(), vec!["B".into(), "C".into()]);
        m
    }

    /// Eq (1): {Q(A) | ∃r∈R, s∈S [Q.A=r.A ∧ r.B=s.B ∧ s.C=0]}
    fn eq1() -> Collection {
        collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(0)),
                ]),
            ),
        )
    }

    #[test]
    fn eq1_binds_cleanly() {
        let info = Binder::with_schemas(schemas()).bind_collection(&eq1());
        assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);
        assert_eq!(info.relation_occurrences["R"], 1);
        assert_eq!(info.relation_occurrences["S"], 1);
        assert_eq!(info.scope_count, 1);
        // One assignment, two comparisons.
        let assignments = info
            .predicates
            .iter()
            .filter(|p| p.role.is_assignment())
            .count();
        assert_eq!(assignments, 1);
        assert_eq!(info.predicates.len(), 3);
    }

    #[test]
    fn unknown_relation_and_attribute_detected() {
        let q = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "Nope")], and([assign("Q", "A", col("r", "A"))])),
        );
        let info = Binder::with_schemas(schemas()).bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::UnknownRelation { .. })));

        let q2 = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "Z"))])),
        );
        let info2 = Binder::with_schemas(schemas()).bind_collection(&q2);
        assert!(info2
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::UnknownAttribute { .. })));
    }

    #[test]
    fn unbound_variable_detected() {
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("ghost", "B"), int(1)),
                ]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::UnboundVariable { var, .. } if var == "ghost")));
    }

    #[test]
    fn aggregate_requires_grouping_scope() {
        // Missing γ: {Q(s) | ∃r∈R [Q.s = sum(r.B)]}
        let q = collection(
            "Q",
            &["s"],
            exists(
                &[bind("r", "R")],
                and([assign_agg("Q", "s", sum(col("r", "B")))]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::AggregateOutsideGroupingScope { .. })));
    }

    #[test]
    fn eq3_fio_binds_and_classifies() {
        // Eq (3): {Q(A,sm) | ∃r∈R, γ r.A [Q.A=r.A ∧ Q.sm=sum(r.B)]}
        let q = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let info = Binder::with_schemas(schemas()).bind_collection(&q);
        assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);
        assert_eq!(info.grouping_scope_count, 1);
        assert_eq!(info.aggregates.len(), 1);
        let agg = &info.aggregates[0];
        assert_eq!(agg.role, AggRole::Assignment);
        assert_eq!(agg.grouping_keys, 1);
    }

    #[test]
    fn non_key_attribute_escaping_group_rejected() {
        // {Q(A,sm) | ∃r∈R, γ r.A [Q.A=r.B ∧ Q.sm=sum(r.B)]} — r.B not a key.
        let q = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "B")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::NonKeyAttributeEscapesGroup { .. })));
    }

    #[test]
    fn grouping_key_must_be_local() {
        // Outer r used as grouping key of inner quantifier.
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    quant(
                        &[bind("s", "S")],
                        group(&[("r", "A")]),
                        None,
                        and([eq(col("s", "B"), col("r", "B"))]),
                    ),
                ]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::GroupingKeyNotLocal { .. })));
    }

    #[test]
    fn correlation_recorded_for_lateral_nesting() {
        // Eq (2): inner collection references outer x.
        let inner = collection(
            "Z",
            &["B"],
            exists(
                &[bind("y", "Y")],
                and([
                    assign("Z", "B", col("y", "A")),
                    lt(col("x", "A"), col("y", "A")),
                ]),
            ),
        );
        let q = collection(
            "Q",
            &["A", "B"],
            exists(
                &[bind("x", "X"), bind_coll("z", inner)],
                and([
                    assign("Q", "A", col("x", "A")),
                    assign("Q", "B", col("z", "B")),
                ]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);
        assert_eq!(info.correlations.len(), 1);
        assert_eq!(info.correlations[0].var, "x");
        assert_eq!(info.correlations[0].inner_name, "Z");
    }

    #[test]
    fn head_completeness_enforced() {
        let q = collection(
            "Q",
            &["A", "B"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::HeadAttrNotAssigned { attr, .. } if attr == "B")));
    }

    #[test]
    fn disjunction_requires_assignment_in_every_branch() {
        // Eq (16) shape: both branches assign — valid.
        let q = collection(
            "A",
            &["s", "t"],
            or([
                exists(
                    &[bind("p", "P")],
                    and([
                        assign("A", "s", col("p", "s")),
                        assign("A", "t", col("p", "t")),
                    ]),
                ),
                exists(
                    &[bind("p2", "P"), bind("a2", "A")],
                    and([
                        assign("A", "s", col("p2", "s")),
                        eq(col("p2", "t"), col("a2", "s")),
                        assign("A", "t", col("a2", "t")),
                    ]),
                ),
            ]),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);

        // Drop one assignment from the second branch — now invalid.
        let bad = collection(
            "A",
            &["s", "t"],
            or([
                exists(
                    &[bind("p", "P")],
                    and([
                        assign("A", "s", col("p", "s")),
                        assign("A", "t", col("p", "t")),
                    ]),
                ),
                exists(&[bind("p2", "P")], and([assign("A", "s", col("p2", "s"))])),
            ]),
        );
        let info = Binder::new().bind_collection(&bad);
        assert!(!info.is_valid());
    }

    #[test]
    fn shadowing_rejected() {
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    exists(&[bind("r", "S")], and([eq(col("r", "B"), int(1))])),
                ]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::ShadowedVariable { .. })));
    }

    #[test]
    fn abstract_definition_flagged_as_warning() {
        // Eq (23): Subset(left,right) with head attrs range-restricted only.
        let subset = collection(
            "S",
            &["left", "right"],
            not(exists(
                &[bind("l3", "L")],
                and([
                    eq(col("l3", "d"), col("S", "left")),
                    not(exists(
                        &[bind("l4", "L")],
                        and([
                            eq(col("l4", "b"), col("l3", "b")),
                            eq(col("l4", "d"), col("S", "right")),
                        ]),
                    )),
                ]),
            )),
        );
        let program = Program {
            definitions: vec![define(subset)],
            query: None,
        };
        let info = Binder::new().bind_program(&program);
        assert!(
            info.is_valid(),
            "abstract is a warning: {:?}",
            info.diagnostics
        );
        assert_eq!(info.abstract_collections, vec!["S".to_string()]);
    }

    #[test]
    fn join_annotation_coverage_checked() {
        let q = collection(
            "Q",
            &["m"],
            quant(
                &[bind("r", "R"), bind("s", "S")],
                None,
                Some(jleft(jvar("r"), jvar("r"))),
                and([assign("Q", "m", col("r", "A"))]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::JoinVarDuplicated { .. })));
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::JoinVarMissing { var } if var == "s")));
    }

    #[test]
    fn recursion_binds_via_program() {
        let anc = collection(
            "A",
            &["s", "t"],
            or([
                exists(
                    &[bind("p", "P")],
                    and([
                        assign("A", "s", col("p", "s")),
                        assign("A", "t", col("p", "t")),
                    ]),
                ),
                exists(
                    &[bind("p", "P"), bind("a2", "A")],
                    and([
                        assign("A", "s", col("p", "s")),
                        eq(col("p", "t"), col("a2", "s")),
                        assign("A", "t", col("a2", "t")),
                    ]),
                ),
            ]),
        );
        let mut schemas = SchemaMap::new();
        schemas.insert("P".into(), vec!["s".into(), "t".into()]);
        let program = Program {
            definitions: vec![define(anc)],
            query: None,
        };
        let info = Binder::with_schemas(schemas).bind_program(&program);
        assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);
        assert_eq!(info.relation_occurrences["A"], 1);
        assert_eq!(info.relation_occurrences["P"], 2);
    }

    #[test]
    fn aggregate_arg_must_be_local_to_grouping_scope() {
        // Aggregate over outer variable: ∃r∈R [∃s∈S, γ∅ [Q.c = count(r.B)]]
        let q = collection(
            "Q",
            &["c"],
            exists(
                &[bind("r", "R")],
                and([quant(
                    &[bind("s", "S")],
                    group_all(),
                    None,
                    and([assign_agg("Q", "c", count(col("r", "B")))]),
                )]),
            ),
        );
        let info = Binder::new().bind_collection(&q);
        assert!(info
            .diagnostics
            .iter()
            .any(|d| matches!(d, BindError::AggregateArgNotLocal { .. })));
    }

    #[test]
    fn sentence_binding_works() {
        // Eq (13): ∃r∈R [∃s∈S, γ∅ [r.id=s.id ∧ r.q ≤ count(s.d)]]
        let sentence = exists(
            &[bind("r", "R")],
            and([quant(
                &[bind("s", "S")],
                group_all(),
                None,
                and([
                    eq(col("r", "id"), col("s", "id")),
                    le(col("r", "q"), count(col("s", "d"))),
                ]),
            )]),
        );
        let info = Binder::new().bind_sentence(&sentence);
        assert!(info.is_valid(), "diagnostics: {:?}", info.diagnostics);
        assert_eq!(info.aggregates.len(), 1);
        assert_eq!(info.aggregates[0].role, AggRole::Comparison);
    }
}
