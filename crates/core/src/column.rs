//! Columnar chunk storage and vectorized kernels.
//!
//! A [`ColumnSet`] is a typed, chunked encoding of a bag of tuples: rows
//! are split into fixed-size chunks of [`CHUNK_ROWS`], and each chunk
//! stores one [`ColumnChunk`] per schema position — a contiguous typed
//! array (`Vec<i64>`, `Vec<f64>`, …) plus an optional validity bitmap
//! (bit set ⇔ the slot is non-`NULL`). Columns whose non-null values mix
//! types fall back to a `Vec<Value>` payload; all-`NULL` columns store no
//! payload at all.
//!
//! The kernels here are the vectorized counterparts of the engine's
//! row-at-a-time evaluation and replicate its semantics *exactly*:
//!
//! - [`ColumnChunk::and_cmp`] / [`ColumnChunk::and_is_null`] narrow a
//!   per-chunk [`Mask`] by a constant comparison / null test, with the
//!   same three-valued acceptance rule as the row path (only `True`
//!   passes — which makes constant filters convention-independent, see
//!   [`cmp_truth`]);
//! - [`ColumnChunk::join_keys_into`] computes equi-join keys for a whole
//!   column slice with [`Value::join_key`] semantics (`NULL`/`NaN` never
//!   join, integral floats normalize to integer keys);
//! - [`ColumnChunk::for_each_key`] streams grouping keys ([`Value::key`]
//!   semantics: `NULL`s group, `NaN` is self-equal) to a consumer, which
//!   is how `ANALYZE` sketches columns without re-materializing them.
//!
//! Invalid (null) slots in a typed payload hold placeholder defaults, so
//! every kernel masks with validity before trusting the payload.

use crate::ast::CmpOp;
use crate::value::{cmp_truth, ord_satisfies, Key, Value};

/// Rows per chunk. Chosen so a typical chunk's working set (a few typed
/// arrays plus a mask) stays cache-resident while amortizing per-chunk
/// dispatch over enough rows to be negligible.
pub const CHUNK_ROWS: usize = 1024;

/// The typed payload of one column within one chunk.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// All non-null values are integers.
    Int(Vec<i64>),
    /// All non-null values are floats (`NaN` included — `NaN` is a value,
    /// not a `NULL`, even though it never equi-joins).
    Float(Vec<f64>),
    /// All non-null values are booleans.
    Bool(Vec<bool>),
    /// All non-null values are strings.
    Str(Vec<String>),
    /// Non-null values mix types: stored as verbatim [`Value`]s
    /// (including any `NULL`s) and evaluated per-slot via [`cmp_truth`].
    Mixed(Vec<Value>),
    /// Every slot is `NULL`: no payload array at all.
    Null,
}

/// One column of one chunk: typed payload + validity bitmap.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnChunk {
    data: ColumnData,
    /// One bit per row, set ⇔ non-`NULL`. `None` ⇔ no nulls in the chunk.
    /// Invalid slots in a typed payload hold placeholder defaults.
    validity: Option<Vec<u64>>,
    len: usize,
}

impl ColumnChunk {
    /// Encode column `col` of the given row slice.
    fn encode(rows: &[Vec<Value>], col: usize) -> ColumnChunk {
        let len = rows.len();
        let mut nulls = 0usize;
        let mut tag: Option<u8> = None;
        let mut mixed = false;
        for row in rows {
            match &row[col] {
                Value::Null => nulls += 1,
                v => {
                    let t = match v {
                        Value::Bool(_) => 0u8,
                        Value::Int(_) => 1,
                        Value::Float(_) => 2,
                        Value::Str(_) => 3,
                        Value::Null => unreachable!("matched above"),
                    };
                    match tag {
                        None => tag = Some(t),
                        Some(p) if p == t => {}
                        Some(_) => mixed = true,
                    }
                }
            }
        }
        let validity = if nulls == 0 {
            None
        } else {
            let mut words = vec![0u64; len.div_ceil(64)];
            for (i, row) in rows.iter().enumerate() {
                if !row[col].is_null() {
                    words[i / 64] |= 1 << (i % 64);
                }
            }
            Some(words)
        };
        let data = if mixed {
            ColumnData::Mixed(rows.iter().map(|r| r[col].clone()).collect())
        } else {
            match tag {
                None => ColumnData::Null,
                Some(0) => ColumnData::Bool(
                    rows.iter()
                        .map(|r| match &r[col] {
                            Value::Bool(b) => *b,
                            _ => false,
                        })
                        .collect(),
                ),
                Some(1) => ColumnData::Int(
                    rows.iter()
                        .map(|r| match &r[col] {
                            Value::Int(i) => *i,
                            _ => 0,
                        })
                        .collect(),
                ),
                Some(2) => ColumnData::Float(
                    rows.iter()
                        .map(|r| match &r[col] {
                            Value::Float(f) => *f,
                            _ => 0.0,
                        })
                        .collect(),
                ),
                _ => ColumnData::Str(
                    rows.iter()
                        .map(|r| match &r[col] {
                            Value::Str(s) => s.clone(),
                            _ => String::new(),
                        })
                        .collect(),
                ),
            }
        };
        ColumnChunk {
            data,
            validity,
            len,
        }
    }

    /// Rows in this chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The typed payload (invalid slots hold placeholder defaults — mask
    /// with [`ColumnChunk::is_valid`] / the validity words before use).
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// True when slot `i` is non-`NULL`.
    pub fn is_valid(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Null => false,
            _ => self
                .validity
                .as_ref()
                .is_none_or(|w| (w[i / 64] >> (i % 64)) & 1 == 1),
        }
    }

    /// Decode slot `i` back to a [`Value`].
    pub fn value(&self, i: usize) -> Value {
        if !self.is_valid(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int(xs) => Value::Int(xs[i]),
            ColumnData::Float(xs) => Value::Float(xs[i]),
            ColumnData::Bool(xs) => Value::Bool(xs[i]),
            ColumnData::Str(xs) => Value::Str(xs[i].clone()),
            ColumnData::Mixed(vs) => vs[i].clone(),
            ColumnData::Null => Value::Null,
        }
    }

    /// Narrow `mask` to the rows where `row op rhs` is `True`.
    ///
    /// Exactly the row path's acceptance rule: `NULL` operands and `NaN`
    /// orderings never pass, heterogeneous values pass only `Ne` — so the
    /// kernel is correct under both null conventions (`Unknown` and
    /// `False` both fail a filter).
    pub fn and_cmp(&self, op: CmpOp, rhs: &Value, mask: &mut Mask) {
        if rhs.is_null() {
            mask.clear_all();
            return;
        }
        // NULL rows compare as Unknown: never True.
        if let Some(words) = &self.validity {
            mask.and_words(words);
        }
        match (&self.data, rhs) {
            (ColumnData::Null, _) => mask.clear_all(),
            (ColumnData::Int(xs), Value::Int(c)) => {
                let c = *c;
                mask.retain(|i| ord_satisfies(xs[i].cmp(&c), op));
            }
            (ColumnData::Int(xs), Value::Float(c)) => {
                let c = *c;
                mask.retain(|i| match (xs[i] as f64).partial_cmp(&c) {
                    Some(ord) => ord_satisfies(ord, op),
                    None => op == CmpOp::Ne, // NaN: incomparable
                });
            }
            (ColumnData::Float(xs), Value::Int(c)) => {
                let c = *c as f64;
                mask.retain(|i| match xs[i].partial_cmp(&c) {
                    Some(ord) => ord_satisfies(ord, op),
                    None => op == CmpOp::Ne,
                });
            }
            (ColumnData::Float(xs), Value::Float(c)) => {
                let c = *c;
                mask.retain(|i| match xs[i].partial_cmp(&c) {
                    Some(ord) => ord_satisfies(ord, op),
                    None => op == CmpOp::Ne,
                });
            }
            (ColumnData::Bool(xs), Value::Bool(c)) => {
                let c = *c;
                mask.retain(|i| ord_satisfies(xs[i].cmp(&c), op));
            }
            (ColumnData::Str(xs), Value::Str(c)) => {
                let c = c.as_str();
                mask.retain(|i| ord_satisfies(xs[i].as_str().cmp(c), op));
            }
            (ColumnData::Mixed(vs), _) => {
                mask.retain(|i| cmp_truth(&vs[i], op, rhs).is_true());
            }
            // Heterogeneous column/constant types: incomparable for every
            // valid row (Ne passes, everything else fails).
            _ => {
                if op != CmpOp::Ne {
                    mask.clear_all();
                }
            }
        }
    }

    /// Narrow `mask` by `IS [NOT] NULL` (two-valued in both conventions;
    /// `NaN` is a value, not a `NULL`).
    pub fn and_is_null(&self, negated: bool, mask: &mut Mask) {
        if let ColumnData::Null = self.data {
            if negated {
                mask.clear_all();
            }
            return;
        }
        match (self.validity.as_deref(), negated) {
            (None, false) => mask.clear_all(),
            (None, true) => {}
            (Some(words), true) => mask.and_words(words),
            (Some(words), false) => mask.and_not_words(words),
        }
    }

    /// Compute the equi-join key of every slot into `out` (cleared first):
    /// [`Value::join_key`] semantics, one typed pass.
    pub fn join_keys_into(&self, out: &mut Vec<Option<Key>>) {
        out.clear();
        out.reserve(self.len);
        match &self.data {
            ColumnData::Int(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    out.push(self.is_valid(i).then_some(Key::Int(*x)));
                }
            }
            ColumnData::Float(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    out.push(if self.is_valid(i) {
                        Value::Float(*x).join_key()
                    } else {
                        None
                    });
                }
            }
            ColumnData::Bool(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    out.push(self.is_valid(i).then_some(Key::Bool(*x)));
                }
            }
            ColumnData::Str(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    out.push(self.is_valid(i).then(|| Key::Str(x.clone())));
                }
            }
            ColumnData::Mixed(vs) => {
                for v in vs {
                    out.push(v.join_key());
                }
            }
            ColumnData::Null => {
                for _ in 0..self.len {
                    out.push(None);
                }
            }
        }
    }

    /// Stream the grouping key ([`Value::key`] semantics) of every slot to
    /// `f(slot, key)`, in slot order, without materializing a key vector.
    pub fn for_each_key(&self, mut f: impl FnMut(usize, Key)) {
        match &self.data {
            ColumnData::Int(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    f(
                        i,
                        if self.is_valid(i) {
                            Key::Int(*x)
                        } else {
                            Key::Null
                        },
                    );
                }
            }
            ColumnData::Float(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    f(
                        i,
                        if self.is_valid(i) {
                            Value::Float(*x).key()
                        } else {
                            Key::Null
                        },
                    );
                }
            }
            ColumnData::Bool(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    f(
                        i,
                        if self.is_valid(i) {
                            Key::Bool(*x)
                        } else {
                            Key::Null
                        },
                    );
                }
            }
            ColumnData::Str(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    f(
                        i,
                        if self.is_valid(i) {
                            Key::Str(x.clone())
                        } else {
                            Key::Null
                        },
                    );
                }
            }
            ColumnData::Mixed(vs) => {
                for (i, v) in vs.iter().enumerate() {
                    f(i, v.key());
                }
            }
            ColumnData::Null => {
                for i in 0..self.len {
                    f(i, Key::Null);
                }
            }
        }
    }
}

/// One chunk: a horizontal slice of [`CHUNK_ROWS`] (or fewer, for the
/// tail) rows, stored as one [`ColumnChunk`] per schema position.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    base: usize,
    len: usize,
    cols: Vec<ColumnChunk>,
}

impl Chunk {
    /// Global row index of this chunk's first row.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Rows in this chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the chunk has no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Column `c` of this chunk.
    pub fn col(&self, c: usize) -> &ColumnChunk {
        &self.cols[c]
    }
}

/// The chunked columnar encoding of a whole relation.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnSet {
    arity: usize,
    rows: usize,
    chunks: Vec<Chunk>,
}

impl ColumnSet {
    /// Encode `rows` (each of width `arity`) into column chunks.
    pub fn encode(arity: usize, rows: &[Vec<Value>]) -> ColumnSet {
        let mut chunks = Vec::with_capacity(rows.len().div_ceil(CHUNK_ROWS.max(1)));
        let mut base = 0;
        while base < rows.len() {
            let end = (base + CHUNK_ROWS).min(rows.len());
            let slice = &rows[base..end];
            chunks.push(Chunk {
                base,
                len: slice.len(),
                cols: (0..arity).map(|c| ColumnChunk::encode(slice, c)).collect(),
            });
            base = end;
        }
        ColumnSet {
            arity,
            rows: rows.len(),
            chunks,
        }
    }

    /// Column arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Total rows across all chunks.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The chunks, in row order (every chunk but the last holds exactly
    /// [`CHUNK_ROWS`] rows, so `row / CHUNK_ROWS` indexes directly).
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    /// Decode one cell by global row index.
    pub fn value(&self, row: usize, col: usize) -> Value {
        let chunk = &self.chunks[row / CHUNK_ROWS];
        chunk.col(col).value(row - chunk.base)
    }
}

/// A per-chunk selection bitmask (one bit per row, set ⇔ selected).
/// Kernels narrow it monotonically; tail bits past `len` stay zero so
/// popcounts and index extraction never see phantom rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Mask {
    words: Vec<u64>,
    len: usize,
}

impl Mask {
    /// A mask selecting every row of a `len`-row chunk.
    pub fn all_true(len: usize) -> Mask {
        let mut words = vec![u64::MAX; len.div_ceil(64)];
        if !len.is_multiple_of(64) {
            if let Some(w) = words.last_mut() {
                *w = (1u64 << (len % 64)) - 1;
            }
        }
        Mask { words, len }
    }

    /// Rows the mask covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mask covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when row `i` is selected.
    pub fn get(&self, i: usize) -> bool {
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Deselect every row.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// True when any row is still selected.
    pub fn any(&self) -> bool {
        self.words.iter().any(|w| *w != 0)
    }

    /// Number of selected rows.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Intersect with a bitmap of the same shape (e.g. validity words).
    pub fn and_words(&mut self, other: &[u64]) {
        for (w, o) in self.words.iter_mut().zip(other) {
            *w &= *o;
        }
    }

    /// Intersect with the complement of a bitmap of the same shape.
    pub fn and_not_words(&mut self, other: &[u64]) {
        for (w, o) in self.words.iter_mut().zip(other) {
            *w &= !*o;
        }
    }

    /// Keep only the selected rows for which `keep` holds; `keep` is
    /// called for currently-selected rows only, in row order.
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        for wi in 0..self.words.len() {
            let mut w = self.words[wi];
            while w != 0 {
                let b = w.trailing_zeros() as usize;
                if !keep(wi * 64 + b) {
                    self.words[wi] &= !(1u64 << b);
                }
                w &= w - 1;
            }
        }
    }

    /// Append the selected row indices, offset by `base`, to `out` (in
    /// ascending order — which is what keeps vectorized scans
    /// row-identical to the sequential row path).
    pub fn indices_into(&self, base: u32, out: &mut Vec<u32>) {
        for (wi, word) in self.words.iter().enumerate() {
            let mut w = *word;
            while w != 0 {
                let b = w.trailing_zeros();
                out.push(base + wi as u32 * 64 + b);
                w &= w - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_of(col: &[Value]) -> Vec<Vec<Value>> {
        col.iter().map(|v| vec![v.clone()]).collect()
    }

    /// Reference implementation: the row path's acceptance rule.
    fn row_filter(col: &[Value], op: CmpOp, rhs: &Value) -> Vec<u32> {
        col.iter()
            .enumerate()
            .filter(|(_, v)| cmp_truth(v, op, rhs).is_true())
            .map(|(i, _)| i as u32)
            .collect()
    }

    fn vec_filter(col: &[Value], op: CmpOp, rhs: &Value) -> Vec<u32> {
        let set = ColumnSet::encode(1, &rows_of(col));
        let mut out = Vec::new();
        for chunk in set.chunks() {
            let mut mask = Mask::all_true(chunk.len());
            chunk.col(0).and_cmp(op, rhs, &mut mask);
            mask.indices_into(chunk.base() as u32, &mut out);
        }
        out
    }

    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    fn value_pool() -> Vec<Value> {
        vec![
            Value::Null,
            Value::Bool(false),
            Value::Bool(true),
            Value::Int(-3),
            Value::Int(0),
            Value::Int(7),
            Value::Float(-0.5),
            Value::Float(7.0),
            Value::Float(f64::NAN),
            Value::str(""),
            Value::str("abc"),
        ]
    }

    #[test]
    fn cmp_kernels_match_row_path_on_every_column_shape() {
        let pool = value_pool();
        // Homogeneous, nullable, mixed, and all-null columns.
        let columns: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Int(7), Value::Int(-3)],
            vec![Value::Int(1), Value::Null, Value::Int(7)],
            vec![Value::Float(1.5), Value::Float(f64::NAN), Value::Null],
            vec![Value::str("a"), Value::str("b"), Value::Null],
            vec![Value::Bool(true), Value::Bool(false)],
            vec![Value::Int(1), Value::str("1"), Value::Float(1.0)],
            vec![Value::Null, Value::Null, Value::Null],
            pool.clone(),
        ];
        for col in &columns {
            for rhs in &pool {
                for op in OPS {
                    assert_eq!(
                        vec_filter(col, op, rhs),
                        row_filter(col, op, rhs),
                        "col {col:?} {op:?} {rhs:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn is_null_kernel_matches_row_path() {
        let columns: Vec<Vec<Value>> = vec![
            vec![Value::Int(1), Value::Null, Value::Float(f64::NAN)],
            vec![Value::Null, Value::Null],
            vec![Value::Int(1), Value::Int(2)],
            vec![Value::Int(1), Value::str("x"), Value::Null],
        ];
        for col in &columns {
            for negated in [false, true] {
                let set = ColumnSet::encode(1, &rows_of(col));
                let mut got = Vec::new();
                for chunk in set.chunks() {
                    let mut mask = Mask::all_true(chunk.len());
                    chunk.col(0).and_is_null(negated, &mut mask);
                    mask.indices_into(chunk.base() as u32, &mut got);
                }
                let want: Vec<u32> = col
                    .iter()
                    .enumerate()
                    .filter(|(_, v)| v.is_null() != negated)
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "col {col:?} negated {negated}");
            }
        }
    }

    #[test]
    fn encode_round_trips_across_chunk_boundaries() {
        let pool = value_pool();
        for n in [0usize, 1, 63, 64, 1023, 1024, 1025, 2500] {
            let rows: Vec<Vec<Value>> = (0..n)
                .map(|i| vec![pool[i % pool.len()].clone(), Value::Int(i as i64)])
                .collect();
            let set = ColumnSet::encode(2, &rows);
            assert_eq!(set.rows(), n);
            for (i, row) in rows.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    assert_eq!(set.value(i, c).key(), v.key(), "row {i} col {c}");
                }
            }
        }
    }

    #[test]
    fn join_keys_follow_join_key_semantics() {
        let col = vec![
            Value::Int(1),
            Value::Float(1.0), // normalizes to Key::Int(1)
            Value::Float(f64::NAN),
            Value::Null,
            Value::str("x"),
        ];
        let set = ColumnSet::encode(1, &rows_of(&col));
        let mut keys = Vec::new();
        set.chunks()[0].col(0).join_keys_into(&mut keys);
        let want: Vec<Option<Key>> = col.iter().map(|v| v.join_key()).collect();
        assert_eq!(keys, want);
        assert_eq!(keys[0], keys[1], "integral float joins with int");
    }

    #[test]
    fn for_each_key_follows_grouping_semantics() {
        let col = vec![
            Value::Null,
            Value::Float(f64::NAN),
            Value::Float(2.0),
            Value::Int(2),
            Value::str("s"),
            Value::Bool(true),
        ];
        let set = ColumnSet::encode(1, &rows_of(&col));
        let mut got = Vec::new();
        set.chunks()[0].col(0).for_each_key(|i, k| got.push((i, k)));
        let want: Vec<(usize, Key)> = col.iter().enumerate().map(|(i, v)| (i, v.key())).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn mask_tail_bits_stay_clear() {
        let mask = Mask::all_true(70);
        assert_eq!(mask.count(), 70);
        let mut out = Vec::new();
        mask.indices_into(0, &mut out);
        assert_eq!(out.len(), 70);
        assert_eq!(out.last(), Some(&69));
    }

    #[test]
    fn all_null_column_stores_no_payload() {
        let set = ColumnSet::encode(1, &rows_of(&[Value::Null, Value::Null]));
        assert_eq!(*set.chunks()[0].col(0).data(), ColumnData::Null);
        assert!(!set.chunks()[0].col(0).is_valid(0));
    }
}
