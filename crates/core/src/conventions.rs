//! Language **conventions** (paper §2.6, §2.7): orthogonal, environment-level
//! semantic parameters under which a query's relational core is interpreted.
//!
//! The central claim of the paper is that these switches affect observable
//! *results* but never the *relational pattern* of a query. The engine takes
//! a [`Conventions`] value; the pattern extractor in `arc-analysis` never
//! looks at one. A property test in `crates/tests` pins this orthogonality.

use std::fmt;

/// Set vs. bag (multiset) interpretation of collections (§2.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Semantics {
    /// Every relation is a set; output tuples are deduplicated.
    #[default]
    Set,
    /// Relations are bags; multiplicities follow the conceptual evaluation
    /// strategy (nested existentials behave like semijoins, §2.7).
    Bag,
}

/// What `sum`/`avg`/`min`/`max` return on an empty group (§2.6).
/// `count` is always 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EmptyAgg {
    /// SQL: `NULL`.
    #[default]
    Null,
    /// Soufflé: 0 for `sum` (and we extend the spirit to 0 for `avg`;
    /// `min`/`max` stay `NULL`-less only in systems without nulls, so under
    /// this convention an empty `min`/`max` group produces no derivable
    /// value and the predicate simply fails).
    Zero,
}

/// Two- vs. three-valued predicate logic (§2.10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NullLogic {
    /// SQL: comparisons with `NULL` are `UNKNOWN`; `WHERE` keeps only `TRUE`.
    #[default]
    ThreeValued,
    /// Two-valued logic: `UNKNOWN` collapses to `FALSE` at every predicate
    /// (the rewrite of Fig 11 shows SQL's `NOT IN` is expressible here).
    TwoValued,
}

/// A full convention profile. Named presets model the systems the paper
/// compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Conventions {
    /// Set or bag semantics.
    pub semantics: Semantics,
    /// Aggregates over empty input.
    pub empty_agg: EmptyAgg,
    /// Predicate logic for nulls.
    pub null_logic: NullLogic,
}

impl Conventions {
    /// Classical TRC / textbook calculus: sets, SQL-style empty aggregates,
    /// three-valued nulls. This is also `Conventions::default()`.
    pub fn set() -> Self {
        Conventions::default()
    }

    /// SQL: bag semantics, `NULL` on empty aggregates, three-valued logic.
    pub fn sql() -> Self {
        Conventions {
            semantics: Semantics::Bag,
            empty_agg: EmptyAgg::Null,
            null_logic: NullLogic::ThreeValued,
        }
    }

    /// Soufflé: set semantics, `sum ∅ = 0`, no nulls (two-valued logic).
    pub fn souffle() -> Self {
        Conventions {
            semantics: Semantics::Set,
            empty_agg: EmptyAgg::Zero,
            null_logic: NullLogic::TwoValued,
        }
    }

    /// Flip just the collection semantics.
    pub fn with_semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Flip just the empty-aggregate behaviour.
    pub fn with_empty_agg(mut self, empty_agg: EmptyAgg) -> Self {
        self.empty_agg = empty_agg;
        self
    }

    /// Flip just the null logic.
    pub fn with_null_logic(mut self, null_logic: NullLogic) -> Self {
        self.null_logic = null_logic;
        self
    }
}

impl fmt::Display for Conventions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{}, empty-agg={}, {}}}",
            match self.semantics {
                Semantics::Set => "set",
                Semantics::Bag => "bag",
            },
            match self.empty_agg {
                EmptyAgg::Null => "null",
                EmptyAgg::Zero => "zero",
            },
            match self.null_logic {
                NullLogic::ThreeValued => "3VL",
                NullLogic::TwoValued => "2VL",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        assert_eq!(Conventions::sql().semantics, Semantics::Bag);
        assert_eq!(Conventions::sql().empty_agg, EmptyAgg::Null);
        assert_eq!(Conventions::souffle().empty_agg, EmptyAgg::Zero);
        assert_eq!(Conventions::souffle().null_logic, NullLogic::TwoValued);
        assert_eq!(Conventions::set().semantics, Semantics::Set);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(Conventions::sql().to_string(), "{bag, empty-agg=null, 3VL}");
    }

    #[test]
    fn builders_flip_single_axes() {
        let c = Conventions::set().with_semantics(Semantics::Bag);
        assert_eq!(c.empty_agg, EmptyAgg::Null);
        assert_eq!(c.semantics, Semantics::Bag);
    }
}
