//! A small construction DSL for writing ARC queries in Rust.
//!
//! Every figure in the paper is transcribed somewhere in this workspace;
//! the DSL keeps those transcriptions close to the comprehension syntax.
//! Example — the paper's Eq (3), a grouped aggregate in the FIO pattern:
//!
//! ```
//! use arc_core::dsl::*;
//!
//! // {Q(A,sm) | ∃r∈R, γ r.A [Q.A = r.A ∧ Q.sm = sum(r.B)]}
//! let q = collection(
//!     "Q",
//!     &["A", "sm"],
//!     quant(
//!         &[bind("r", "R")],
//!         group(&[("r", "A")]),
//!         None,
//!         and([assign("Q", "A", col("r", "A")), assign_agg("Q", "sm", sum(col("r", "B")))]),
//!     ),
//! );
//! assert_eq!(q.head.relation, "Q");
//! ```

use crate::ast::*;
use crate::value::Value;

/// `{ head(attrs…) | body }`.
pub fn collection(head: &str, attrs: &[&str], body: Formula) -> Collection {
    Collection {
        head: Head::new(head, attrs),
        body,
    }
}

/// A definition (intensional relation) from a collection.
pub fn define(collection: Collection) -> Definition {
    Definition { collection }
}

/// `∃ bindings [body]` — plain existential scope.
pub fn exists(bindings: &[Binding], body: Formula) -> Formula {
    quant(bindings, None, None, body)
}

/// Full quantifier constructor with optional grouping and join annotation.
pub fn quant(
    bindings: &[Binding],
    grouping: Option<Grouping>,
    join: Option<JoinTree>,
    body: Formula,
) -> Formula {
    Formula::Quant(Box::new(Quant {
        bindings: bindings.to_vec(),
        grouping,
        join,
        body,
    }))
}

/// `r ∈ R`.
pub fn bind(var: &str, relation: &str) -> Binding {
    Binding::named(var, relation)
}

/// `x ∈ { … }` (nested comprehension).
pub fn bind_coll(var: &str, collection: Collection) -> Binding {
    Binding::nested(var, collection)
}

/// `γ keys…` from `(var, attr)` pairs.
pub fn group(keys: &[(&str, &str)]) -> Option<Grouping> {
    Some(Grouping::by(
        keys.iter().map(|(v, a)| AttrRef::new(*v, *a)).collect(),
    ))
}

/// `γ∅`: aggregate over the entire join ("group by true").
pub fn group_all() -> Option<Grouping> {
    Some(Grouping::empty())
}

/// Conjunction.
pub fn and(fs: impl IntoIterator<Item = Formula>) -> Formula {
    Formula::And(fs.into_iter().collect())
}

/// Disjunction.
pub fn or(fs: impl IntoIterator<Item = Formula>) -> Formula {
    Formula::Or(fs.into_iter().collect())
}

/// Negation.
pub fn not(f: Formula) -> Formula {
    Formula::Not(Box::new(f))
}

/// `var.attr` as a scalar.
pub fn col(var: &str, attr: &str) -> Scalar {
    Scalar::Attr(AttrRef::new(var, attr))
}

/// Integer constant.
pub fn int(v: i64) -> Scalar {
    Scalar::Const(Value::Int(v))
}

/// Float constant.
pub fn flt(v: f64) -> Scalar {
    Scalar::Const(Value::Float(v))
}

/// String constant.
pub fn text(v: &str) -> Scalar {
    Scalar::Const(Value::str(v))
}

/// `NULL` constant.
pub fn null() -> Scalar {
    Scalar::Const(Value::Null)
}

/// Comparison predicate as a formula leaf.
pub fn cmp(left: Scalar, op: CmpOp, right: Scalar) -> Formula {
    Formula::Pred(Predicate::Cmp { left, op, right })
}

/// `l = r`.
pub fn eq(left: Scalar, right: Scalar) -> Formula {
    cmp(left, CmpOp::Eq, right)
}

/// `l <> r`.
pub fn ne(left: Scalar, right: Scalar) -> Formula {
    cmp(left, CmpOp::Ne, right)
}

/// `l < r`.
pub fn lt(left: Scalar, right: Scalar) -> Formula {
    cmp(left, CmpOp::Lt, right)
}

/// `l <= r`.
pub fn le(left: Scalar, right: Scalar) -> Formula {
    cmp(left, CmpOp::Le, right)
}

/// `l > r`.
pub fn gt(left: Scalar, right: Scalar) -> Formula {
    cmp(left, CmpOp::Gt, right)
}

/// `l >= r`.
pub fn ge(left: Scalar, right: Scalar) -> Formula {
    cmp(left, CmpOp::Ge, right)
}

/// Assignment predicate `Head.attr = expr` (a `Cmp` whose left side names
/// the head; the binder recognises the role).
pub fn assign(head: &str, attr: &str, expr: Scalar) -> Formula {
    eq(col(head, attr), expr)
}

/// Aggregation-assignment predicate `Head.attr = agg(…)`.
pub fn assign_agg(head: &str, attr: &str, agg: Scalar) -> Formula {
    eq(col(head, attr), agg)
}

/// `expr IS NULL`.
pub fn is_null(expr: Scalar) -> Formula {
    Formula::Pred(Predicate::IsNull {
        expr,
        negated: false,
    })
}

/// `expr IS NOT NULL`.
pub fn is_not_null(expr: Scalar) -> Formula {
    Formula::Pred(Predicate::IsNull {
        expr,
        negated: true,
    })
}

fn agg(func: AggFunc, arg: Scalar) -> Scalar {
    Scalar::Agg(Box::new(AggCall {
        func,
        arg: AggArg::Expr(arg),
        distinct: false,
    }))
}

/// `sum(expr)`.
pub fn sum(arg: Scalar) -> Scalar {
    agg(AggFunc::Sum, arg)
}

/// `count(expr)`.
pub fn count(arg: Scalar) -> Scalar {
    agg(AggFunc::Count, arg)
}

/// `count(*)`.
pub fn count_star() -> Scalar {
    Scalar::Agg(Box::new(AggCall {
        func: AggFunc::Count,
        arg: AggArg::Star,
        distinct: false,
    }))
}

/// `avg(expr)`.
pub fn avg(arg: Scalar) -> Scalar {
    agg(AggFunc::Avg, arg)
}

/// `min(expr)`.
pub fn min(arg: Scalar) -> Scalar {
    agg(AggFunc::Min, arg)
}

/// `max(expr)`.
pub fn max(arg: Scalar) -> Scalar {
    agg(AggFunc::Max, arg)
}

/// Distinct aggregate, e.g. `countdistinct` (§2.5).
pub fn agg_distinct(func: AggFunc, arg: Scalar) -> Scalar {
    Scalar::Agg(Box::new(AggCall {
        func,
        arg: AggArg::Expr(arg),
        distinct: true,
    }))
}

/// Arithmetic scalar `l op r`.
pub fn arith(op: ArithOp, left: Scalar, right: Scalar) -> Scalar {
    Scalar::Arith {
        op,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// `l + r`.
pub fn add(l: Scalar, r: Scalar) -> Scalar {
    arith(ArithOp::Add, l, r)
}

/// `l - r`.
pub fn sub(l: Scalar, r: Scalar) -> Scalar {
    arith(ArithOp::Sub, l, r)
}

/// `l * r`.
pub fn mul(l: Scalar, r: Scalar) -> Scalar {
    arith(ArithOp::Mul, l, r)
}

/// `l / r`.
pub fn div(l: Scalar, r: Scalar) -> Scalar {
    arith(ArithOp::Div, l, r)
}

/// Join-annotation leaf for a variable.
pub fn jvar(v: &str) -> JoinTree {
    JoinTree::Var(v.to_string())
}

/// Join-annotation literal leaf (singleton relation).
pub fn jlit(v: impl Into<Value>) -> JoinTree {
    JoinTree::Lit(v.into())
}

/// `inner(…)`.
pub fn jinner(children: impl IntoIterator<Item = JoinTree>) -> JoinTree {
    JoinTree::Inner(children.into_iter().collect())
}

/// `left(l, r)`.
pub fn jleft(l: JoinTree, r: JoinTree) -> JoinTree {
    JoinTree::Left(Box::new(l), Box::new(r))
}

/// `full(l, r)`.
pub fn jfull(l: JoinTree, r: JoinTree) -> JoinTree {
    JoinTree::Full(Box::new(l), Box::new(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq1_paper_query_builds() {
        // Eq (1): {Q(A) | ∃r∈R, s∈S [Q.A=r.A ∧ r.B=s.B ∧ s.C=0]}
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(0)),
                ]),
            ),
        );
        assert_eq!(q.head.to_string(), "Q(A)");
        match &q.body {
            Formula::Quant(quant) => {
                assert_eq!(quant.bindings.len(), 2);
                assert!(quant.grouping.is_none());
            }
            _ => panic!("expected quantifier body"),
        }
    }

    #[test]
    fn nested_binding_builds_lateral_shape() {
        // Eq (2): nesting in the body = lateral join.
        let inner = collection(
            "Z",
            &["B"],
            exists(
                &[bind("y", "Y")],
                and([
                    assign("Z", "B", col("y", "A")),
                    lt(col("x", "A"), col("y", "A")),
                ]),
            ),
        );
        let q = collection(
            "Q",
            &["A", "B"],
            exists(
                &[bind("x", "X"), bind_coll("z", inner)],
                and([
                    assign("Q", "A", col("x", "A")),
                    assign("Q", "B", col("z", "B")),
                ]),
            ),
        );
        match &q.body {
            Formula::Quant(quant) => match &quant.bindings[1].source {
                BindingSource::Collection(c) => assert_eq!(c.head.relation, "Z"),
                _ => panic!("expected nested collection"),
            },
            _ => panic!("expected quantifier"),
        }
    }
}
