//! JSON interchange for the ALT (Abstract Language Tree).
//!
//! The paper proposes the ALT as a machine-interchange target for NL2SQL
//! pipelines (§4/§5). This module defines that wire format explicitly: a
//! small JSON document model ([`Json`]), a parser and printer, and a codec
//! between [`Collection`] trees and their JSON form.
//!
//! The encoding mirrors the AST one-to-one and is externally tagged for
//! enums (`{"Quant": {...}}`, `{"Pred": {...}}`), so a reader can
//! dispatch on the single key. Scalar [`Value`]s encode as native JSON
//! where unambiguous (`null`, booleans, integers, strings) and as a
//! `{"float": x}` wrapper for floats, keeping the `Int`/`Float` distinction
//! through round-trips.
//!
//! ```
//! use arc_core::dsl::*;
//! use arc_core::json;
//!
//! let q = collection(
//!     "Q",
//!     &["A"],
//!     exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
//! );
//! let wire = json::to_json(&q);
//! let back = json::from_json(&wire).unwrap();
//! assert_eq!(q, back);
//! ```

use crate::ast::*;
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Document model
// ---------------------------------------------------------------------------

/// A JSON document. Object keys are kept sorted (`BTreeMap`) so printed
/// output is canonical — two equal trees always print identically.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without fractional part, within `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Single-key object — the externally-tagged enum encoding.
    pub fn tag(name: &'static str, value: Json) -> Json {
        Json::obj([(name, value)])
    }

    fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn print_number(f: f64, out: &mut String) {
    if f.is_finite() {
        if f.fract() == 0.0 {
            // Keep a fractional marker so floats re-parse as floats.
            // (Rust's float Display never emits exponents, so `{:.1}` is a
            // plain digit string for any finite magnitude.)
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&format!("{f}"));
        }
    } else {
        // JSON has no Inf/NaN literals; encode as tagged strings.
        escape_into(&f.to_string(), out);
    }
}

fn print_into(j: &Json, indent: usize, pretty: bool, out: &mut String) {
    let (nl, pad, pad_in) = if pretty {
        ("\n", "  ".repeat(indent), "  ".repeat(indent + 1))
    } else {
        ("", String::new(), String::new())
    };
    match j {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Int(i) => out.push_str(&i.to_string()),
        Json::Float(f) => print_number(*f, out),
        Json::Str(s) => escape_into(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                print_into(item, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(nl);
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                print_into(v, indent + 1, pretty, out);
            }
            out.push_str(nl);
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        print_into(self, 0, f.alternate(), &mut s);
        f.write_str(&s)
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// A JSON parse/decode error with byte offset (parse) or path context
/// (decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the input where the problem was detected, when known.
    pub offset: Option<usize>,
}

impl JsonError {
    fn at(offset: usize, message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: Some(offset),
        }
    }

    fn decode(message: impl Into<String>) -> Self {
        JsonError {
            message: message.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} (at byte {o})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

/// Maximum container nesting the parser accepts. External documents past
/// this depth get a [`JsonError`] instead of recursing toward a stack
/// overflow (the wire format is fed by external NL2SQL generators, so the
/// parser must be total on adversarial input).
const MAX_DEPTH: usize = 128;

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
    depth: usize,
}

impl<'s> Parser<'s> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::at(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        if self.depth >= MAX_DEPTH {
            return Err(JsonError::at(
                self.pos,
                format!("nesting deeper than {MAX_DEPTH} levels"),
            ));
        }
        self.depth += 1;
        let v = self.value_inner();
        self.depth -= 1;
        v
    }

    fn value_inner(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(JsonError::at(
                self.pos,
                format!("unexpected byte `{}`", b as char),
            )),
            None => Err(JsonError::at(self.pos, "unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(JsonError::at(self.pos, format!("expected `{kw}`")))
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::at(self.pos, "unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::at(self.pos, "unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| JsonError::at(self.pos, "truncated \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::at(self.pos, "invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: only the BMP is produced by
                            // the printer; accept pairs from other writers.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    let hex2 = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .and_then(|h| std::str::from_utf8(h).ok())
                                        .ok_or_else(|| {
                                            JsonError::at(self.pos, "truncated surrogate")
                                        })?;
                                    let lo = u32::from_str_radix(hex2, 16).map_err(|_| {
                                        JsonError::at(self.pos, "invalid surrogate")
                                    })?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(JsonError::at(
                                            self.pos,
                                            "high surrogate not followed by a low surrogate",
                                        ));
                                    }
                                    self.pos += 6;
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(JsonError::at(self.pos, "lone surrogate"));
                                }
                            } else {
                                cp
                            };
                            out.push(
                                char::from_u32(c)
                                    .ok_or_else(|| JsonError::at(self.pos, "invalid code point"))?,
                            );
                        }
                        other => {
                            return Err(JsonError::at(
                                self.pos,
                                format!("invalid escape `\\{}`", other as char),
                            ))
                        }
                    }
                }
                _ => {
                    // Re-scan from the byte we consumed to keep UTF-8 intact.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| JsonError::at(start, "invalid UTF-8"))?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::at(start, "invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| JsonError::at(start, format!("invalid number `{text}`")))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(JsonError::at(self.pos, "expected `,` or `}`")),
            }
        }
    }
}

/// Parse a JSON document.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
        depth: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(JsonError::at(p.pos, "trailing input after document"));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// AST encoding
// ---------------------------------------------------------------------------

fn value_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::tag("float", Json::Float(*f)),
        Value::Str(s) => Json::str(s.clone()),
    }
}

fn scalar_json(s: &Scalar) -> Json {
    match s {
        Scalar::Attr(a) => Json::tag("Attr", attr_ref_json(a)),
        Scalar::Const(v) => Json::tag("Const", value_json(v)),
        Scalar::Agg(call) => Json::tag("Agg", agg_call_json(call)),
        Scalar::Arith { op, left, right } => Json::tag(
            "Arith",
            Json::obj([
                ("op", Json::str(format!("{op:?}"))),
                ("left", scalar_json(left)),
                ("right", scalar_json(right)),
            ]),
        ),
    }
}

fn attr_ref_json(a: &AttrRef) -> Json {
    Json::obj([
        ("var", Json::str(a.var.clone())),
        ("attr", Json::str(a.attr.clone())),
    ])
}

fn agg_call_json(call: &AggCall) -> Json {
    let arg = match &call.arg {
        AggArg::Expr(e) => Json::tag("Expr", scalar_json(e)),
        AggArg::Star => Json::str("Star"),
    };
    Json::obj([
        ("func", Json::str(format!("{:?}", call.func))),
        ("arg", arg),
        ("distinct", Json::Bool(call.distinct)),
    ])
}

fn predicate_json(p: &Predicate) -> Json {
    match p {
        Predicate::Cmp { left, op, right } => Json::tag(
            "Cmp",
            Json::obj([
                ("left", scalar_json(left)),
                ("op", Json::str(format!("{op:?}"))),
                ("right", scalar_json(right)),
            ]),
        ),
        Predicate::IsNull { expr, negated } => Json::tag(
            "IsNull",
            Json::obj([
                ("expr", scalar_json(expr)),
                ("negated", Json::Bool(*negated)),
            ]),
        ),
    }
}

fn join_tree_json(j: &JoinTree) -> Json {
    match j {
        JoinTree::Var(v) => Json::tag("Var", Json::str(v.clone())),
        JoinTree::Lit(v) => Json::tag("Lit", value_json(v)),
        JoinTree::Inner(children) => Json::tag(
            "Inner",
            Json::Arr(children.iter().map(join_tree_json).collect()),
        ),
        JoinTree::Left(l, r) => Json::tag(
            "Left",
            Json::Arr(vec![join_tree_json(l), join_tree_json(r)]),
        ),
        JoinTree::Full(l, r) => Json::tag(
            "Full",
            Json::Arr(vec![join_tree_json(l), join_tree_json(r)]),
        ),
    }
}

fn formula_json(f: &Formula) -> Json {
    match f {
        Formula::Quant(q) => Json::tag("Quant", quant_json(q)),
        Formula::And(fs) => Json::tag("And", Json::Arr(fs.iter().map(formula_json).collect())),
        Formula::Or(fs) => Json::tag("Or", Json::Arr(fs.iter().map(formula_json).collect())),
        Formula::Not(inner) => Json::tag("Not", formula_json(inner)),
        Formula::Pred(p) => Json::tag("Pred", predicate_json(p)),
    }
}

fn quant_json(q: &Quant) -> Json {
    Json::obj([
        (
            "bindings",
            Json::Arr(q.bindings.iter().map(binding_json).collect()),
        ),
        (
            "grouping",
            match &q.grouping {
                None => Json::Null,
                Some(g) => Json::obj([(
                    "keys",
                    Json::Arr(g.keys.iter().map(attr_ref_json).collect()),
                )]),
            },
        ),
        (
            "join",
            match &q.join {
                None => Json::Null,
                Some(j) => join_tree_json(j),
            },
        ),
        ("body", formula_json(&q.body)),
    ])
}

fn binding_json(b: &Binding) -> Json {
    let source = match &b.source {
        BindingSource::Named(n) => Json::tag("Named", Json::str(n.clone())),
        BindingSource::Collection(c) => Json::tag("Collection", collection_json(c)),
    };
    Json::obj([("var", Json::str(b.var.clone())), ("source", source)])
}

fn head_json(h: &Head) -> Json {
    Json::obj([
        ("relation", Json::str(h.relation.clone())),
        (
            "attrs",
            Json::Arr(h.attrs.iter().map(|a| Json::str(a.clone())).collect()),
        ),
    ])
}

/// Encode a collection as a [`Json`] document.
pub fn collection_json(c: &Collection) -> Json {
    Json::obj([
        ("head", head_json(&c.head)),
        ("body", formula_json(&c.body)),
    ])
}

/// Serialize a collection to pretty-printed JSON.
pub fn to_json(c: &Collection) -> String {
    format!("{:#}", collection_json(c))
}

/// Serialize a collection to compact JSON.
pub fn to_json_compact(c: &Collection) -> String {
    collection_json(c).to_string()
}

// ---------------------------------------------------------------------------
// AST decoding
// ---------------------------------------------------------------------------

fn dec_err(what: &str, got: &Json) -> JsonError {
    JsonError::decode(format!("expected {what}, got `{got}`"))
}

fn as_obj<'j>(j: &'j Json, what: &str) -> Result<&'j BTreeMap<String, Json>, JsonError> {
    match j {
        Json::Obj(m) => Ok(m),
        other => Err(dec_err(what, other)),
    }
}

fn as_arr<'j>(j: &'j Json, what: &str) -> Result<&'j [Json], JsonError> {
    match j {
        Json::Arr(items) => Ok(items),
        other => Err(dec_err(what, other)),
    }
}

fn as_str<'j>(j: &'j Json, what: &str) -> Result<&'j str, JsonError> {
    match j {
        Json::Str(s) => Ok(s),
        other => Err(dec_err(what, other)),
    }
}

fn as_bool(j: &Json, what: &str) -> Result<bool, JsonError> {
    match j {
        Json::Bool(b) => Ok(*b),
        other => Err(dec_err(what, other)),
    }
}

fn field<'j>(m: &'j BTreeMap<String, Json>, name: &str, what: &str) -> Result<&'j Json, JsonError> {
    m.get(name)
        .ok_or_else(|| JsonError::decode(format!("{what}: missing field `{name}`")))
}

fn single_tag<'j>(j: &'j Json, what: &str) -> Result<(&'j str, &'j Json), JsonError> {
    let m = as_obj(j, what)?;
    if m.len() != 1 {
        return Err(JsonError::decode(format!(
            "{what}: expected a single-key tagged object, got {} keys",
            m.len()
        )));
    }
    let (k, v) = m.iter().next().expect("len checked");
    Ok((k.as_str(), v))
}

fn value_from(j: &Json) -> Result<Value, JsonError> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Float(f) => Ok(Value::Float(*f)),
        Json::Obj(m) if m.len() == 1 && m.contains_key("float") => match &m["float"] {
            Json::Float(f) => Ok(Value::Float(*f)),
            Json::Int(i) => Ok(Value::Float(*i as f64)),
            Json::Str(s) => s
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| JsonError::decode(format!("invalid float literal `{s}`"))),
            other => Err(dec_err("float", other)),
        },
        other => Err(dec_err("value", other)),
    }
}

fn attr_ref_from(j: &Json) -> Result<AttrRef, JsonError> {
    let m = as_obj(j, "attr-ref")?;
    Ok(AttrRef {
        var: as_str(field(m, "var", "attr-ref")?, "attr-ref var")?.to_string(),
        attr: as_str(field(m, "attr", "attr-ref")?, "attr-ref attr")?.to_string(),
    })
}

fn scalar_from(j: &Json) -> Result<Scalar, JsonError> {
    let (tag, body) = single_tag(j, "scalar")?;
    match tag {
        "Attr" => Ok(Scalar::Attr(attr_ref_from(body)?)),
        "Const" => Ok(Scalar::Const(value_from(body)?)),
        "Agg" => Ok(Scalar::Agg(Box::new(agg_call_from(body)?))),
        "Arith" => {
            let m = as_obj(body, "arith")?;
            Ok(Scalar::Arith {
                op: arith_op_from(field(m, "op", "arith")?)?,
                left: Box::new(scalar_from(field(m, "left", "arith")?)?),
                right: Box::new(scalar_from(field(m, "right", "arith")?)?),
            })
        }
        other => Err(JsonError::decode(format!("unknown scalar tag `{other}`"))),
    }
}

fn agg_call_from(j: &Json) -> Result<AggCall, JsonError> {
    let m = as_obj(j, "agg-call")?;
    let func = match as_str(field(m, "func", "agg-call")?, "agg func")? {
        "Count" => AggFunc::Count,
        "Sum" => AggFunc::Sum,
        "Avg" => AggFunc::Avg,
        "Min" => AggFunc::Min,
        "Max" => AggFunc::Max,
        other => return Err(JsonError::decode(format!("unknown aggregate `{other}`"))),
    };
    let arg = match field(m, "arg", "agg-call")? {
        Json::Str(s) if s == "Star" => AggArg::Star,
        tagged => {
            let (tag, body) = single_tag(tagged, "agg arg")?;
            if tag != "Expr" {
                return Err(JsonError::decode(format!("unknown agg arg tag `{tag}`")));
            }
            AggArg::Expr(scalar_from(body)?)
        }
    };
    Ok(AggCall {
        func,
        arg,
        distinct: as_bool(field(m, "distinct", "agg-call")?, "distinct")?,
    })
}

fn cmp_op_from(j: &Json) -> Result<CmpOp, JsonError> {
    match as_str(j, "cmp op")? {
        "Eq" => Ok(CmpOp::Eq),
        "Ne" => Ok(CmpOp::Ne),
        "Lt" => Ok(CmpOp::Lt),
        "Le" => Ok(CmpOp::Le),
        "Gt" => Ok(CmpOp::Gt),
        "Ge" => Ok(CmpOp::Ge),
        other => Err(JsonError::decode(format!("unknown cmp op `{other}`"))),
    }
}

fn arith_op_from(j: &Json) -> Result<ArithOp, JsonError> {
    match as_str(j, "arith op")? {
        "Add" => Ok(ArithOp::Add),
        "Sub" => Ok(ArithOp::Sub),
        "Mul" => Ok(ArithOp::Mul),
        "Div" => Ok(ArithOp::Div),
        other => Err(JsonError::decode(format!("unknown arith op `{other}`"))),
    }
}

fn predicate_from(j: &Json) -> Result<Predicate, JsonError> {
    let (tag, body) = single_tag(j, "predicate")?;
    match tag {
        "Cmp" => {
            let m = as_obj(body, "cmp")?;
            Ok(Predicate::Cmp {
                left: scalar_from(field(m, "left", "cmp")?)?,
                op: cmp_op_from(field(m, "op", "cmp")?)?,
                right: scalar_from(field(m, "right", "cmp")?)?,
            })
        }
        "IsNull" => {
            let m = as_obj(body, "is-null")?;
            Ok(Predicate::IsNull {
                expr: scalar_from(field(m, "expr", "is-null")?)?,
                negated: as_bool(field(m, "negated", "is-null")?, "negated")?,
            })
        }
        other => Err(JsonError::decode(format!(
            "unknown predicate tag `{other}`"
        ))),
    }
}

fn join_tree_from(j: &Json) -> Result<JoinTree, JsonError> {
    let (tag, body) = single_tag(j, "join tree")?;
    match tag {
        "Var" => Ok(JoinTree::Var(as_str(body, "join var")?.to_string())),
        "Lit" => Ok(JoinTree::Lit(value_from(body)?)),
        "Inner" => Ok(JoinTree::Inner(
            as_arr(body, "inner children")?
                .iter()
                .map(join_tree_from)
                .collect::<Result<_, _>>()?,
        )),
        "Left" | "Full" => {
            let items = as_arr(body, "outer children")?;
            if items.len() != 2 {
                return Err(JsonError::decode(format!(
                    "outer join `{tag}` needs exactly 2 children, got {}",
                    items.len()
                )));
            }
            let l = Box::new(join_tree_from(&items[0])?);
            let r = Box::new(join_tree_from(&items[1])?);
            Ok(if tag == "Left" {
                JoinTree::Left(l, r)
            } else {
                JoinTree::Full(l, r)
            })
        }
        other => Err(JsonError::decode(format!("unknown join tag `{other}`"))),
    }
}

fn formula_from(j: &Json) -> Result<Formula, JsonError> {
    let (tag, body) = single_tag(j, "formula")?;
    match tag {
        "Quant" => Ok(Formula::Quant(Box::new(quant_from(body)?))),
        "And" => Ok(Formula::And(
            as_arr(body, "and")?
                .iter()
                .map(formula_from)
                .collect::<Result<_, _>>()?,
        )),
        "Or" => Ok(Formula::Or(
            as_arr(body, "or")?
                .iter()
                .map(formula_from)
                .collect::<Result<_, _>>()?,
        )),
        "Not" => Ok(Formula::Not(Box::new(formula_from(body)?))),
        "Pred" => Ok(Formula::Pred(predicate_from(body)?)),
        other => Err(JsonError::decode(format!("unknown formula tag `{other}`"))),
    }
}

fn quant_from(j: &Json) -> Result<Quant, JsonError> {
    let m = as_obj(j, "quant")?;
    let bindings = as_arr(field(m, "bindings", "quant")?, "bindings")?
        .iter()
        .map(binding_from)
        .collect::<Result<_, _>>()?;
    let grouping = match field(m, "grouping", "quant")? {
        Json::Null => None,
        g => {
            let gm = as_obj(g, "grouping")?;
            Some(Grouping {
                keys: as_arr(field(gm, "keys", "grouping")?, "keys")?
                    .iter()
                    .map(attr_ref_from)
                    .collect::<Result<_, _>>()?,
            })
        }
    };
    let join = match field(m, "join", "quant")? {
        Json::Null => None,
        j => Some(join_tree_from(j)?),
    };
    Ok(Quant {
        bindings,
        grouping,
        join,
        body: formula_from(field(m, "body", "quant")?)?,
    })
}

fn binding_from(j: &Json) -> Result<Binding, JsonError> {
    let m = as_obj(j, "binding")?;
    let (tag, body) = single_tag(field(m, "source", "binding")?, "binding source")?;
    let source = match tag {
        "Named" => BindingSource::Named(as_str(body, "relation name")?.to_string()),
        "Collection" => BindingSource::Collection(Box::new(collection_from(body)?)),
        other => {
            return Err(JsonError::decode(format!(
                "unknown binding source tag `{other}`"
            )))
        }
    };
    Ok(Binding {
        var: as_str(field(m, "var", "binding")?, "binding var")?.to_string(),
        source,
    })
}

fn head_from(j: &Json) -> Result<Head, JsonError> {
    let m = as_obj(j, "head")?;
    Ok(Head {
        relation: as_str(field(m, "relation", "head")?, "head relation")?.to_string(),
        attrs: as_arr(field(m, "attrs", "head")?, "head attrs")?
            .iter()
            .map(|a| Ok(as_str(a, "head attr")?.to_string()))
            .collect::<Result<_, JsonError>>()?,
    })
}

/// Decode a collection from a parsed [`Json`] document.
pub fn collection_from(j: &Json) -> Result<Collection, JsonError> {
    let m = as_obj(j, "collection")?;
    Ok(Collection {
        head: head_from(field(m, "head", "collection")?)?,
        body: formula_from(field(m, "body", "collection")?)?,
    })
}

/// Deserialize a collection from its JSON text.
pub fn from_json(s: &str) -> Result<Collection, JsonError> {
    collection_from(&parse(s)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    #[test]
    fn document_round_trips() {
        let doc = Json::obj([
            (
                "a",
                Json::Arr(vec![Json::Int(1), Json::Float(2.5), Json::Null]),
            ),
            ("b", Json::str("x \"quoted\"\n")),
            ("c", Json::Bool(true)),
            ("d", Json::Obj(BTreeMap::new())),
        ]);
        for text in [doc.to_string(), format!("{doc:#}")] {
            assert_eq!(parse(&text).unwrap(), doc, "failed on `{text}`");
        }
    }

    #[test]
    fn numbers_keep_their_kind() {
        assert_eq!(parse("3").unwrap(), Json::Int(3));
        assert_eq!(parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = parse("{\"a\": }").unwrap_err();
        assert!(err.offset.is_some());
        assert!(parse("[1, 2").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        // Adversarial input must yield JsonError, never a stack overflow.
        let bomb = "[".repeat(100_000);
        let err = parse(&bomb).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        // Depth just under the limit still parses.
        let deep = format!("{}1{}", "[".repeat(120), "]".repeat(120));
        assert!(parse(&deep).is_ok());
    }

    #[test]
    fn malformed_surrogate_pairs_error_instead_of_panicking() {
        // High surrogate followed by a non-low-surrogate escape must be a
        // parse error, not a u32 underflow.
        assert!(parse("\"\\ud800\\u0041\"").is_err());
        assert!(parse("\"\\ud800\"").is_err()); // lone high surrogate
        assert!(parse("\"\\ud800\\ud801\"").is_err()); // high + high
                                                       // A well-formed pair still decodes.
        assert_eq!(
            parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::Str("😀".to_string())
        );
    }

    #[test]
    fn huge_integral_floats_keep_their_kind() {
        // |f| >= 1e15 must still print with a fractional marker so the
        // Int/Float distinction survives the documented round-trip.
        let doc = Json::Float(1e15);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
        let doc = Json::Float(-1e300);
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }

    #[test]
    fn value_float_int_distinction_survives() {
        let c = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), Scalar::Const(Value::Float(1.0))),
                    le(col("r", "C"), int(1)),
                ]),
            ),
        );
        let back = from_json(&to_json(&c)).unwrap();
        // Structural equality distinguishes Int(1) from Float(1.0) fields
        // only through the tagged encoding; assert the exact AST matches.
        assert_eq!(c, back);
        let printed = to_json(&back);
        assert!(printed.contains("\"float\""));
    }

    #[test]
    fn all_ast_features_round_trip() {
        let inner = collection(
            "X",
            &["id", "ct"],
            quant(
                &[bind("r2", "R"), bind("s", "S")],
                group(&[("r2", "id")]),
                Some(jleft(jvar("r2"), jinner([jlit(Value::Int(11)), jvar("s")]))),
                and([
                    assign("X", "id", col("r2", "id")),
                    assign_agg("X", "ct", count_star()),
                    eq(col("r2", "id"), col("s", "id")),
                ]),
            ),
        );
        let q = collection(
            "Q",
            &["id"],
            exists(
                &[bind("r", "R"), bind_coll("x", inner)],
                and([
                    assign("Q", "id", col("r", "id")),
                    or([
                        eq(col("r", "id"), col("x", "id")),
                        not(is_null(col("x", "ct"))),
                    ]),
                    le(
                        mul(col("r", "q"), int(2)),
                        agg_distinct(AggFunc::Sum, col("x", "ct")),
                    ),
                ]),
            ),
        );
        let wire = to_json(&q);
        let back = from_json(&wire).unwrap();
        assert_eq!(q, back);
        // Compact and pretty forms decode identically.
        assert_eq!(from_json(&to_json_compact(&q)).unwrap(), back);
    }

    #[test]
    fn decode_rejects_malformed_trees() {
        assert!(from_json("{\"head\": {}}").is_err());
        assert!(from_json(
            "{\"head\": {\"relation\": \"Q\", \"attrs\": []}, \"body\": {\"Bogus\": 1}}"
        )
        .is_err());
    }
}
