//! # arc-core — Abstract Relational Calculus (ARC)
//!
//! An implementation of the Abstract Relational Query Language proposed in
//! *"Database Research needs an Abstract Relational Query Language"*
//! (Gatterbauer & Sabale, CIDR 2026).
//!
//! ARC is a **semantics-first reference metalanguage** for relational
//! queries: a strict generalization of Tuple Relational Calculus in a
//! collection framework. It separates a query into
//!
//! 1. a **relational core** — the compositional structure that determines
//!    intent ([`ast`], whose types are simultaneously the Abstract Language
//!    Tree of the paper);
//! 2. **modalities** — alternative, losslessly inter-translatable
//!    representations of that core ([`alt`] here; the comprehension syntax
//!    lives in `arc-parser`, the higraph diagrams in `arc-higraph`, SQL and
//!    Datalog renderings in `arc-sql`/`arc-datalog`);
//! 3. **conventions** — orthogonal environment-level semantic parameters
//!    ([`conventions`]): set vs. bag semantics, null logic, aggregate
//!    initialization on empty input.
//!
//! The [`binder`] performs the *linking step* (name resolution, scope
//! construction, predicate-role classification, validation), producing the
//! linked ALT — conceptually an Abstract Language Higraph. [`pattern`]
//! extracts canonical, convention-free *relational pattern* signatures, the
//! paper's unit of cross-language comparison.
//!
//! ## Quick example
//!
//! ```
//! use arc_core::dsl::*;
//! use arc_core::{alt, binder::Binder, pattern};
//!
//! // Paper Eq (1): {Q(A) | ∃r∈R, s∈S [Q.A = r.A ∧ r.B = s.B ∧ s.C = 0]}
//! let q = collection(
//!     "Q",
//!     &["A"],
//!     exists(
//!         &[bind("r", "R"), bind("s", "S")],
//!         and([
//!             assign("Q", "A", col("r", "A")),
//!             eq(col("r", "B"), col("s", "B")),
//!             eq(col("s", "C"), int(0)),
//!         ]),
//!     ),
//! );
//!
//! let info = Binder::new().bind_collection(&q);
//! assert!(info.is_valid());
//!
//! let tree = alt::render_collection(&q); // Fig 2a, textually
//! assert!(tree.contains("BINDING: r ∈ R"));
//!
//! let sig = pattern::signature(&q); // the relational pattern
//! assert_eq!(sig.features["rel:R"], 1);
//! ```

#![warn(missing_docs)]

pub mod alt;
pub mod ast;
pub mod binder;
pub mod column;
pub mod conventions;
pub mod dsl;
pub mod json;
pub mod pattern;
pub mod value;

pub use ast::{
    AggArg, AggCall, AggFunc, ArithOp, AttrRef, Binding, BindingSource, CmpOp, Collection,
    Definition, Formula, Grouping, Head, JoinTree, Predicate, Program, Quant, Scalar,
};
pub use binder::{BindError, Binder, BoundInfo, PredRole};
pub use conventions::{Conventions, EmptyAgg, NullLogic, Semantics};
pub use pattern::{signature, PatternSignature};
pub use value::{Truth, Value};
