//! **Relational patterns** (paper §1): "a language-agnostic description of
//! how data is transformed from input to output".
//!
//! A [`PatternSignature`] is a canonical, convention-free fingerprint of a
//! query's relational composition. Two queries have the same signature iff
//! they compose their inputs the same way — the paper's notion of
//! *pattern-preserving* representation. The signature deliberately ignores
//! everything §2.6/§2.7 classifies as a convention (set vs. bag, null
//! handling, empty-aggregate initialization), which a property test pins.
//!
//! The companion crate `arc-analysis` builds similarity metrics and
//! FIO/FOI classification on top of these signatures.

use crate::ast::*;
use std::collections::BTreeMap;
use std::fmt;

/// A canonical pattern fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSignature {
    /// Canonical S-expression of the pattern: variables α-renamed in
    /// pre-order, conjuncts/disjuncts sorted, constants abstracted to type
    /// tags. Equal strings ⇒ equal patterns (up to binding order for
    /// repeated same-source bindings).
    pub canon: String,
    /// Feature multiset: relation occurrences, scopes, groupings, aggregate
    /// roles, negations, correlations, join-annotation kinds, nesting.
    pub features: BTreeMap<String, usize>,
}

impl PatternSignature {
    /// Total feature mass (used for normalized similarity in analysis).
    pub fn mass(&self) -> usize {
        self.features.values().sum()
    }
}

impl fmt::Display for PatternSignature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.canon)?;
        for (k, v) in &self.features {
            writeln!(f, "  {k} × {v}")?;
        }
        Ok(())
    }
}

/// Compute the pattern signature of a collection.
pub fn signature(c: &Collection) -> PatternSignature {
    let c = c.normalized();
    let mut cx = Canon::default();
    let canon = cx.collection(&c);
    PatternSignature {
        canon,
        features: cx.features,
    }
}

/// Compute the pattern signature of a sentence (headless formula).
pub fn sentence_signature(f: &Formula) -> PatternSignature {
    let f = f.normalized();
    let mut cx = Canon::default();
    let canon = cx.formula(&f);
    PatternSignature {
        canon: format!("(sentence {canon})"),
        features: cx.features,
    }
}

/// Compute the pattern signature of a whole program: definitions are part
/// of the pattern (the paper's Fig 18/19 variant differs from Fig 17
/// exactly by its defined relation).
pub fn program_signature(p: &Program) -> PatternSignature {
    let mut cx = Canon::default();
    let mut parts: Vec<String> = Vec::new();
    for def in &p.definitions {
        let normalized = def.collection.normalized();
        let s = cx.collection(&normalized);
        parts.push(format!("(def {} {})", def.name(), s));
    }
    if let Some(q) = &p.query {
        let normalized = q.normalized();
        parts.push(cx.collection(&normalized));
    }
    PatternSignature {
        canon: format!("(program {})", parts.join(" ")),
        features: cx.features,
    }
}

#[derive(Default)]
struct Canon {
    features: BTreeMap<String, usize>,
    /// Visible variable renamings (stack of (original, canonical)).
    renames: Vec<(String, String)>,
    /// Head renamings (stack of (original, canonical)).
    heads: Vec<(String, String)>,
    var_counter: usize,
    head_counter: usize,
    depth: usize,
}

impl Canon {
    fn feat(&mut self, name: impl Into<String>) {
        *self.features.entry(name.into()).or_insert(0) += 1;
    }

    fn collection(&mut self, c: &Collection) -> String {
        self.feat("collection");
        let hname = format!("h{}", self.head_counter);
        self.head_counter += 1;
        self.heads.push((c.head.relation.clone(), hname.clone()));
        self.depth += 1;
        let body = self.formula(&c.body);
        self.depth -= 1;
        self.heads.pop();
        // Attribute names are part of the pattern interface; keep them but
        // in declaration order under the canonical head name.
        format!("(coll {hname}({}) {body})", c.head.attrs.join(","))
    }

    fn formula(&mut self, f: &Formula) -> String {
        match f {
            Formula::Quant(q) => self.quant(q),
            Formula::And(fs) => {
                let mut parts: Vec<String> = fs.iter().map(|s| self.formula(s)).collect();
                parts.sort();
                format!("(and {})", parts.join(" "))
            }
            Formula::Or(fs) => {
                self.feat("or");
                let mut parts: Vec<String> = fs.iter().map(|s| self.formula(s)).collect();
                parts.sort();
                format!("(or {})", parts.join(" "))
            }
            Formula::Not(inner) => {
                self.feat("neg");
                format!("(not {})", self.formula(inner))
            }
            Formula::Pred(p) => self.pred(p),
        }
    }

    fn quant(&mut self, q: &Quant) -> String {
        self.feat("scope");
        self.feat(format!("scope-depth:{}", self.depth));
        let base = self.renames.len();

        // Canonicalize binding order: stable-sort named bindings by source
        // relation; nested collections sort after named ones by head name.
        let mut order: Vec<usize> = (0..q.bindings.len()).collect();
        order.sort_by_key(|&i| match &q.bindings[i].source {
            BindingSource::Named(rel) => (0, rel.clone()),
            BindingSource::Collection(c) => (1, c.head.relation.clone()),
        });

        let mut bind_parts = Vec::with_capacity(q.bindings.len());
        for &i in &order {
            let b = &q.bindings[i];
            let canonical = format!("v{}", self.var_counter);
            self.var_counter += 1;
            let part = match &b.source {
                BindingSource::Named(rel) => {
                    self.feat(format!("rel:{rel}"));
                    format!("({canonical} {rel})")
                }
                BindingSource::Collection(c) => {
                    self.feat("nested-collection");
                    self.depth += 1;
                    let sub = self.collection(c);
                    self.depth -= 1;
                    format!("({canonical} {sub})")
                }
            };
            self.renames.push((b.var.clone(), canonical));
            bind_parts.push(part);
        }

        let grouping = match &q.grouping {
            None => String::new(),
            Some(g) if g.keys.is_empty() => {
                self.feat("group:0");
                " (group)".to_string()
            }
            Some(g) => {
                self.feat(format!("group:{}", g.keys.len()));
                let mut keys: Vec<String> = g.keys.iter().map(|k| self.attr(k)).collect();
                keys.sort();
                format!(" (group {})", keys.join(" "))
            }
        };

        let join = match &q.join {
            None => String::new(),
            Some(jt) => {
                self.join_features(jt);
                format!(" (join {})", self.join_tree(jt))
            }
        };

        let body = self.formula(&q.body);
        self.renames.truncate(base);
        format!("(exists ({}){grouping}{join} {body})", bind_parts.join(" "))
    }

    fn join_features(&mut self, jt: &JoinTree) {
        match jt {
            JoinTree::Var(_) | JoinTree::Lit(_) => {}
            JoinTree::Inner(children) => {
                for c in children {
                    self.join_features(c);
                }
            }
            JoinTree::Left(l, r) => {
                self.feat("join:left");
                self.join_features(l);
                self.join_features(r);
            }
            JoinTree::Full(l, r) => {
                self.feat("join:full");
                self.join_features(l);
                self.join_features(r);
            }
        }
    }

    fn join_tree(&mut self, jt: &JoinTree) -> String {
        match jt {
            JoinTree::Var(v) => self.rename(v),
            JoinTree::Lit(v) => format!("lit:{}", v.type_name()),
            JoinTree::Inner(children) => {
                let parts: Vec<String> = children.iter().map(|c| self.join_tree(c)).collect();
                format!("(inner {})", parts.join(" "))
            }
            JoinTree::Left(l, r) => {
                format!("(left {} {})", self.join_tree(l), self.join_tree(r))
            }
            JoinTree::Full(l, r) => {
                format!("(full {} {})", self.join_tree(l), self.join_tree(r))
            }
        }
    }

    fn rename(&self, var: &str) -> String {
        if let Some((_, canonical)) = self.renames.iter().rev().find(|(v, _)| v == var) {
            return canonical.clone();
        }
        if let Some((_, canonical)) = self.heads.iter().rev().find(|(h, _)| h == var) {
            return canonical.clone();
        }
        // Unbound (binder reports this); keep the name for debuggability.
        format!("?{var}")
    }

    fn attr(&mut self, a: &AttrRef) -> String {
        format!("{}.{}", self.rename(&a.var), a.attr)
    }

    fn pred(&mut self, p: &Predicate) -> String {
        match p {
            Predicate::Cmp { left, op, right } => {
                let l = self.scalar(left);
                let r = self.scalar(right);
                // Order-normalize symmetric operators; flip the rest so the
                // lexicographically smaller operand comes first.
                let (l, op, r) = match op {
                    CmpOp::Eq | CmpOp::Ne => {
                        if l <= r {
                            (l, *op, r)
                        } else {
                            (r, *op, l)
                        }
                    }
                    _ => {
                        if l <= r {
                            (l, *op, r)
                        } else {
                            (r, op.flipped(), l)
                        }
                    }
                };
                format!("(cmp {} {l} {r})", op.symbol())
            }
            Predicate::IsNull { expr, negated } => {
                let e = self.scalar(expr);
                if *negated {
                    format!("(is-not-null {e})")
                } else {
                    format!("(is-null {e})")
                }
            }
        }
    }

    fn scalar(&mut self, s: &Scalar) -> String {
        match s {
            Scalar::Attr(a) => self.attr(a),
            // Constants are abstracted to their type: the relational pattern
            // of `s.C = 0` and `s.C = 42` is the same selection shape.
            Scalar::Const(v) => format!("const:{}", v.type_name()),
            Scalar::Agg(call) => {
                let role = "agg"; // assignment/comparison role comes from context in analysis
                let d = if call.distinct { ":distinct" } else { "" };
                self.feat(format!("agg:{}{}", call.func.name(), d));
                match &call.arg {
                    AggArg::Expr(e) => {
                        let inner = self.scalar(e);
                        format!("({role} {}{d} {inner})", call.func.name())
                    }
                    AggArg::Star => format!("({role} {}{d} *)", call.func.name()),
                }
            }
            Scalar::Arith { op, left, right } => {
                self.feat(format!("arith:{}", op.symbol()));
                let l = self.scalar(left);
                let r = self.scalar(right);
                match op {
                    // Commutative: order-normalize.
                    ArithOp::Add | ArithOp::Mul => {
                        let (l, r) = if l <= r { (l, r) } else { (r, l) };
                        format!("({} {l} {r})", op.symbol())
                    }
                    _ => format!("({} {l} {r})", op.symbol()),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::*;

    fn eq1() -> Collection {
        collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(0)),
                ]),
            ),
        )
    }

    #[test]
    fn alpha_renaming_ignores_variable_names() {
        let a = eq1();
        let b = collection(
            "Out", // head name also canonicalized
            &["A"],
            exists(
                &[bind("x", "R"), bind("y", "S")],
                and([
                    assign("Out", "A", col("x", "A")),
                    eq(col("x", "B"), col("y", "B")),
                    eq(col("y", "C"), int(0)),
                ]),
            ),
        );
        assert_eq!(signature(&a).canon, signature(&b).canon);
    }

    #[test]
    fn conjunct_order_is_irrelevant() {
        let a = eq1();
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    eq(col("s", "C"), int(0)),
                    eq(col("r", "B"), col("s", "B")),
                    assign("Q", "A", col("r", "A")),
                ]),
            ),
        );
        assert_eq!(signature(&a).canon, signature(&b).canon);
    }

    #[test]
    fn constants_abstracted_to_types() {
        let a = eq1();
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(42)),
                ]),
            ),
        );
        assert_eq!(signature(&a).canon, signature(&b).canon);
    }

    #[test]
    fn binding_order_normalized_across_sources() {
        let a = eq1();
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("s", "S"), bind("r", "R")], // swapped
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), int(0)),
                ]),
            ),
        );
        assert_eq!(signature(&a).canon, signature(&b).canon);
    }

    #[test]
    fn relation_multiplicity_distinguishes_fig6_from_fig7() {
        // Fig 6 (one scope, R and S once) vs. Fig 7/Eq (10) (R,S thrice).
        let fig6_feats = {
            let q = collection(
                "X",
                &["dept", "av", "sm"],
                quant(
                    &[bind("r", "R"), bind("s", "S")],
                    group(&[("r", "dept")]),
                    None,
                    and([
                        eq(col("r", "empl"), col("s", "empl")),
                        assign("X", "dept", col("r", "dept")),
                        assign_agg("X", "av", avg(col("s", "sal"))),
                        assign_agg("X", "sm", sum(col("s", "sal"))),
                    ]),
                ),
            );
            signature(&q).features
        };
        assert_eq!(fig6_feats.get("rel:R"), Some(&1));
        assert_eq!(fig6_feats.get("rel:S"), Some(&1));
        assert_eq!(fig6_feats.get("agg:avg"), Some(&1));
        assert_eq!(fig6_feats.get("agg:sum"), Some(&1));
    }

    #[test]
    fn grouping_and_negation_appear_in_features() {
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    not(exists(
                        &[bind("s", "S")],
                        and([eq(col("s", "B"), col("r", "B"))]),
                    )),
                ]),
            ),
        );
        let sig = signature(&q);
        assert_eq!(sig.features.get("neg"), Some(&1));
        assert_eq!(sig.features.get("scope"), Some(&2));
    }

    #[test]
    fn flipped_comparisons_normalize() {
        let a = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([assign("Q", "A", col("r", "A")), lt(col("r", "B"), int(5))]),
            ),
        );
        let b = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([assign("Q", "A", col("r", "A")), gt(int(5), col("r", "B"))]),
            ),
        );
        assert_eq!(signature(&a).canon, signature(&b).canon);
    }

    #[test]
    fn sentence_and_program_signatures() {
        let s = exists(&[bind("r", "R")], and([eq(col("r", "A"), int(1))]));
        let sig = sentence_signature(&s);
        assert!(sig.canon.starts_with("(sentence"));

        let p = Program::query(eq1());
        let psig = program_signature(&p);
        assert!(psig.canon.starts_with("(program"));
    }

    #[test]
    fn different_patterns_differ() {
        // Fig 21: version 1 (nested test) vs version 2 (group-then-join).
        let v1 = collection(
            "Q",
            &["id"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "id", col("r", "id")),
                    quant(
                        &[bind("s", "S")],
                        group_all(),
                        None,
                        and([
                            eq(col("r", "id"), col("s", "id")),
                            eq(col("r", "q"), count(col("s", "d"))),
                        ]),
                    ),
                ]),
            ),
        );
        let x = collection(
            "X",
            &["id", "ct"],
            quant(
                &[bind("s", "S")],
                group(&[("s", "id")]),
                None,
                and([
                    assign("X", "id", col("s", "id")),
                    assign_agg("X", "ct", count(col("s", "d"))),
                ]),
            ),
        );
        let v2 = collection(
            "Q",
            &["id"],
            exists(
                &[bind("r", "R"), bind_coll("x", x)],
                and([
                    assign("Q", "id", col("r", "id")),
                    eq(col("r", "id"), col("x", "id")),
                    eq(col("r", "q"), col("x", "ct")),
                ]),
            ),
        );
        assert_ne!(signature(&v1).canon, signature(&v2).canon);
    }
}
