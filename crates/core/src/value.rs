//! Scalar values and three-valued logic.
//!
//! ARC treats the behaviour of `NULL` as a *convention* (paper §2.6, §2.10):
//! the calculus itself is agnostic, but the engine must be able to interpret
//! predicates under SQL's three-valued logic as well as under two-valued
//! logic (Soufflé has no nulls). [`Value`] is the dynamically-typed scalar
//! domain and [`Truth`] the three-valued logic lattice.

use crate::ast::CmpOp;
use std::cmp::Ordering;
use std::fmt;

/// A scalar value in the relational domain.
///
/// The domain is deliberately small: the paper's examples use integers,
/// floats (averages), strings (drinkers and beers), booleans (sentences) and
/// `NULL`. Mixed `Int`/`Float` comparisons coerce to `f64`.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL `NULL`: absence of a value. Comparisons involving `Null` yield
    /// [`Truth::Unknown`] under three-valued logic.
    Null,
    /// A boolean. Produced by boolean sentences (paper Fig 9).
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float. `avg` produces floats even over integer inputs.
    Float(f64),
    /// A string.
    Str(String),
}

impl Value {
    /// String value helper (avoids `Value::Str("x".to_string())` noise).
    pub fn str(s: impl Into<String>) -> Self {
        Value::Str(s.into())
    }

    /// True iff this is `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view (ints widen to `f64`); `None` for non-numerics.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for non-integers.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// A short type tag used in error messages and canonical keys.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
        }
    }

    /// Three-valued comparison. Returns `None` when either side is `NULL`
    /// (the caller maps that to [`Truth::Unknown`] or to `false` depending on
    /// the active [null convention](crate::conventions::NullLogic)), or when
    /// the two values are incomparable (e.g. string vs int), which SQL would
    /// reject at type-check time; we treat it as `None` as well.
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => None,
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Float(a), Float(b)) => a.partial_cmp(b),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)),
            _ => None,
        }
    }

    /// SQL equality under three-valued logic.
    pub fn eq3(&self, other: &Value) -> Truth {
        match self.compare(other) {
            Some(Ordering::Equal) => Truth::True,
            Some(_) => Truth::False,
            None => {
                if self.is_null() || other.is_null() {
                    Truth::Unknown
                } else {
                    Truth::False // incomparable types are simply not equal
                }
            }
        }
    }

    /// Grouping/deduplication key: a totally ordered, hashable canonical form.
    ///
    /// SQL's `GROUP BY` and `DISTINCT` treat `NULL`s as equal to each other,
    /// so the key view is *two-valued* by design, independent of the
    /// comparison convention.
    pub fn key(&self) -> Key {
        match self {
            Value::Null => Key::Null,
            Value::Bool(b) => Key::Bool(*b),
            Value::Int(i) => Key::Int(*i),
            Value::Float(f) => {
                // Normalize integral floats so that 1.0 groups with 1.
                if f.fract() == 0.0
                    && f.is_finite()
                    && *f >= i64::MIN as f64
                    && *f <= i64::MAX as f64
                {
                    Key::Int(*f as i64)
                } else if f.is_nan() {
                    Key::Float(f64::NAN.to_bits())
                } else {
                    Key::Float(f.to_bits())
                }
            }
            Value::Str(s) => Key::Str(s.clone()),
        }
    }

    /// This value's hash key for *equi-join* purposes, or `None` when the
    /// value can never satisfy an equality predicate (`NULL` compares as
    /// `Unknown`; a float `NaN` is incomparable even to itself), so
    /// indexing/probing/counting with it must produce no matches.
    ///
    /// This is the **one** place join-key semantics live: the engine's
    /// hash-join executor builds its indexes with it and the statistics
    /// subsystem (`arc-stats`) counts distinct keys with it, so the two
    /// can never disagree on what "equal" means. Unlike [`Value::key`]
    /// (grouping: NULLs group together, NaNs are self-equal), the join
    /// view excludes both.
    pub fn join_key(&self) -> Option<Key> {
        match self {
            Value::Null => None,
            Value::Float(f) if f.is_nan() => None,
            other => Some(other.key()),
        }
    }
}

/// Three-valued truth of `l op r`, *before* any null-convention collapse.
///
/// `NULL` on either side yields `Unknown`; incomparable (heterogeneous)
/// values answer only the equality family (`Eq` → `False`, `Ne` → `True`,
/// orderings → `Unknown`); `NaN` is incomparable even to itself. This is
/// the **one** place comparison semantics live: the engine's row-at-a-time
/// predicate evaluator delegates here and the columnar kernels in
/// [`crate::column`] replicate exactly this table in their typed loops
/// (checked against this function by their unit tests), so the two paths
/// can never disagree.
pub fn cmp_truth(l: &Value, op: CmpOp, r: &Value) -> Truth {
    if l.is_null() || r.is_null() {
        return Truth::Unknown;
    }
    match l.compare(r) {
        Some(ord) => Truth::from_bool(ord_satisfies(ord, op)),
        // Incomparable (heterogeneous) values: only equality-family
        // operators have a defined answer.
        None => match op {
            CmpOp::Eq => Truth::False,
            CmpOp::Ne => Truth::True,
            _ => Truth::Unknown,
        },
    }
}

/// Whether a concrete ordering satisfies `op` (the two-valued core of
/// [`cmp_truth`], shared with the columnar kernels' typed loops).
pub fn ord_satisfies(ord: Ordering, op: CmpOp) -> bool {
    match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key().hash(state);
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Canonical grouping key (total order + hash, NULL-tolerant).
///
/// `Ord` sorts `Null` first, then booleans, numbers, strings — the order is
/// arbitrary but total and stable, which is all grouping and deterministic
/// output ordering need.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum Key {
    Null,
    Bool(bool),
    Int(i64),
    Float(u64),
    Str(String),
}

/// Three-valued logic (Kleene), as used by SQL (paper §2.10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variants/fields are self-describing
pub enum Truth {
    True,
    False,
    Unknown,
}

impl Truth {
    /// Lift a two-valued bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Kleene conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Kleene disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Kleene negation.
    #[allow(clippy::should_implement_trait)] // deliberate: mirrors `.and`/`.or`
    pub fn not(self) -> Truth {
        use Truth::*;
        match self {
            True => False,
            False => True,
            Unknown => Unknown,
        }
    }

    /// SQL `WHERE`-clause acceptance: only `True` passes.
    pub fn is_true(self) -> bool {
        self == Truth::True
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_comparisons_are_unknown() {
        assert_eq!(Value::Null.eq3(&Value::Int(1)), Truth::Unknown);
        assert_eq!(Value::Int(1).eq3(&Value::Null), Truth::Unknown);
        assert_eq!(Value::Null.eq3(&Value::Null), Truth::Unknown);
    }

    #[test]
    fn mixed_numeric_comparisons_coerce() {
        assert_eq!(Value::Int(1).eq3(&Value::Float(1.0)), Truth::True);
        assert_eq!(
            Value::Int(2).compare(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_types_are_not_equal() {
        assert_eq!(Value::Int(1).eq3(&Value::str("1")), Truth::False);
    }

    #[test]
    fn keys_group_nulls_and_integral_floats() {
        assert_eq!(Value::Null.key(), Value::Null.key());
        assert_eq!(Value::Int(3).key(), Value::Float(3.0).key());
        assert_ne!(Value::Int(3).key(), Value::Float(3.5).key());
    }

    #[test]
    fn nan_keys_are_self_equal() {
        assert_eq!(Value::Float(f64::NAN).key(), Value::Float(f64::NAN).key());
    }

    #[test]
    fn kleene_tables() {
        use Truth::*;
        assert_eq!(Unknown.and(False), False);
        assert_eq!(Unknown.and(True), Unknown);
        assert_eq!(Unknown.or(True), True);
        assert_eq!(Unknown.or(False), Unknown);
        assert_eq!(Unknown.not(), Unknown);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("a").to_string(), "'a'");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Float(2.0).to_string(), "2.0");
    }

    #[test]
    fn value_equality_follows_keys() {
        assert_eq!(Value::Int(1), Value::Float(1.0));
        assert_eq!(Value::Null, Value::Null); // two-valued *key* equality
        assert_ne!(Value::Int(1), Value::str("1"));
    }
}
