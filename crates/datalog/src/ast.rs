//! AST for the Datalog/Soufflé subset.
//!
//! Covers the constructs the paper quotes: facts, rules, negated atoms,
//! comparisons, recursion (Eq (16)'s two-rule ancestor program), and
//! Soufflé-style aggregates — both the body form
//! `sm = sum b : {S(a,b), a < ak}` of Eq (15) and the head form
//! `Q(a, sum b : {R(a,b)})` of Eq (6). Schemas come from `.decl`
//! directives (Datalog is positional; the ARC lowering needs the named
//! perspective, §2.1 footnote 3).

use arc_core::ast::{AggFunc, CmpOp};
use arc_core::value::Value;

/// A Datalog program: declarations + rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DatalogProgram {
    /// Relation declarations (`.decl R(a: number, b: number)`).
    pub decls: Vec<Decl>,
    /// Rules and facts, in source order.
    pub rules: Vec<Rule>,
}

impl DatalogProgram {
    /// The declaration of a relation, if any.
    pub fn decl(&self, name: &str) -> Option<&Decl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Names of intensional relations (appearing in rule heads).
    pub fn idb_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.name) {
                out.push(r.head.name.clone());
            }
        }
        out
    }
}

/// A relation declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// Relation name.
    pub name: String,
    /// Attribute names, in positional order (types are parsed and dropped —
    /// the engine is dynamically typed).
    pub attrs: Vec<String>,
}

/// A rule `head :- body.` (facts have an empty body).
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// Body literals (conjunctive).
    pub body: Vec<Literal>,
}

/// An atom `R(t₁, …, tₖ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Relation name.
    pub name: String,
    /// Argument terms, positional.
    pub args: Vec<Term>,
}

/// A term.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable.
    Var(String),
    /// A constant.
    Const(Value),
    /// The anonymous variable `_`.
    Underscore,
    /// A Soufflé aggregate term `sum v : { body }` (head position, Eq (6)).
    Agg(AggTerm),
}

/// A Soufflé aggregate: function, aggregated variable, and the aggregate
/// body (its own scope: "you cannot export information from within the body
/// of an aggregate" — Soufflé docs, quoted in §2.5).
#[derive(Debug, Clone, PartialEq)]
pub struct AggTerm {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated variable (`None` for `count : {…}`).
    pub var: Option<String>,
    /// The aggregate body.
    pub body: Vec<Literal>,
}

/// A body literal.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    /// `R(…)` or `!R(…)`.
    Atom {
        /// The atom.
        atom: Atom,
        /// Negated (`!`).
        negated: bool,
    },
    /// `t₁ op t₂`.
    Cmp {
        /// Left term (variable or constant).
        left: Term,
        /// Operator.
        op: CmpOp,
        /// Right term.
        right: Term,
    },
    /// `v = sum b : { … }` — aggregate assignment (Eq (15)).
    AggAssign {
        /// The variable receiving the aggregate value.
        var: String,
        /// The aggregate.
        agg: AggTerm,
    },
}
