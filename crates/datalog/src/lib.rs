//! # arc-datalog — the Datalog/Soufflé modality of ARC
//!
//! A front-end for the Datalog dialect the paper quotes (Soufflé syntax,
//! §2.5/§2.6/§2.9): rules, negation, recursion, and Soufflé aggregates in
//! body (`sm = sum b : {S(a,b), a < ak}`, Eq (15)) and head
//! (`Q(a, sum b : {R(a,b)})`, Eq (6)) position.
//!
//! Lowering makes the paper's observations mechanical:
//!
//! * positional atoms become named-perspective bindings with explicit
//!   assignment predicates (§2.1);
//! * multiple rules per head become one definition with a disjunctive body
//!   (§2.9, Eq (16));
//! * Soufflé aggregates become the **FOI pattern** — one correlated `γ∅`
//!   scope per aggregate (§2.5, Fig 5);
//! * Soufflé conventions are [`Conventions::souffle`]: set semantics,
//!   `sum ∅ = 0`, two-valued logic (§2.6).
//!
//! ```
//! use arc_datalog::{parse_datalog, lower_program};
//!
//! // Paper Eq (16): ancestor.
//! let program = parse_datalog(
//!     ".decl P(s: number, t: number)\n\
//!      .decl A(s: number, t: number)\n\
//!      A(x, y) :- P(x, y).\n\
//!      A(x, y) :- P(x, z), A(z, y).\n",
//! ).unwrap();
//! let arc = lower_program(&program).unwrap();
//! assert_eq!(arc.definitions.len(), 1); // two rules, ONE definition (∨)
//! ```
//!
//! [`Conventions::souffle`]: arc_core::conventions::Conventions::souffle

#![warn(missing_docs)]

pub mod ast;
pub mod lower;
pub mod parser;
pub mod render;

pub use ast::{AggTerm, Atom, DatalogProgram, Decl, Literal, Rule, Term};
pub use lower::{lower_program, DatalogLowerError};
pub use parser::{parse_datalog, DatalogParseError};
pub use render::{render_collection, render_program, DatalogRenderError};

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::conventions::Conventions;
    use arc_core::value::Value;
    use arc_engine::{Catalog, Engine, Relation};

    fn ints(name: &str, schema: &[&str], rows: &[&[i64]]) -> Relation {
        Relation::from_ints(name, schema, rows)
    }

    #[test]
    fn eq16_ancestor_evaluates_via_fixpoint() {
        let program = parse_datalog(
            ".decl P(s: number, t: number)\n\
             .decl A(s: number, t: number)\n\
             A(x, y) :- P(x, y).\n\
             A(x, y) :- P(x, z), A(z, y).\n",
        )
        .unwrap();
        let arc = lower_program(&program).unwrap();
        let catalog = Catalog::new().with(ints("P", &["s", "t"], &[&[1, 2], &[2, 3], &[3, 4]]));
        let out = Engine::new(&catalog, Conventions::souffle())
            .eval_program(&arc)
            .unwrap();
        assert_eq!(out.defined["A"].len(), 6);
    }

    #[test]
    fn eq15_sum_over_empty_is_zero_under_souffle() {
        // Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.
        // On R = {(1,2)}, S = ∅: Soufflé derives Q(1, 0).
        let program = parse_datalog(
            ".decl R(a: number, b: number)\n\
             .decl S(a: number, b: number)\n\
             .decl Q(ak: number, sm: number)\n\
             Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.\n",
        )
        .unwrap();
        let arc = lower_program(&program).unwrap();
        let catalog = Catalog::new()
            .with(ints("R", &["a", "b"], &[&[1, 2]]))
            .with(ints("S", &["a", "b"], &[]));
        let out = Engine::new(&catalog, Conventions::souffle())
            .eval_program(&arc)
            .unwrap();
        let q = &out.defined["Q"];
        assert_eq!(q.len(), 1);
        assert_eq!(q.rows[0], vec![Value::Int(1), Value::Int(0)]);

        // The same pattern under SQL conventions yields (1, NULL) —
        // the paper's §2.6 "conventions, not languages" point.
        let sql_out = Engine::new(
            &catalog,
            Conventions::sql().with_semantics(arc_core::conventions::Semantics::Set),
        )
        .eval_program(&arc)
        .unwrap();
        assert_eq!(sql_out.defined["Q"].rows[0][1], Value::Null);
    }

    #[test]
    fn eq6_head_aggregate_foi() {
        // Q(a, sum b : {R(a, b)}) :- R(a, _).
        let program = parse_datalog(
            ".decl R(a: number, b: number)\n\
             .decl Q(a: number, s: number)\n\
             Q(a, sum b : {R(a, b)}) :- R(a, _).\n",
        )
        .unwrap();
        let arc = lower_program(&program).unwrap();
        let catalog = Catalog::new().with(ints("R", &["a", "b"], &[&[1, 10], &[1, 20], &[2, 5]]));
        let out = Engine::new(&catalog, Conventions::souffle())
            .eval_program(&arc)
            .unwrap();
        let q = &out.defined["Q"];
        assert_eq!(
            q.sorted_rows(),
            vec![
                vec![Value::Int(1), Value::Int(30)],
                vec![Value::Int(2), Value::Int(5)],
            ]
        );
    }

    #[test]
    fn negation_lowers_and_runs() {
        let program = parse_datalog(
            ".decl R(x: number)\n\
             .decl S(x: number)\n\
             .decl Q(x: number)\n\
             Q(x) :- R(x), !S(x).\n",
        )
        .unwrap();
        let arc = lower_program(&program).unwrap();
        let catalog = Catalog::new()
            .with(ints("R", &["x"], &[&[1], &[2]]))
            .with(ints("S", &["x"], &[&[1]]));
        let out = Engine::new(&catalog, Conventions::souffle())
            .eval_program(&arc)
            .unwrap();
        assert_eq!(out.defined["Q"].sorted_rows(), vec![vec![Value::Int(2)]]);
    }

    #[test]
    fn facts_become_constant_disjuncts() {
        let program = parse_datalog(
            ".decl R(x: number)\n\
             R(1).\n\
             R(2).\n",
        )
        .unwrap();
        let arc = lower_program(&program).unwrap();
        let catalog = Catalog::new();
        let out = Engine::new(&catalog, Conventions::souffle())
            .eval_program(&arc)
            .unwrap();
        assert_eq!(out.defined["R"].len(), 2);
    }

    #[test]
    fn foi_signature_differs_from_fio() {
        // The lowered Soufflé aggregate must carry the FOI pattern: a
        // nested collection + γ∅ + correlation — NOT the FIO single-scope
        // pattern of Eq (3).
        let program = parse_datalog(
            ".decl R(a: number, b: number)\n\
             .decl Q(a: number, s: number)\n\
             Q(a, sum b : {R(a, b)}) :- R(a, _).\n",
        )
        .unwrap();
        let arc = lower_program(&program).unwrap();
        let sig = arc_core::pattern::signature(&arc.definitions[0].collection);
        assert_eq!(sig.features.get("nested-collection"), Some(&1));
        assert_eq!(sig.features.get("group:0"), Some(&1));
        assert_eq!(
            sig.features.get("rel:R"),
            Some(&2),
            "two logical copies of R"
        );
    }

    #[test]
    fn round_trip_conjunctive_rule() {
        let src = ".decl R(a: number, b: number)\n\
                   .decl S(b: number, c: number)\n\
                   .decl Q(a: number)\n\
                   Q(x) :- R(x, y), S(y, z), z > 0.\n";
        let program = parse_datalog(src).unwrap();
        let arc = lower_program(&program).unwrap();
        let mut schemas = arc_core::binder::SchemaMap::new();
        schemas.insert("R".into(), vec!["a".into(), "b".into()]);
        schemas.insert("S".into(), vec!["b".into(), "c".into()]);
        let rendered = render_program(&arc, &schemas).unwrap();
        // The rendered text reparses and lowers to the same pattern.
        let reparsed =
            parse_datalog(&rendered).unwrap_or_else(|e| panic!("reparse failed: {e}\n{rendered}"));
        let arc2 = lower_program(&reparsed).unwrap();
        let s1 = arc_core::pattern::program_signature(&arc);
        let s2 = arc_core::pattern::program_signature(&arc2);
        assert_eq!(s1.canon, s2.canon, "rendered:\n{rendered}");
    }

    #[test]
    fn unbound_head_variable_rejected() {
        let program = parse_datalog(
            ".decl R(x: number)\n\
             .decl Q(x: number, y: number)\n\
             Q(x, y) :- R(x).\n",
        )
        .unwrap();
        let err = lower_program(&program).unwrap_err();
        assert!(matches!(err, DatalogLowerError::UnboundVariable(v) if v == "y"));
    }

    #[test]
    fn fio_collection_rejected_by_renderer() {
        use arc_core::dsl::*;
        let fio = collection(
            "Q",
            &["A", "sm"],
            quant(
                &[bind("r", "R")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "sm", sum(col("r", "B"))),
                ]),
            ),
        );
        let err = render_collection(&fio).unwrap_err();
        assert!(matches!(err, DatalogRenderError::Unsupported(_)));
    }
}
