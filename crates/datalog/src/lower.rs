//! Datalog → ARC lowering.
//!
//! Datalog's positional, domain-style atoms become ARC's named-perspective
//! bindings (§2.1: the implicit `{(x) | R(x)}` binding becomes an explicit
//! assignment predicate). Multiple rules with one head become a disjunction
//! within a single definition (§2.9), and Soufflé aggregates become the
//! **FOI pattern** the paper identifies (§2.5): a correlated nested
//! collection with `γ∅`, one scope per aggregate.

use crate::ast::*;
use arc_core::ast::{
    self as arc, AttrRef, Binding, CmpOp, Formula, Grouping, Head, Predicate, Quant, Scalar,
};
use std::collections::HashMap;
use std::fmt;

/// Lowering error.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum DatalogLowerError {
    /// An atom references a relation with no `.decl` (and no derivable arity).
    MissingDecl(String),
    /// Atom arity does not match its declaration.
    ArityMismatch {
        relation: String,
        expected: usize,
        found: usize,
    },
    /// A head or comparison variable is never bound by a positive atom.
    UnboundVariable(String),
    /// Constructs outside the subset.
    Unsupported(String),
}

impl fmt::Display for DatalogLowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogLowerError::MissingDecl(r) => write!(f, "missing .decl for `{r}`"),
            DatalogLowerError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "`{relation}` declared with {expected} attributes, used with {found}"
            ),
            DatalogLowerError::UnboundVariable(v) => {
                write!(f, "variable `{v}` is not bound by a positive atom")
            }
            DatalogLowerError::Unsupported(m) => write!(f, "unsupported Datalog: {m}"),
        }
    }
}

impl std::error::Error for DatalogLowerError {}

/// Lower a Datalog program to an ARC [`Program`](arc::Program): one
/// definition per IDB relation (rules merged by disjunction), facts
/// included as constant disjuncts.
pub fn lower_program(p: &DatalogProgram) -> Result<arc::Program, DatalogLowerError> {
    let mut lw = Lowerer {
        program: p,
        counter: 0,
    };
    let mut by_head: Vec<(String, Vec<Formula>)> = Vec::new();
    for rule in &p.rules {
        let disjunct = lw.rule(rule)?;
        match by_head.iter_mut().find(|(n, _)| n == &rule.head.name) {
            Some((_, ds)) => ds.push(disjunct),
            None => by_head.push((rule.head.name.clone(), vec![disjunct])),
        }
    }
    let mut out = arc::Program::default();
    for (name, mut disjuncts) in by_head {
        let attrs = lw.attrs_of(
            &name,
            p.rules
                .iter()
                .find(|r| r.head.name == name)
                .map(|r| r.head.args.len())
                .unwrap_or(0),
        )?;
        let body = if disjuncts.len() == 1 {
            disjuncts.pop().expect("len 1")
        } else {
            Formula::Or(disjuncts)
        };
        out.definitions.push(arc::Definition {
            collection: arc::Collection {
                head: Head {
                    relation: name,
                    attrs,
                },
                body,
            },
        });
    }
    Ok(out)
}

struct Lowerer<'p> {
    program: &'p DatalogProgram,
    counter: usize,
}

/// Per-rule lowering state: the variable → representative-scalar map and
/// the accumulated conjuncts/bindings.
struct RuleCtx {
    var_map: HashMap<String, AttrRef>,
    bindings: Vec<Binding>,
    conjuncts: Vec<Formula>,
}

impl<'p> Lowerer<'p> {
    fn fresh(&mut self, prefix: &str) -> String {
        self.counter += 1;
        format!("{prefix}{}", self.counter)
    }

    fn attrs_of(&self, name: &str, arity: usize) -> Result<Vec<String>, DatalogLowerError> {
        if let Some(d) = self.program.decl(name) {
            return Ok(d.attrs.clone());
        }
        if arity == 0 {
            return Err(DatalogLowerError::MissingDecl(name.to_string()));
        }
        // Lenient default: positional attribute names.
        Ok((1..=arity).map(|i| format!("x{i}")).collect())
    }

    fn rule(&mut self, rule: &Rule) -> Result<Formula, DatalogLowerError> {
        let mut cx = RuleCtx {
            var_map: HashMap::new(),
            bindings: Vec::new(),
            conjuncts: Vec::new(),
        };

        // Positive atoms first: they ground the variables.
        for lit in &rule.body {
            if let Literal::Atom {
                atom,
                negated: false,
            } = lit
            {
                self.positive_atom(atom, &mut cx)?;
            }
        }
        // Then everything else, in source order.
        for lit in &rule.body {
            match lit {
                Literal::Atom { negated: false, .. } => {}
                Literal::Atom {
                    atom,
                    negated: true,
                } => {
                    let f = self.negated_atom(atom, &cx)?;
                    cx.conjuncts.push(f);
                }
                Literal::Cmp { left, op, right } => {
                    let l = self.term_scalar(left, &cx)?;
                    let r = self.term_scalar(right, &cx)?;
                    cx.conjuncts.push(Formula::Pred(Predicate::Cmp {
                        left: l,
                        op: *op,
                        right: r,
                    }));
                }
                Literal::AggAssign { var, agg } => {
                    let rep = self.aggregate(agg, &mut cx)?;
                    cx.var_map.insert(var.clone(), rep);
                }
            }
        }

        // Head assignments.
        let head_attrs = self.attrs_of(&rule.head.name, rule.head.args.len())?;
        if head_attrs.len() != rule.head.args.len() {
            return Err(DatalogLowerError::ArityMismatch {
                relation: rule.head.name.clone(),
                expected: head_attrs.len(),
                found: rule.head.args.len(),
            });
        }
        for (i, term) in rule.head.args.iter().enumerate() {
            let target = Scalar::Attr(AttrRef::new(rule.head.name.clone(), head_attrs[i].clone()));
            let value: Scalar = match term {
                Term::Var(v) => Scalar::Attr(
                    cx.var_map
                        .get(v)
                        .cloned()
                        .ok_or_else(|| DatalogLowerError::UnboundVariable(v.clone()))?,
                ),
                Term::Const(c) => Scalar::Const(c.clone()),
                Term::Underscore => {
                    return Err(DatalogLowerError::Unsupported(
                        "`_` in rule head".to_string(),
                    ))
                }
                Term::Agg(agg) => {
                    // Eq (6): head aggregate = FOI nested scope + assignment.
                    let rep = self.aggregate(agg, &mut cx)?;
                    Scalar::Attr(rep)
                }
            };
            cx.conjuncts.push(Formula::Pred(Predicate::Cmp {
                left: target,
                op: CmpOp::Eq,
                right: value,
            }));
        }

        if cx.bindings.is_empty() {
            Ok(Formula::And(cx.conjuncts))
        } else {
            Ok(Formula::Quant(Box::new(Quant {
                bindings: cx.bindings,
                grouping: None,
                join: None,
                body: Formula::And(cx.conjuncts),
            })))
        }
    }

    fn positive_atom(&mut self, atom: &Atom, cx: &mut RuleCtx) -> Result<(), DatalogLowerError> {
        let attrs = self.attrs_of(&atom.name, atom.args.len())?;
        if attrs.len() != atom.args.len() {
            return Err(DatalogLowerError::ArityMismatch {
                relation: atom.name.clone(),
                expected: attrs.len(),
                found: atom.args.len(),
            });
        }
        let var = self.fresh("r");
        cx.bindings
            .push(Binding::named(var.clone(), atom.name.clone()));
        for (i, term) in atom.args.iter().enumerate() {
            let here = AttrRef::new(var.clone(), attrs[i].clone());
            match term {
                Term::Var(v) => match cx.var_map.get(v) {
                    Some(rep) => cx.conjuncts.push(Formula::Pred(Predicate::Cmp {
                        left: Scalar::Attr(here),
                        op: CmpOp::Eq,
                        right: Scalar::Attr(rep.clone()),
                    })),
                    None => {
                        cx.var_map.insert(v.clone(), here);
                    }
                },
                Term::Const(c) => cx.conjuncts.push(Formula::Pred(Predicate::Cmp {
                    left: Scalar::Attr(here),
                    op: CmpOp::Eq,
                    right: Scalar::Const(c.clone()),
                })),
                Term::Underscore => {}
                Term::Agg(_) => {
                    return Err(DatalogLowerError::Unsupported(
                        "aggregate term inside a body atom".to_string(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn negated_atom(&mut self, atom: &Atom, cx: &RuleCtx) -> Result<Formula, DatalogLowerError> {
        let attrs = self.attrs_of(&atom.name, atom.args.len())?;
        if attrs.len() != atom.args.len() {
            return Err(DatalogLowerError::ArityMismatch {
                relation: atom.name.clone(),
                expected: attrs.len(),
                found: atom.args.len(),
            });
        }
        let var = self.fresh("n");
        let mut preds = Vec::new();
        for (i, term) in atom.args.iter().enumerate() {
            let here = AttrRef::new(var.clone(), attrs[i].clone());
            match term {
                Term::Var(v) => {
                    // Safety: vars in a negated atom must be grounded
                    // positively; ungrounded ones act as projections.
                    if let Some(rep) = cx.var_map.get(v) {
                        preds.push(Formula::Pred(Predicate::Cmp {
                            left: Scalar::Attr(here),
                            op: CmpOp::Eq,
                            right: Scalar::Attr(rep.clone()),
                        }));
                    }
                }
                Term::Const(c) => preds.push(Formula::Pred(Predicate::Cmp {
                    left: Scalar::Attr(here),
                    op: CmpOp::Eq,
                    right: Scalar::Const(c.clone()),
                })),
                Term::Underscore => {}
                Term::Agg(_) => {
                    return Err(DatalogLowerError::Unsupported(
                        "aggregate term inside a negated atom".to_string(),
                    ))
                }
            }
        }
        Ok(Formula::Not(Box::new(Formula::Quant(Box::new(Quant {
            bindings: vec![Binding::named(var, atom.name.clone())],
            grouping: None,
            join: None,
            body: Formula::And(preds),
        })))))
    }

    /// Lower an aggregate term into the FOI pattern: a correlated nested
    /// collection with `γ∅` whose single attribute carries the aggregate.
    /// Returns the attribute reference the aggregate value is available at.
    fn aggregate(&mut self, agg: &AggTerm, cx: &mut RuleCtx) -> Result<AttrRef, DatalogLowerError> {
        let coll_name = self.fresh("X");
        let out_var = self.fresh("x");

        // The aggregate body is its own scope; shared variables correlate
        // to the outer rule ("you cannot export information from within the
        // body of an aggregate").
        let mut inner = RuleCtx {
            var_map: HashMap::new(),
            bindings: Vec::new(),
            conjuncts: Vec::new(),
        };
        for lit in &agg.body {
            if let Literal::Atom {
                atom,
                negated: false,
            } = lit
            {
                self.positive_atom(atom, &mut inner)?;
            }
        }
        // Correlations: inner variables that the outer rule also grounds
        // equate to their outer representatives (the FOI "per-outer-tuple"
        // linkage).
        let mut correlated: Vec<(AttrRef, AttrRef)> = inner
            .var_map
            .iter()
            .filter_map(|(v, here)| cx.var_map.get(v).map(|outer| (here.clone(), outer.clone())))
            .collect();
        correlated.sort(); // deterministic output order
        for (here, outer) in &correlated {
            inner.conjuncts.push(Formula::Pred(Predicate::Cmp {
                left: Scalar::Attr(here.clone()),
                op: CmpOp::Eq,
                right: Scalar::Attr(outer.clone()),
            }));
        }
        for lit in &agg.body {
            match lit {
                Literal::Atom { negated: false, .. } => {}
                Literal::Atom {
                    atom,
                    negated: true,
                } => {
                    // Resolve against inner first, then outer.
                    let merged = merge_ctx(&inner, cx);
                    let f = self.negated_atom(atom, &merged)?;
                    inner.conjuncts.push(f);
                }
                Literal::Cmp { left, op, right } => {
                    let merged = merge_ctx(&inner, cx);
                    let l = self.term_scalar(left, &merged)?;
                    let r = self.term_scalar(right, &merged)?;
                    inner.conjuncts.push(Formula::Pred(Predicate::Cmp {
                        left: l,
                        op: *op,
                        right: r,
                    }));
                }
                Literal::AggAssign { .. } => {
                    return Err(DatalogLowerError::Unsupported(
                        "nested aggregate assignment".to_string(),
                    ))
                }
            }
        }

        let agg_arg = match &agg.var {
            Some(v) => {
                let rep = inner
                    .var_map
                    .get(v)
                    .cloned()
                    .ok_or_else(|| DatalogLowerError::UnboundVariable(v.clone()))?;
                arc::AggArg::Expr(Scalar::Attr(rep))
            }
            None => arc::AggArg::Star,
        };
        inner.conjuncts.push(Formula::Pred(Predicate::Cmp {
            left: Scalar::Attr(AttrRef::new(coll_name.clone(), "v")),
            op: CmpOp::Eq,
            right: Scalar::Agg(Box::new(arc::AggCall {
                func: agg.func,
                arg: agg_arg,
                distinct: false,
            })),
        }));

        let nested = arc::Collection {
            head: Head {
                relation: coll_name,
                attrs: vec!["v".to_string()],
            },
            body: Formula::Quant(Box::new(Quant {
                bindings: inner.bindings,
                grouping: Some(Grouping::empty()),
                join: None,
                body: Formula::And(inner.conjuncts),
            })),
        };
        cx.bindings.push(Binding::nested(out_var.clone(), nested));
        Ok(AttrRef::new(out_var, "v"))
    }

    fn term_scalar(&self, term: &Term, cx: &RuleCtx) -> Result<Scalar, DatalogLowerError> {
        match term {
            Term::Var(v) => cx
                .var_map
                .get(v)
                .map(|r| Scalar::Attr(r.clone()))
                .ok_or_else(|| DatalogLowerError::UnboundVariable(v.clone())),
            Term::Const(c) => Ok(Scalar::Const(c.clone())),
            Term::Underscore => Err(DatalogLowerError::Unsupported(
                "`_` in comparison".to_string(),
            )),
            Term::Agg(_) => Err(DatalogLowerError::Unsupported(
                "aggregate in comparison (assign it to a variable first)".to_string(),
            )),
        }
    }
}

/// A view merging inner and outer variable maps (inner shadows outer).
fn merge_ctx(inner: &RuleCtx, outer: &RuleCtx) -> RuleCtx {
    let mut var_map = outer.var_map.clone();
    for (k, v) in &inner.var_map {
        var_map.insert(k.clone(), v.clone());
    }
    RuleCtx {
        var_map,
        bindings: Vec::new(),
        conjuncts: Vec::new(),
    }
}
