//! Parser for the Datalog/Soufflé subset.

use crate::ast::*;
use arc_core::ast::{AggFunc, CmpOp};
use arc_core::value::Value;
use std::fmt;

/// Parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DatalogParseError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset.
    pub offset: usize,
}

impl fmt::Display for DatalogParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Datalog parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for DatalogParseError {}

/// Parse a Datalog program.
pub fn parse_datalog(src: &str) -> Result<DatalogProgram, DatalogParseError> {
    let mut p = P {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut program = DatalogProgram::default();
    loop {
        p.ws();
        if p.at_eof() {
            break;
        }
        if p.eat_str(".decl") {
            program.decls.push(p.decl()?);
        } else if p.eat_str(".output") || p.eat_str(".input") {
            // Directives accepted and ignored (I/O is the catalog's job).
            p.ws();
            p.ident()?;
            p.ws();
            // Optional trailing annotations up to end of line.
            while !p.at_eof() && p.peek() != Some(b'\n') {
                p.pos += 1;
            }
        } else {
            program.rules.push(p.rule()?);
        }
    }
    Ok(program)
}

struct P<'s> {
    src: &'s [u8],
    pos: usize,
}

impl<'s> P<'s> {
    fn at_eof(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn err(&self, message: impl Into<String>) -> DatalogParseError {
        DatalogParseError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(c) if c.is_ascii_whitespace()) {
                self.pos += 1;
            }
            // `//` comments.
            if self.src[self.pos..].starts_with(b"//") {
                while !self.at_eof() && self.peek() != Some(b'\n') {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn eat_str(&mut self, s: &str) -> bool {
        self.ws();
        if self.src[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), DatalogParseError> {
        if self.eat_str(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<String, DatalogParseError> {
        self.ws();
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.err("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.src[start..self.pos]).to_string())
    }

    fn decl(&mut self) -> Result<Decl, DatalogParseError> {
        let name = self.ident()?;
        self.expect("(")?;
        let mut attrs = Vec::new();
        loop {
            let attr = self.ident()?;
            // `: type` is parsed and discarded.
            if self.eat_str(":") {
                self.ident()?;
            }
            attrs.push(attr);
            if !self.eat_str(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(Decl { name, attrs })
    }

    fn rule(&mut self) -> Result<Rule, DatalogParseError> {
        let head = self.atom()?;
        let body = if self.eat_str(":-") {
            self.literals()?
        } else {
            Vec::new()
        };
        self.expect(".")?;
        Ok(Rule { head, body })
    }

    fn literals(&mut self) -> Result<Vec<Literal>, DatalogParseError> {
        let mut out = Vec::new();
        loop {
            out.push(self.literal()?);
            if !self.eat_str(",") {
                break;
            }
        }
        Ok(out)
    }

    fn literal(&mut self) -> Result<Literal, DatalogParseError> {
        self.ws();
        if self.eat_str("!") {
            let atom = self.atom()?;
            return Ok(Literal::Atom {
                atom,
                negated: true,
            });
        }
        // Try: aggregate assignment `v = func [x] : { … }`.
        let saved = self.pos;
        if let Ok(var) = self.ident() {
            if self.eat_str("=") {
                if let Some(agg) = self.try_agg_term()? {
                    return Ok(Literal::AggAssign { var, agg });
                }
                // `v = term` equality comparison.
                let right = self.simple_term()?;
                return Ok(Literal::Cmp {
                    left: Term::Var(var),
                    op: CmpOp::Eq,
                    right,
                });
            }
            self.pos = saved;
        } else {
            self.pos = saved;
        }
        // Atom or comparison.
        let saved = self.pos;
        if self.ident().is_ok() {
            self.ws();
            if self.peek() == Some(b'(') {
                self.pos = saved;
                let atom = self.atom()?;
                return Ok(Literal::Atom {
                    atom,
                    negated: false,
                });
            }
            self.pos = saved;
        } else {
            self.pos = saved;
        }
        let left = self.simple_term()?;
        let op = self.cmp_op()?;
        let right = self.simple_term()?;
        Ok(Literal::Cmp { left, op, right })
    }

    fn cmp_op(&mut self) -> Result<CmpOp, DatalogParseError> {
        self.ws();
        for (text, op) in [
            ("<=", CmpOp::Le),
            (">=", CmpOp::Ge),
            ("!=", CmpOp::Ne),
            ("=", CmpOp::Eq),
            ("<", CmpOp::Lt),
            (">", CmpOp::Gt),
        ] {
            if self.eat_str(text) {
                return Ok(op);
            }
        }
        Err(self.err("expected comparison operator"))
    }

    fn atom(&mut self) -> Result<Atom, DatalogParseError> {
        let name = self.ident()?;
        self.expect("(")?;
        let mut args = Vec::new();
        loop {
            args.push(self.term()?);
            if !self.eat_str(",") {
                break;
            }
        }
        self.expect(")")?;
        Ok(Atom { name, args })
    }

    fn term(&mut self) -> Result<Term, DatalogParseError> {
        self.ws();
        if self.eat_str("_") {
            return Ok(Term::Underscore);
        }
        if let Some(agg) = self.try_agg_term()? {
            return Ok(Term::Agg(agg));
        }
        self.simple_term()
    }

    /// `sum v : { … }` / `count : { … }` — returns `None` when the input is
    /// not an aggregate term.
    fn try_agg_term(&mut self) -> Result<Option<AggTerm>, DatalogParseError> {
        let saved = self.pos;
        self.ws();
        let start = self.pos;
        let func = if self.eat_str("sum") {
            AggFunc::Sum
        } else if self.eat_str("count") {
            AggFunc::Count
        } else if self.eat_str("mean") {
            AggFunc::Avg
        } else if self.eat_str("min") {
            AggFunc::Min
        } else if self.eat_str("max") {
            AggFunc::Max
        } else {
            self.pos = saved;
            return Ok(None);
        };
        // The keyword must stand alone (`summary` is an identifier).
        if matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos = saved;
            return Ok(None);
        }
        let _ = start;
        self.ws();
        let var = if self.peek() == Some(b':') {
            None
        } else {
            Some(self.ident()?)
        };
        self.expect(":")?;
        self.expect("{")?;
        let body = self.literals()?;
        self.expect("}")?;
        Ok(Some(AggTerm { func, var, body }))
    }

    fn simple_term(&mut self) -> Result<Term, DatalogParseError> {
        self.ws();
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while !self.at_eof() && self.peek() != Some(b'"') {
                    self.pos += 1;
                }
                if self.at_eof() {
                    return Err(self.err("unterminated string"));
                }
                let s = String::from_utf8_lossy(&self.src[start..self.pos]).to_string();
                self.pos += 1;
                Ok(Term::Const(Value::Str(s)))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                let mut is_float = false;
                while matches!(self.peek(), Some(d) if d.is_ascii_digit() || d == b'.') {
                    if self.peek() == Some(b'.') {
                        // `.` might end the rule: only a float if a digit follows.
                        if matches!(self.src.get(self.pos + 1), Some(d) if d.is_ascii_digit()) {
                            is_float = true;
                        } else {
                            break;
                        }
                    }
                    self.pos += 1;
                }
                let text = String::from_utf8_lossy(&self.src[start..self.pos]).to_string();
                if is_float {
                    Ok(Term::Const(Value::Float(
                        text.parse()
                            .map_err(|_| self.err(format!("bad float `{text}`")))?,
                    )))
                } else {
                    Ok(Term::Const(Value::Int(
                        text.parse()
                            .map_err(|_| self.err(format!("bad integer `{text}`")))?,
                    )))
                }
            }
            _ => Ok(Term::Var(self.ident()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ancestor_program_parses() {
        let src = "\
            .decl P(s: number, t: number)\n\
            .decl A(s: number, t: number)\n\
            A(x, y) :- P(x, y).\n\
            A(x, y) :- P(x, z), A(z, y).\n";
        let p = parse_datalog(src).unwrap();
        assert_eq!(p.decls.len(), 2);
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.idb_names(), vec!["A"]);
    }

    #[test]
    fn souffle_aggregate_assignment_parses() {
        // Eq (15).
        let src = "Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.";
        let p = parse_datalog(src).unwrap();
        let rule = &p.rules[0];
        assert!(matches!(
            &rule.body[1],
            Literal::AggAssign { var, agg } if var == "sm" && agg.func == AggFunc::Sum
        ));
    }

    #[test]
    fn souffle_head_aggregate_parses() {
        // Eq (6).
        let src = "Q(a, sum b : {R(a, b)}) :- R(a, _).";
        let p = parse_datalog(src).unwrap();
        assert!(matches!(&p.rules[0].head.args[1], Term::Agg(_)));
    }

    #[test]
    fn negation_and_facts() {
        let src = "\
            Ok(x) :- R(x), !S(x).\n\
            R(1).\n\
            R(\"abc\").\n";
        let p = parse_datalog(src).unwrap();
        assert!(matches!(
            &p.rules[0].body[1],
            Literal::Atom { negated: true, .. }
        ));
        assert!(p.rules[1].body.is_empty());
        assert!(matches!(
            &p.rules[2].head.args[0],
            Term::Const(Value::Str(s)) if s == "abc"
        ));
    }

    #[test]
    fn comparisons_and_underscores() {
        let src = "Q(x) :- R(x, _), x >= 3, x != 5.";
        let p = parse_datalog(src).unwrap();
        assert_eq!(p.rules[0].body.len(), 3);
    }

    #[test]
    fn count_without_variable() {
        let src = "Q(a, c) :- R(a, _), c = count : {S(a, _)}.";
        let p = parse_datalog(src).unwrap();
        assert!(matches!(
            &p.rules[0].body[1],
            Literal::AggAssign { agg, .. } if agg.var.is_none()
        ));
    }

    #[test]
    fn errors_have_offsets() {
        let err = parse_datalog("Q(x) :- R(x)").unwrap_err(); // missing '.'
        assert!(err.message.contains("expected `.`"));
    }
}
