//! ARC → Datalog rendering, for the Datalog-expressible fragment:
//! conjunctive disjuncts with negated single-atom scopes, comparisons, and
//! FOI aggregates (`γ∅` nested collections). FIO-grouped collections are
//! *not* expressible in Soufflé's pattern vocabulary — that asymmetry is
//! exactly the paper's point in §2.5 — and produce an error (convert with
//! `arc-analysis`'s `fio_to_foi` rewrite first).

use arc_core::ast::*;
use arc_core::binder::SchemaMap;
use std::collections::HashMap;
use std::fmt;

/// Rendering error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogRenderError {
    /// A construct with no Datalog counterpart (FIO grouping, outer joins…).
    Unsupported(String),
}

impl fmt::Display for DatalogRenderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogRenderError::Unsupported(m) => write!(f, "cannot render to Datalog: {m}"),
        }
    }
}

impl std::error::Error for DatalogRenderError {}

/// Render an ARC program (definitions + optional query) as Datalog rules
/// with `.decl` directives. `schemas` provides the attribute order for the
/// base (EDB) relations; defined relations use their head order.
pub fn render_program(p: &Program, schemas: &SchemaMap) -> Result<String, DatalogRenderError> {
    let mut rx = Renderer::new(schemas);
    for def in &p.definitions {
        rx.defined
            .insert(def.name().to_string(), def.collection.head.attrs.clone());
    }
    let mut rules: Vec<String> = Vec::new();
    for def in &p.definitions {
        rx.collection_into(&def.collection, &mut rules)?;
    }
    if let Some(q) = &p.query {
        rx.defined
            .insert(q.head.relation.clone(), q.head.attrs.clone());
        rx.collection_into(q, &mut rules)?;
    }
    let mut out = String::new();
    let mut declared: Vec<&String> = rx.used.iter().collect();
    declared.sort();
    for name in declared {
        let attrs = rx.attrs_for(name);
        let cols: Vec<String> = attrs.iter().map(|a| format!("{a}: symbol")).collect();
        out.push_str(&format!(".decl {name}({})\n", cols.join(", ")));
    }
    for r in rules {
        out.push_str(&r);
        out.push('\n');
    }
    Ok(out)
}

/// Render a single collection as Datalog rules (one per disjunct),
/// with attribute order from `schemas` for base relations.
pub fn render_collection_with(
    c: &Collection,
    schemas: &SchemaMap,
) -> Result<String, DatalogRenderError> {
    let mut rx = Renderer::new(schemas);
    rx.defined
        .insert(c.head.relation.clone(), c.head.attrs.clone());
    let mut rules = Vec::new();
    rx.collection_into(c, &mut rules)?;
    Ok(rules.join("\n") + "\n")
}

/// [`render_collection_with`] without schema information (attribute order
/// falls back to lexicographic).
pub fn render_collection(c: &Collection) -> Result<String, DatalogRenderError> {
    render_collection_with(c, &SchemaMap::new())
}

struct Renderer<'s> {
    schemas: &'s SchemaMap,
    defined: HashMap<String, Vec<String>>,
    /// Relations referenced anywhere (for `.decl` emission).
    used: std::collections::HashSet<String>,
}

impl<'s> Renderer<'s> {
    fn new(schemas: &'s SchemaMap) -> Self {
        Renderer {
            schemas,
            defined: HashMap::new(),
            used: std::collections::HashSet::new(),
        }
    }

    /// Attribute order for a relation: definition head, then schema map;
    /// an empty vec means "unknown" (the atom renderer then falls back to
    /// the lexicographic order of mentioned attributes).
    fn attrs_for(&self, name: &str) -> Vec<String> {
        if let Some(a) = self.defined.get(name) {
            return a.clone();
        }
        self.schemas.get(name).cloned().unwrap_or_default()
    }

    fn collection_into(
        &mut self,
        c: &Collection,
        rules: &mut Vec<String>,
    ) -> Result<(), DatalogRenderError> {
        self.used.insert(c.head.relation.clone());
        let normalized = c.normalized();
        let branches = match &normalized.body {
            Formula::Or(fs) => fs.clone(),
            other => vec![other.clone()],
        };
        for branch in &branches {
            rules.push(self.branch(branch, &normalized.head)?);
        }
        Ok(())
    }
}

/// Name generator over equivalence classes of attribute positions.
struct Classes {
    /// `(var, attr)` → Datalog variable name.
    names: HashMap<(String, String), String>,
    counter: usize,
}

impl Classes {
    fn new() -> Self {
        Classes {
            names: HashMap::new(),
            counter: 0,
        }
    }

    fn name_of(&mut self, var: &str, attr: &str) -> String {
        if let Some(n) = self.names.get(&(var.to_string(), attr.to_string())) {
            return n.clone();
        }
        self.counter += 1;
        let n = format!("v{}", self.counter);
        self.names
            .insert((var.to_string(), attr.to_string()), n.clone());
        n
    }

    fn alias(&mut self, a: &AttrRef, b: &AttrRef) {
        let name = self.name_of(&a.var, &a.attr);
        self.names.insert((b.var.clone(), b.attr.clone()), name);
    }
}

impl Renderer<'_> {
    fn branch(&mut self, f: &Formula, head: &Head) -> Result<String, DatalogRenderError> {
        let quant = match f {
            Formula::Quant(q) => q,
            other => {
                return Err(DatalogRenderError::Unsupported(format!(
                    "non-quantified disjunct `{other:?}`"
                )))
            }
        };
        if quant.grouping.is_some() {
            return Err(DatalogRenderError::Unsupported(
                "FIO grouping scope (Soufflé aggregates are FOI; rewrite first)".into(),
            ));
        }
        if quant.join.is_some() {
            return Err(DatalogRenderError::Unsupported("join annotations".into()));
        }

        let mut classes = Classes::new();
        let mut head_args: HashMap<String, String> = HashMap::new(); // attr → term
        let mut body_literals: Vec<String> = Vec::new();
        let mut pending: Vec<&Formula> = Vec::new();

        // First pass: equality predicates merge classes; assignments map head
        // attrs; everything else is deferred.
        for conjunct in quant.body.conjuncts() {
            match conjunct {
                Formula::Pred(Predicate::Cmp {
                    left: Scalar::Attr(a),
                    op: CmpOp::Eq,
                    right: Scalar::Attr(b),
                }) => {
                    if a.var == head.relation {
                        head_args.insert(a.attr.clone(), classes.name_of(&b.var, &b.attr));
                    } else if b.var == head.relation {
                        head_args.insert(b.attr.clone(), classes.name_of(&a.var, &a.attr));
                    } else {
                        classes.alias(a, b);
                    }
                }
                Formula::Pred(Predicate::Cmp {
                    left: Scalar::Attr(a),
                    op: CmpOp::Eq,
                    right: Scalar::Const(c),
                })
                | Formula::Pred(Predicate::Cmp {
                    left: Scalar::Const(c),
                    op: CmpOp::Eq,
                    right: Scalar::Attr(a),
                }) if a.var == head.relation => {
                    head_args.insert(a.attr.clone(), datalog_const(c));
                }
                other => pending.push(other),
            }
        }

        // Bindings become body atoms (named bindings) or aggregate assignments
        // (γ∅ nested collections).
        for b in &quant.bindings {
            match &b.source {
                BindingSource::Named(rel) => {
                    // Attribute order comes from the class map usage; we render
                    // positionally by collecting the attrs actually referenced.
                    // Datalog requires full positional args: we need the schema.
                    // Use the attrs seen on this variable, sorted by first use —
                    // callers with real schemas should prefer `render_program`
                    // over hand-rolled atoms. For fidelity we render with
                    // attr=value named-ish syntax unavailable in Soufflé, so we
                    // use the binder-visible order: the order attrs appear.
                    body_literals.push(self.atom(rel, &b.var, &quant.body, &mut classes));
                }
                BindingSource::Collection(c) => {
                    body_literals.push(self.foi_aggregate(c, &b.var, &mut classes)?);
                }
            }
        }

        // Remaining predicates: comparisons and negations.
        for conjunct in pending {
            match conjunct {
                Formula::Pred(Predicate::Cmp { left, op, right }) => {
                    let l = scalar_term(left, &mut classes)?;
                    let r = scalar_term(right, &mut classes)?;
                    body_literals.push(format!("{l} {} {r}", datalog_op(*op)));
                }
                Formula::Pred(Predicate::IsNull { .. }) => {
                    return Err(DatalogRenderError::Unsupported(
                        "IS NULL (Soufflé has no nulls — a convention, §2.6)".into(),
                    ))
                }
                Formula::Not(inner) => match &**inner {
                    Formula::Quant(nq)
                        if nq.bindings.len() == 1 && nq.grouping.is_none() && nq.join.is_none() =>
                    {
                        let nb = &nq.bindings[0];
                        let rel = match &nb.source {
                            BindingSource::Named(r) => r,
                            BindingSource::Collection(_) => {
                                return Err(DatalogRenderError::Unsupported(
                                    "negated nested collection".into(),
                                ))
                            }
                        };
                        // Alias the negated atom's positions to outer classes.
                        for sub in nq.body.conjuncts() {
                            if let Formula::Pred(Predicate::Cmp {
                                left: Scalar::Attr(a),
                                op: CmpOp::Eq,
                                right: Scalar::Attr(b),
                            }) = sub
                            {
                                classes.alias(b, a);
                            }
                        }
                        body_literals.push(format!(
                            "!{}",
                            self.atom(rel, &nb.var, &nq.body, &mut classes)
                        ));
                    }
                    _ => {
                        return Err(DatalogRenderError::Unsupported(
                            "negation over a non-atomic scope".into(),
                        ))
                    }
                },
                other => {
                    return Err(DatalogRenderError::Unsupported(format!(
                        "body construct `{other:?}`"
                    )))
                }
            }
        }

        // Assemble the head.
        let args: Vec<String> = head
            .attrs
            .iter()
            .map(|a| head_args.get(a).cloned().unwrap_or_else(|| "_".to_string()))
            .collect();
        let head_str = format!("{}({})", head.relation, args.join(", "));
        if body_literals.is_empty() {
            Ok(format!("{head_str}."))
        } else {
            Ok(format!("{head_str} :- {}.", body_literals.join(", ")))
        }
    }
}

impl Renderer<'_> {
    /// Render a positive atom positionally: schema order when known,
    /// otherwise the lexicographic order of the mentioned attributes.
    fn atom(&mut self, rel: &str, var: &str, body: &Formula, classes: &mut Classes) -> String {
        self.used.insert(rel.to_string());
        let mut attrs = self.attrs_for(rel);
        if attrs.is_empty() {
            collect_var_attrs(body, var, &mut attrs);
            attrs.sort();
        }
        let args: Vec<String> = attrs.iter().map(|a| classes.name_of(var, a)).collect();
        format!("{rel}({})", args.join(", "))
    }
}

fn collect_var_attrs(f: &Formula, var: &str, out: &mut Vec<String>) {
    match f {
        Formula::Pred(p) => {
            let mut push_scalar = |s: &Scalar| {
                for r in s.attr_refs() {
                    if r.var == var && !out.contains(&r.attr) {
                        out.push(r.attr.clone());
                    }
                }
            };
            match p {
                Predicate::Cmp { left, right, .. } => {
                    push_scalar(left);
                    push_scalar(right);
                }
                Predicate::IsNull { expr, .. } => push_scalar(expr),
            }
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                collect_var_attrs(sub, var, out);
            }
        }
        Formula::Not(inner) => collect_var_attrs(inner, var, out),
        Formula::Quant(q) => collect_var_attrs(&q.body, var, out),
    }
}

impl Renderer<'_> {
    /// Render a `γ∅` nested collection binding as a Soufflé aggregate
    /// assignment `x = func arg : { … }`.
    fn foi_aggregate(
        &mut self,
        c: &Collection,
        var: &str,
        classes: &mut Classes,
    ) -> Result<String, DatalogRenderError> {
        let q = match &c.body {
            Formula::Quant(q) if matches!(&q.grouping, Some(g) if g.keys.is_empty()) => q,
            _ => {
                return Err(DatalogRenderError::Unsupported(
                    "nested collection that is not a γ∅ aggregate scope".into(),
                ))
            }
        };
        if c.head.attrs.len() != 1 {
            return Err(DatalogRenderError::Unsupported(
                "aggregate collection with more than one output".into(),
            ));
        }
        let out_attr = &c.head.attrs[0];

        let mut agg_call: Option<&AggCall> = None;
        let mut inner_literals: Vec<String> = Vec::new();
        // Alias equalities first.
        for conjunct in q.body.conjuncts() {
            if let Formula::Pred(Predicate::Cmp {
                left: Scalar::Attr(a),
                op: CmpOp::Eq,
                right: Scalar::Attr(b),
            }) = conjunct
            {
                if a.var != c.head.relation && b.var != c.head.relation {
                    classes.alias(b, a);
                }
            }
        }
        for conjunct in q.body.conjuncts() {
            match conjunct {
                Formula::Pred(Predicate::Cmp {
                    left: Scalar::Attr(a),
                    op: CmpOp::Eq,
                    right: Scalar::Agg(call),
                }) if a.var == c.head.relation && &a.attr == out_attr => {
                    agg_call = Some(call);
                }
                Formula::Pred(Predicate::Cmp {
                    left: Scalar::Attr(a),
                    op,
                    right,
                }) if a.var != c.head.relation && *op != CmpOp::Eq => {
                    let l = classes.name_of(&a.var, &a.attr);
                    let r = scalar_term(right, classes)?;
                    inner_literals.push(format!("{l} {} {r}", datalog_op(*op)));
                }
                _ => {}
            }
        }
        for b in &q.bindings {
            match &b.source {
                BindingSource::Named(rel) => {
                    inner_literals.insert(0, self.atom(rel, &b.var, &q.body, classes));
                }
                BindingSource::Collection(_) => {
                    return Err(DatalogRenderError::Unsupported(
                        "nested collection inside an aggregate scope".into(),
                    ))
                }
            }
        }
        let call = agg_call.ok_or_else(|| {
            DatalogRenderError::Unsupported("aggregate scope without aggregation predicate".into())
        })?;
        let func = match call.func {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Avg => "mean",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        };
        let arg = match &call.arg {
            AggArg::Expr(Scalar::Attr(a)) => format!("{func} {}", classes.name_of(&a.var, &a.attr)),
            AggArg::Star => func.to_string(),
            _ => {
                return Err(DatalogRenderError::Unsupported(
                    "aggregate over a computed expression".into(),
                ))
            }
        };
        let result = classes.name_of(var, out_attr);
        Ok(format!(
            "{result} = {arg} : {{{}}}",
            inner_literals.join(", ")
        ))
    }
}

fn scalar_term(s: &Scalar, classes: &mut Classes) -> Result<String, DatalogRenderError> {
    match s {
        Scalar::Attr(a) => Ok(classes.name_of(&a.var, &a.attr)),
        Scalar::Const(v) => Ok(datalog_const(v)),
        _ => Err(DatalogRenderError::Unsupported(
            "computed scalar in Datalog position".into(),
        )),
    }
}

fn datalog_const(v: &arc_core::value::Value) -> String {
    use arc_core::value::Value;
    match v {
        Value::Str(s) => format!("\"{s}\""),
        other => other.to_string(),
    }
}

fn datalog_op(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "=",
        CmpOp::Ne => "!=",
        CmpOp::Lt => "<",
        CmpOp::Le => "<=",
        CmpOp::Gt => ">",
        CmpOp::Ge => ">=",
    }
}
