//! The catalog: base relations + external relations.
//!
//! Mirrors the paper's Fig 14 taxonomy: **base relations** are extensional
//! (stored here); **intensional relations** come from [`Program`]
//! definitions and are materialized by the engine; **external relations**
//! (§2.13.1) live here with their access patterns; **abstract relations**
//! (§2.13.2) are definitions the engine checks in context rather than
//! materializes.
//!
//! [`Program`]: arc_core::ast::Program

use crate::external::{standard_externals, ExternalRelation};
use crate::relation::Relation;
use arc_core::binder::SchemaMap;
use std::collections::HashMap;

/// A database: named base relations plus external relations.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
    externals: HashMap<String, ExternalRelation>,
}

impl Catalog {
    /// An empty catalog (no externals).
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A catalog preloaded with the standard external relations
    /// (`Minus`, `Add`, `*`, `Div`, `Bigger`, `>`, `Concat`).
    pub fn with_standard_externals() -> Self {
        Catalog {
            relations: HashMap::new(),
            externals: standard_externals(),
        }
    }

    /// Insert (or replace) a base relation, keyed by its name.
    pub fn add(&mut self, relation: Relation) -> &mut Self {
        self.relations.insert(relation.name.clone(), relation);
        self
    }

    /// Builder-style [`Catalog::add`].
    pub fn with(mut self, relation: Relation) -> Self {
        self.add(relation);
        self
    }

    /// Insert (or replace) an external relation.
    pub fn add_external(&mut self, ext: ExternalRelation) -> &mut Self {
        self.externals.insert(ext.name.clone(), ext);
        self
    }

    /// Look up a base relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up an external relation.
    pub fn external(&self, name: &str) -> Option<&ExternalRelation> {
        self.externals.get(name)
    }

    /// Iterate base relations (unordered).
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Schema map over base + external relations, for the closed-world
    /// [`Binder`](arc_core::binder::Binder).
    pub fn schema_map(&self) -> SchemaMap {
        let mut m = SchemaMap::new();
        for r in self.relations.values() {
            m.insert(r.name.clone(), r.schema.clone());
        }
        for e in self.externals.values() {
            m.insert(e.name.clone(), e.schema.clone());
        }
        m
    }
}

// The catalog is borrowed by every worker context during partitioned
// execution.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        c.add(Relation::from_ints("R", &["A"], &[&[1]]));
        assert_eq!(c.relation("R").unwrap().len(), 1);
        assert!(c.relation("S").is_none());
    }

    #[test]
    fn standard_externals_present() {
        let c = Catalog::with_standard_externals();
        assert!(c.external("Minus").is_some());
        assert!(c.external("*").is_some());
        assert!(c.external("Bigger").is_some());
    }

    #[test]
    fn schema_map_covers_both_kinds() {
        let c = Catalog::with_standard_externals().with(Relation::from_ints("R", &["A", "B"], &[]));
        let m = c.schema_map();
        assert_eq!(m["R"], vec!["A".to_string(), "B".to_string()]);
        assert_eq!(m["Minus"], vec!["left", "right", "out"]);
    }
}
