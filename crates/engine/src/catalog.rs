//! The catalog: base relations + external relations + column statistics.
//!
//! Mirrors the paper's Fig 14 taxonomy: **base relations** are extensional
//! (stored here); **intensional relations** come from [`Program`]
//! definitions and are materialized by the engine; **external relations**
//! (§2.13.1) live here with their access patterns; **abstract relations**
//! (§2.13.2) are definitions the engine checks in context rather than
//! materializes.
//!
//! ## Statistics
//!
//! Each base relation can carry [`TableStats`] — the `arc-stats` sketches
//! (distinct counters, equi-depth histograms, MCV lists) that back the
//! planner's cost model v2. Registration **auto-analyzes** relations at
//! or above [`AUTO_ANALYZE_MIN_ROWS`] rows unless `ARC_STATS=off`;
//! [`Catalog::analyze`] is the explicit `ANALYZE` pass (every relation,
//! regardless of size or environment). Every statistics change bumps the
//! catalog's **epoch** from a process-wide counter — the plan caches fold
//! the epoch into their keys, so a re-`ANALYZE` invalidates exactly the
//! cached plans the new statistics could have shaped.
//!
//! [`Program`]: arc_core::ast::Program

use crate::external::{standard_externals, ExternalRelation};
use crate::relation::Relation;
use arc_core::binder::SchemaMap;
use arc_stats::TableStats;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Registration auto-analyzes relations with at least this many rows
/// (aligned with the planner's parallel-partition threshold: relations
/// below it can't mislead the optimizer far enough to matter, and test
/// fixtures stay cheap to build).
pub const AUTO_ANALYZE_MIN_ROWS: usize = 16;

/// Process-wide epoch source: every statistics change on any catalog
/// draws a fresh value, so two catalogs can never share an epoch and the
/// global plan cache can't serve one catalog's statistics-shaped plan to
/// another.
static NEXT_EPOCH: AtomicU64 = AtomicU64::new(1);

/// A database: named base relations, external relations, and per-relation
/// column statistics.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    relations: HashMap<String, Relation>,
    externals: HashMap<String, ExternalRelation>,
    stats: HashMap<String, Arc<TableStats>>,
    /// Statistics epoch: `0` until the first statistics change, then a
    /// process-unique value per change.
    epoch: u64,
}

impl Catalog {
    /// An empty catalog (no externals).
    pub fn new() -> Self {
        Catalog::default()
    }

    /// A catalog preloaded with the standard external relations
    /// (`Minus`, `Add`, `*`, `Div`, `Bigger`, `>`, `Concat`).
    pub fn with_standard_externals() -> Self {
        Catalog {
            externals: standard_externals(),
            ..Catalog::default()
        }
    }

    /// Insert (or replace) a base relation, keyed by its name.
    ///
    /// Stale statistics for a replaced relation are dropped; relations of
    /// [`AUTO_ANALYZE_MIN_ROWS`] rows or more are analyzed on the spot
    /// unless `ARC_STATS=off` (the escape hatch disables *automatic*
    /// collection only — [`Catalog::analyze`] always works).
    pub fn add(&mut self, relation: Relation) -> &mut Self {
        let had_stats = self.stats.remove(&relation.name).is_some();
        let analyzed =
            relation.len() >= AUTO_ANALYZE_MIN_ROWS && crate::eval::strategy::stats_from_env();
        if analyzed {
            self.stats
                .insert(relation.name.clone(), Arc::new(analyze_relation(&relation)));
        }
        if had_stats || analyzed {
            self.bump_epoch();
        }
        self.relations.insert(relation.name.clone(), relation);
        self
    }

    /// Builder-style [`Catalog::add`].
    pub fn with(mut self, relation: Relation) -> Self {
        self.add(relation);
        self
    }

    /// Insert (or replace) an external relation.
    pub fn add_external(&mut self, ext: ExternalRelation) -> &mut Self {
        self.externals.insert(ext.name.clone(), ext);
        self
    }

    /// The explicit `ANALYZE` pass: (re)compute statistics for **every**
    /// base relation, regardless of size or the `ARC_STATS` setting, and
    /// bump the statistics epoch (invalidating cached plans). Returns the
    /// number of relations analyzed.
    pub fn analyze(&mut self) -> usize {
        for rel in self.relations.values() {
            self.stats
                .insert(rel.name.clone(), Arc::new(analyze_relation(rel)));
        }
        self.bump_epoch();
        self.relations.len()
    }

    /// Drop all statistics (and bump the epoch): the catalog plans like a
    /// never-analyzed one — the deterministic test hook behind the
    /// stats-on/off ablations and workspace invariant 10.
    pub fn clear_stats(&mut self) -> &mut Self {
        self.stats.clear();
        self.bump_epoch();
        self
    }

    /// Statistics for a base relation, when an analyze pass has run.
    pub fn stats(&self, name: &str) -> Option<&Arc<TableStats>> {
        self.stats.get(name)
    }

    /// The statistics epoch: `0` until the first statistics change, then
    /// a process-unique value per change. Plan-cache keys incorporate it.
    pub fn stats_epoch(&self) -> u64 {
        self.epoch
    }

    fn bump_epoch(&mut self) {
        self.epoch = NEXT_EPOCH.fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a base relation.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Look up an external relation.
    pub fn external(&self, name: &str) -> Option<&ExternalRelation> {
        self.externals.get(name)
    }

    /// Iterate base relations (unordered).
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Schema map over base + external relations, for the closed-world
    /// [`Binder`](arc_core::binder::Binder).
    pub fn schema_map(&self) -> SchemaMap {
        let mut m = SchemaMap::new();
        for r in self.relations.values() {
            m.insert(r.name.clone(), r.schema.clone());
        }
        for e in self.externals.values() {
            m.insert(e.name.clone(), e.schema.clone());
        }
        m
    }
}

// The catalog is borrowed by every worker context during partitioned
// execution.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
};

/// One relation's ANALYZE pass. Under vectorized execution (the
/// `ARC_VECTOR` default) the statistics stream from the relation's
/// column chunks — one typed pass per column, and the encoding stays
/// cached on the relation for the scans that follow. `ARC_VECTOR=off`
/// (or a malformed value, whose error the engine reports at first
/// evaluation) takes the row-at-a-time pass; the two are identical
/// result-wise (`arc-stats` asserts so).
fn analyze_relation(rel: &Relation) -> TableStats {
    if crate::eval::strategy::vectorize_from_env().unwrap_or(false) {
        TableStats::analyze_chunks(rel.arity(), &rel.rows, &rel.columns())
    } else {
        TableStats::analyze(rel.arity(), &rel.rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut c = Catalog::new();
        c.add(Relation::from_ints("R", &["A"], &[&[1]]));
        assert_eq!(c.relation("R").unwrap().len(), 1);
        assert!(c.relation("S").is_none());
    }

    #[test]
    fn standard_externals_present() {
        let c = Catalog::with_standard_externals();
        assert!(c.external("Minus").is_some());
        assert!(c.external("*").is_some());
        assert!(c.external("Bigger").is_some());
    }

    #[test]
    fn schema_map_covers_both_kinds() {
        let c = Catalog::with_standard_externals().with(Relation::from_ints("R", &["A", "B"], &[]));
        let m = c.schema_map();
        assert_eq!(m["R"], vec!["A".to_string(), "B".to_string()]);
        assert_eq!(m["Minus"], vec!["left", "right", "out"]);
    }

    fn big_rel(name: &str, n: i64) -> Relation {
        let mut r = Relation::new(name, &["A"]);
        for i in 0..n {
            r.push(vec![(i % 5).into()]);
        }
        r
    }

    #[test]
    fn explicit_analyze_covers_small_relations_and_bumps_epoch() {
        let mut c = Catalog::new();
        c.add(Relation::from_ints("Tiny", &["A"], &[&[1], &[2]]));
        assert!(c.stats("Tiny").is_none(), "below the auto threshold");
        let before = c.stats_epoch();
        assert_eq!(c.analyze(), 1);
        assert!(c.stats_epoch() > before, "ANALYZE must bump the epoch");
        let ts = c.stats("Tiny").expect("explicit ANALYZE ignores size");
        assert_eq!(ts.rows, 2);
        assert_eq!(ts.columns[0].distinct, 2);
    }

    #[test]
    fn auto_analyze_triggers_at_the_threshold() {
        // The auto path consults ARC_STATS; the suite runs under both
        // settings, so assert the setting-conditional behavior.
        let mut c = Catalog::new();
        c.add(big_rel("Big", AUTO_ANALYZE_MIN_ROWS as i64));
        if crate::eval::strategy::stats_from_env() {
            let ts = c.stats("Big").expect("auto-analyzed at the threshold");
            assert_eq!(ts.rows, AUTO_ANALYZE_MIN_ROWS as u64);
            assert_eq!(ts.columns[0].distinct, 5);
        } else {
            assert!(c.stats("Big").is_none(), "ARC_STATS=off disables auto");
        }
    }

    #[test]
    fn replacing_a_relation_drops_stale_stats() {
        let mut c = Catalog::new();
        c.add(big_rel("R", 64));
        c.analyze();
        let epoch = c.stats_epoch();
        // Replace with a below-threshold relation: stats must not survive
        // (they describe rows that no longer exist), epoch must move.
        c.add(Relation::from_ints("R", &["A"], &[&[1]]));
        assert!(c.stats("R").is_none());
        assert!(c.stats_epoch() > epoch);
    }

    #[test]
    fn clear_stats_restores_the_unanalyzed_profile() {
        let mut c = Catalog::new();
        c.add(big_rel("R", 64));
        c.analyze();
        assert!(c.stats("R").is_some());
        let epoch = c.stats_epoch();
        c.clear_stats();
        assert!(c.stats("R").is_none());
        assert!(c.stats_epoch() > epoch);
    }

    #[test]
    fn epochs_are_process_unique_across_catalogs() {
        let mut a = Catalog::new();
        let mut b = Catalog::new();
        a.add(big_rel("R", 4));
        b.add(big_rel("R", 4));
        a.analyze();
        b.analyze();
        assert_ne!(a.stats_epoch(), b.stats_epoch());
    }
}
