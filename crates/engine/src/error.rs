//! Evaluation errors.

use std::fmt;

/// Errors surfaced while evaluating ARC against a catalog. Queries that
/// pass the binder (`arc_core::binder`) against the catalog's schema map
/// should never hit the name-resolution variants; they exist because the
/// engine is usable on unbound ASTs too.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing
pub enum EvalError {
    /// A binding references a relation the catalog does not know.
    UnknownRelation(String),
    /// An attribute reference could not be resolved at runtime.
    UnboundVariable(String),
    /// A resolved variable has no such attribute.
    UnknownAttribute { var: String, attr: String },
    /// An aggregate occurred in a non-grouping scope.
    AggregateOutsideGrouping(String),
    /// No access pattern of an external relation is satisfiable from the
    /// equality predicates in scope (§2.13.1).
    NoAccessPath { relation: String, var: String },
    /// An abstract relation's attributes are not all determined by equality
    /// predicates in the enclosing scope (§2.13.2).
    AbstractUnderdetermined { relation: String, var: String },
    /// Assignment-bearing subformulas are not allowed inside grouping
    /// scopes (aggregation scopes emit through their own predicates).
    SpineUnderGrouping,
    /// More than one assignment-bearing subformula in one conjunction.
    MultipleSpines,
    /// A head attribute was never assigned on an emitted row.
    MissingAssignment { collection: String, attr: String },
    /// Recursion through negation or aggregation (not stratifiable, §2.9).
    NotStratifiable { relation: String },
    /// Recursive definitions require set semantics.
    RecursionUnderBag { relation: String },
    /// The fixpoint did not converge within the iteration budget.
    FixpointLimit { relation: String, iterations: usize },
    /// External relations are not supported inside outer-join annotations.
    ExternalInJoinTree { var: String },
    /// A join annotation does not cover all bound variables.
    JoinTreeMismatch,
    /// An engine configuration value (e.g. `ARC_EVAL_STRATEGY`) could not
    /// be interpreted; surfaced on the first evaluation instead of
    /// panicking mid-run.
    Config(String),
    /// The static planner (`EXPLAIN`) found no valid placement order for a
    /// binding; evaluation maps the same condition onto the precise
    /// source-kind error ([`EvalError::NoAccessPath`] & co.).
    Unplannable {
        /// The range variable of the stuck binding.
        var: String,
    },
    /// The caller tripped the query's `CancelHandle`
    /// ([`Engine::cancel_handle`](crate::Engine::cancel_handle)).
    Cancelled,
    /// The query ran past its deadline (`ARC_TIMEOUT_MS` /
    /// [`Engine::with_timeout`](crate::Engine::with_timeout)).
    DeadlineExceeded,
    /// A non-degradable allocation exceeded the memory budget
    /// (`ARC_MEM_BUDGET` /
    /// [`Engine::with_mem_budget`](crate::Engine::with_mem_budget)).
    /// Degradable builds fall back to streaming paths instead of
    /// raising this; only hard exhaustion aborts.
    MemoryBudget,
    /// A worker panicked mid-query. The panic was contained at the
    /// engine boundary: caches recover and the same engine and worker
    /// pool answer the next query.
    WorkerPanic(String),
    /// Internal invariant violation (a bug in the engine).
    Internal(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownRelation(name) => write!(f, "unknown relation `{name}`"),
            EvalError::UnboundVariable(var) => write!(f, "unbound variable `{var}`"),
            EvalError::UnknownAttribute { var, attr } => {
                write!(f, "`{var}` has no attribute `{attr}`")
            }
            EvalError::AggregateOutsideGrouping(pred) => {
                write!(f, "aggregate outside grouping scope in `{pred}`")
            }
            EvalError::NoAccessPath { relation, var } => write!(
                f,
                "no viable access pattern for external `{relation}` (via `{var}`): bind its inputs with equality predicates"
            ),
            EvalError::AbstractUnderdetermined { relation, var } => write!(
                f,
                "abstract relation `{relation}` (via `{var}`) is underdetermined: every attribute needs an equality in scope"
            ),
            EvalError::SpineUnderGrouping => {
                write!(f, "assignment-bearing subformula inside a grouping scope")
            }
            EvalError::MultipleSpines => {
                write!(f, "more than one assignment-bearing subformula in a conjunction")
            }
            EvalError::MissingAssignment { collection, attr } => {
                write!(f, "head attribute `{collection}.{attr}` not assigned on an emitted row")
            }
            EvalError::NotStratifiable { relation } => write!(
                f,
                "recursive relation `{relation}` is used under negation or aggregation (not stratifiable)"
            ),
            EvalError::RecursionUnderBag { relation } => write!(
                f,
                "recursive relation `{relation}` requires set semantics (bag fixpoints diverge)"
            ),
            EvalError::FixpointLimit { relation, iterations } => write!(
                f,
                "fixpoint for `{relation}` did not converge within {iterations} iterations"
            ),
            EvalError::ExternalInJoinTree { var } => write!(
                f,
                "external relation binding `{var}` cannot appear under an outer-join annotation"
            ),
            EvalError::JoinTreeMismatch => {
                write!(f, "join annotation does not cover the quantifier's bindings")
            }
            EvalError::Config(msg) => write!(f, "engine configuration error: {msg}"),
            EvalError::Cancelled => write!(f, "query cancelled"),
            EvalError::DeadlineExceeded => write!(f, "query deadline exceeded"),
            EvalError::MemoryBudget => write!(f, "query memory budget exceeded"),
            EvalError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            EvalError::Unplannable { var } => {
                write!(f, "binding `{var}` cannot be placed in any join order")
            }
            EvalError::Internal(msg) => write!(f, "internal engine error: {msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EvalError>;
