//! The evaluator: ARC's **conceptual evaluation strategy** (paper §2.3).
//!
//! Collections are evaluated by nested-loop enumeration of quantifier
//! bindings — exactly the `for x in X: for y in Y: if …: yield …` strategy
//! the paper uses to define the semantics — extended with:
//!
//! * grouping scopes with **multiple aggregates over one scope** (§2.5, the
//!   FIO pattern) and `γ∅` ("group by true") producing exactly one group;
//! * correlated (lateral) nested collections (§2.4);
//! * outer-join annotations over the binding list (§2.11), where the ON
//!   condition of a `left`/`full` node absorbs the body predicates that
//!   touch its right/either side (literal leaves absorb predicates that
//!   compare against their constant);
//! * external relations solved through access patterns (§2.13.1);
//! * abstract relations checked in context (§2.13.2);
//! * nested-existential **semijoin multiplicity** under bag semantics
//!   (§2.7): head tuples emitted from inside a nested scope are
//!   deduplicated per enclosing environment;
//! * the [`Conventions`] switches — none of which change the code path
//!   through the relational structure, only value-level behaviour.

use crate::catalog::Catalog;
use crate::error::{EvalError, Result};
use crate::external::ExternalRelation;
use crate::relation::{Relation, Tuple};
use arc_core::ast::*;
use arc_core::conventions::{Conventions, EmptyAgg, NullLogic, Semantics};
use arc_core::value::{Key, Truth, Value};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Environments
// ---------------------------------------------------------------------------

/// One bound range variable: its name, attribute names, and current tuple.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    var: Rc<str>,
    attrs: Rc<Vec<String>>,
    tuple: Tuple,
}

/// A stack of frames; lookup walks innermost-first (lexical scoping).
#[derive(Debug, Default, Clone)]
pub(crate) struct Env {
    frames: Vec<Frame>,
}

impl Env {
    fn push(&mut self, var: Rc<str>, attrs: Rc<Vec<String>>, tuple: Tuple) {
        self.frames.push(Frame { var, attrs, tuple });
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn len(&self) -> usize {
        self.frames.len()
    }

    fn truncate(&mut self, n: usize) {
        self.frames.truncate(n);
    }

    fn lookup(&self, var: &str, attr: &str) -> Result<Value> {
        for f in self.frames.iter().rev() {
            if &*f.var == var {
                let idx = f
                    .attrs
                    .iter()
                    .position(|a| a == attr)
                    .ok_or_else(|| EvalError::UnknownAttribute {
                        var: var.to_string(),
                        attr: attr.to_string(),
                    })?;
                return Ok(f.tuple[idx].clone());
            }
        }
        Err(EvalError::UnboundVariable(var.to_string()))
    }

    fn has_var(&self, var: &str) -> bool {
        self.frames.iter().any(|f| &*f.var == var)
    }
}

// ---------------------------------------------------------------------------
// Public interface
// ---------------------------------------------------------------------------

/// The evaluation engine: a catalog plus a convention profile.
pub struct Engine<'c> {
    pub(crate) catalog: &'c Catalog,
    /// The convention profile queries are interpreted under (§2.6/§2.7).
    pub conventions: Conventions,
}

impl<'c> Engine<'c> {
    /// Create an engine over a catalog with the given conventions.
    pub fn new(catalog: &'c Catalog, conventions: Conventions) -> Self {
        Engine {
            catalog,
            conventions,
        }
    }

    /// Evaluate a standalone query collection (no definitions).
    pub fn eval_collection(&self, c: &Collection) -> Result<Relation> {
        let ctx = Ctx {
            catalog: self.catalog,
            conv: self.conventions,
            defined: &HashMap::new(),
            abstracts: &HashMap::new(),
        };
        ctx.collection_relation(c, &mut Env::default())
    }

    /// Evaluate a boolean sentence (paper Fig 9).
    pub fn eval_sentence(&self, f: &Formula) -> Result<Truth> {
        let ctx = Ctx {
            catalog: self.catalog,
            conv: self.conventions,
            defined: &HashMap::new(),
            abstracts: &HashMap::new(),
        };
        ctx.formula_truth(f, &mut Env::default())
    }

    /// Evaluate a collection with pre-materialized definitions and abstract
    /// relations in scope (used by the fixpoint driver).
    pub(crate) fn eval_with(
        &self,
        c: &Collection,
        defined: &HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
    ) -> Result<Relation> {
        let ctx = Ctx {
            catalog: self.catalog,
            conv: self.conventions,
            defined,
            abstracts,
        };
        ctx.collection_relation(c, &mut Env::default())
    }

    /// Evaluate a sentence with definitions in scope.
    pub(crate) fn eval_sentence_with(
        &self,
        f: &Formula,
        defined: &HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
    ) -> Result<Truth> {
        let ctx = Ctx {
            catalog: self.catalog,
            conv: self.conventions,
            defined,
            abstracts,
        };
        ctx.formula_truth(f, &mut Env::default())
    }
}

// ---------------------------------------------------------------------------
// Evaluation context
// ---------------------------------------------------------------------------

pub(crate) struct Ctx<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) conv: Conventions,
    /// Materialized intensional relations (views/CTEs/fixpoint results).
    pub(crate) defined: &'a HashMap<String, Relation>,
    /// Abstract relations: checked in context, never materialized.
    pub(crate) abstracts: &'a HashMap<String, Collection>,
}

/// Partial head tuple: per-attribute assigned value.
type Partial = Vec<Option<Value>>;

struct HeadCtx<'h> {
    name: &'h str,
    attrs: &'h [String],
}

/// The body of a quantifier, partitioned by predicate role (the engine-side
/// mirror of the binder's classification).
struct Parts<'f> {
    /// Plain predicates: filters (no aggregate, not a head assignment).
    filters: Vec<&'f Predicate>,
    /// Non-aggregating head assignments `(attr, expr)`.
    assigns: Vec<(&'f str, &'f Scalar)>,
    /// Aggregating head assignments (need a grouping scope).
    agg_assigns: Vec<(&'f str, &'f Scalar)>,
    /// Aggregating non-assignment predicates (per-group tests).
    agg_tests: Vec<&'f Predicate>,
    /// Boolean subformulas without scope-level aggregates (pre-group).
    pre_bool: Vec<&'f Formula>,
    /// Boolean subformulas containing scope-level aggregates (per-group).
    post_bool: Vec<&'f Formula>,
    /// Subformulas carrying positive head assignments (the emission spine).
    spines: Vec<&'f Formula>,
}

fn partition<'f>(body: &'f Formula, head: &str) -> Parts<'f> {
    let mut parts = Parts {
        filters: Vec::new(),
        assigns: Vec::new(),
        agg_assigns: Vec::new(),
        agg_tests: Vec::new(),
        pre_bool: Vec::new(),
        post_bool: Vec::new(),
        spines: Vec::new(),
    };
    for conjunct in body.conjuncts() {
        match conjunct {
            Formula::Pred(p) => {
                if let Some((attr, expr)) = head_assignment(p, head) {
                    if expr.has_aggregate() {
                        parts.agg_assigns.push((attr, expr));
                    } else {
                        parts.assigns.push((attr, expr));
                    }
                } else if p.has_aggregate() {
                    parts.agg_tests.push(p);
                } else {
                    parts.filters.push(p);
                }
            }
            sub => {
                if has_head_assignment(sub, head) {
                    parts.spines.push(sub);
                } else if has_direct_aggregate(sub) {
                    parts.post_bool.push(sub);
                } else {
                    parts.pre_bool.push(sub);
                }
            }
        }
    }
    parts
}

/// `Head.attr = expr` (either orientation) with a bare head side.
fn head_assignment<'f>(p: &'f Predicate, head: &str) -> Option<(&'f str, &'f Scalar)> {
    if let Predicate::Cmp {
        left,
        op: CmpOp::Eq,
        right,
    } = p
    {
        fn is_head<'s>(s: &'s Scalar, head: &str) -> Option<&'s str> {
            match s {
                Scalar::Attr(a) if a.var == head => Some(a.attr.as_str()),
                _ => None,
            }
        }
        match (is_head(left, head), is_head(right, head)) {
            (Some(attr), None) => return Some((attr, right)),
            (None, Some(attr)) => return Some((attr, left)),
            _ => {}
        }
    }
    None
}

/// Does `f` contain a *positive* head assignment for `head` (not under
/// negation, not inside a nested collection)?
fn has_head_assignment(f: &Formula, head: &str) -> bool {
    match f {
        Formula::Pred(p) => head_assignment(p, head).is_some(),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|s| has_head_assignment(s, head)),
        Formula::Not(_) => false,
        Formula::Quant(q) => has_head_assignment(&q.body, head),
    }
}

/// Does `f` contain an aggregate belonging to the *current* scope (i.e. in
/// a predicate not nested under another quantifier)?
fn has_direct_aggregate(f: &Formula) -> bool {
    match f {
        Formula::Pred(p) => p.has_aggregate(),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().any(has_direct_aggregate),
        Formula::Not(inner) => has_direct_aggregate(inner),
        Formula::Quant(_) => false,
    }
}

impl<'a> Ctx<'a> {
    // -- Collections --------------------------------------------------------

    /// Evaluate a collection to a relation (applying the set-semantics
    /// deduplication convention at the collection boundary).
    pub(crate) fn collection_relation(&self, c: &Collection, env: &mut Env) -> Result<Relation> {
        let tuples = self.collection_tuples(c, env)?;
        let mut rel = Relation::new(c.head.relation.clone(), &[]);
        rel.schema = c.head.attrs.clone();
        rel.rows = tuples;
        Ok(match self.conv.semantics {
            Semantics::Set => rel.deduped(),
            Semantics::Bag => rel,
        })
    }

    fn collection_tuples(&self, c: &Collection, env: &mut Env) -> Result<Vec<Tuple>> {
        let head = HeadCtx {
            name: &c.head.relation,
            attrs: &c.head.attrs,
        };
        let mut out = Vec::new();
        let partial: Partial = vec![None; c.head.attrs.len()];
        self.emit_branch(&c.body, &head, &partial, env, &mut out)?;
        Ok(out)
    }

    fn emit_branch(
        &self,
        f: &Formula,
        head: &HeadCtx<'_>,
        partial: &Partial,
        env: &mut Env,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        match f {
            Formula::Or(branches) => {
                for b in branches {
                    self.emit_branch(b, head, partial, env, out)?;
                }
                Ok(())
            }
            Formula::Quant(q) => self.emit_quant(
                &q.bindings,
                q.grouping.as_ref(),
                q.join.as_ref(),
                &q.body,
                head,
                partial,
                env,
                out,
            ),
            other => self.emit_quant(&[], None, None, other, head, partial, env, out),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_quant(
        &self,
        bindings: &[Binding],
        grouping: Option<&Grouping>,
        join: Option<&JoinTree>,
        body: &Formula,
        head: &HeadCtx<'_>,
        partial: &Partial,
        env: &mut Env,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let parts = partition(body, head.name);
        match grouping {
            None => {
                if let Some(p) = parts.agg_tests.first() {
                    return Err(EvalError::AggregateOutsideGrouping(p.to_string()));
                }
                if let Some((attr, _)) = parts.agg_assigns.first() {
                    return Err(EvalError::AggregateOutsideGrouping(format!(
                        "{}.{attr}",
                        head.name
                    )));
                }
                if !parts.post_bool.is_empty() {
                    return Err(EvalError::AggregateOutsideGrouping(
                        "aggregate under a connective".to_string(),
                    ));
                }
                if parts.spines.len() > 1 {
                    return Err(EvalError::MultipleSpines);
                }
                self.enumerate(bindings, join, &parts.filters, env, &mut |ctx, env| {
                    for b in &parts.pre_bool {
                        if !ctx.formula_truth(b, env)?.is_true() {
                            return Ok(true);
                        }
                    }
                    let mut p2 = partial.clone();
                    let mut consistent = true;
                    for (attr, expr) in &parts.assigns {
                        let v = ctx.scalar(expr, env)?;
                        if !set_partial(&mut p2, head, attr, v)? {
                            consistent = false;
                            break;
                        }
                    }
                    if !consistent {
                        return Ok(true);
                    }
                    if let Some(spine) = parts.spines.first() {
                        // Nested existential: emissions collapse per
                        // environment (semijoin multiplicity, §2.7).
                        let mut sub = Vec::new();
                        ctx.emit_branch(spine, head, &p2, env, &mut sub)?;
                        dedupe_in_place(&mut sub);
                        out.extend(sub);
                    } else {
                        out.push(complete(&p2, head)?);
                    }
                    Ok(true)
                })
            }
            Some(g) => {
                if !parts.spines.is_empty() {
                    return Err(EvalError::SpineUnderGrouping);
                }
                // Materialize surviving local environments, grouped by key.
                let base = env.len();
                let mut groups: BTreeMap<Vec<Key>, Vec<Vec<Frame>>> = BTreeMap::new();
                self.enumerate(bindings, join, &parts.filters, env, &mut |ctx, env| {
                    for b in &parts.pre_bool {
                        if !ctx.formula_truth(b, env)?.is_true() {
                            return Ok(true);
                        }
                    }
                    let mut key = Vec::with_capacity(g.keys.len());
                    for k in &g.keys {
                        key.push(env.lookup(&k.var, &k.attr)?.key());
                    }
                    groups
                        .entry(key)
                        .or_default()
                        .push(env.frames[base..].to_vec());
                    Ok(true)
                })?;
                // γ∅: exactly one group, even over an empty join (§2.5 —
                // "there is just one group", like SQL's aggregate query
                // without GROUP BY).
                if g.keys.is_empty() && groups.is_empty() {
                    groups.insert(Vec::new(), Vec::new());
                }
                for members in groups.values() {
                    // Representative environment: outer frames plus the
                    // first member's local frames (grouping keys are
                    // constant within a group).
                    let repr: Option<&Vec<Frame>> = members.first();
                    if let Some(frames) = repr {
                        for f in frames {
                            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
                        }
                    }
                    let verdict = self.group_verdict(&parts, members, env);
                    let emitted = match verdict {
                        Ok(true) => {
                            let mut p2 = partial.clone();
                            let mut ok = true;
                            for (attr, expr) in &parts.assigns {
                                let v = self.scalar(expr, env)?;
                                if !set_partial(&mut p2, head, attr, v)? {
                                    ok = false;
                                    break;
                                }
                            }
                            if ok {
                                for (attr, expr) in &parts.agg_assigns {
                                    let v = self.group_scalar(expr, members, env)?;
                                    if !set_partial(&mut p2, head, attr, v)? {
                                        ok = false;
                                        break;
                                    }
                                }
                            }
                            if ok {
                                Some(complete(&p2, head)?)
                            } else {
                                None
                            }
                        }
                        Ok(false) => None,
                        Err(e) => {
                            env.truncate(base);
                            return Err(e);
                        }
                    };
                    env.truncate(base);
                    if let Some(t) = emitted {
                        out.push(t);
                    }
                }
                Ok(())
            }
        }
    }

    /// Evaluate the per-group tests (aggregation comparisons + boolean
    /// subformulas containing scope-level aggregates).
    fn group_verdict(
        &self,
        parts: &Parts<'_>,
        members: &[Vec<Frame>],
        env: &mut Env,
    ) -> Result<bool> {
        let mut t = Truth::True;
        for p in &parts.agg_tests {
            t = t.and(self.group_pred(p, members, env)?);
            if t == Truth::False {
                return Ok(false);
            }
        }
        for f in &parts.post_bool {
            t = t.and(self.group_formula(f, members, env)?);
            if t == Truth::False {
                return Ok(false);
            }
        }
        Ok(t.is_true())
    }

    fn group_formula(&self, f: &Formula, members: &[Vec<Frame>], env: &mut Env) -> Result<Truth> {
        match f {
            Formula::Pred(p) => self.group_pred(p, members, env),
            Formula::And(fs) => {
                let mut t = Truth::True;
                for sub in fs {
                    t = t.and(self.group_formula(sub, members, env)?);
                }
                Ok(t)
            }
            Formula::Or(fs) => {
                let mut t = Truth::False;
                for sub in fs {
                    t = t.or(self.group_formula(sub, members, env)?);
                }
                Ok(t)
            }
            Formula::Not(inner) => Ok(self.group_formula(inner, members, env)?.not()),
            Formula::Quant(_) => self.formula_truth(f, env),
        }
    }

    fn group_pred(&self, p: &Predicate, members: &[Vec<Frame>], env: &mut Env) -> Result<Truth> {
        match p {
            Predicate::Cmp { left, op, right } => {
                let l = self.group_scalar(left, members, env)?;
                let r = self.group_scalar(right, members, env)?;
                Ok(self.compare(&l, *op, &r))
            }
            Predicate::IsNull { expr, negated } => {
                let v = self.group_scalar(expr, members, env)?;
                Ok(Truth::from_bool(v.is_null() != *negated))
            }
        }
    }

    /// Evaluate a scalar in group context: aggregates accumulate over the
    /// group members; everything else evaluates against the representative
    /// environment.
    fn group_scalar(&self, s: &Scalar, members: &[Vec<Frame>], env: &mut Env) -> Result<Value> {
        match s {
            Scalar::Agg(call) => self.accumulate(call, members, env),
            Scalar::Attr(_) | Scalar::Const(_) => self.scalar(s, env),
            Scalar::Arith { op, left, right } => {
                let l = self.group_scalar(left, members, env)?;
                let r = self.group_scalar(right, members, env)?;
                Ok(arith(*op, &l, &r))
            }
        }
    }

    /// Accumulate one aggregate over the group (SQL semantics: `NULL`
    /// inputs are skipped; `count(*)` counts rows; the empty-group value is
    /// the [`EmptyAgg`] convention for `sum`/`avg`, always 0 for `count`,
    /// `NULL` for `min`/`max`).
    fn accumulate(&self, call: &AggCall, members: &[Vec<Frame>], env: &mut Env) -> Result<Value> {
        let base = env.len();
        let mut values: Vec<Value> = Vec::with_capacity(members.len());
        for member in members {
            // Swap in this member's local frames (replacing the
            // representative's) so per-tuple expressions see the member.
            env.truncate(base - members.first().map(|m| m.len()).unwrap_or(0));
            for f in member {
                env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
            }
            match &call.arg {
                AggArg::Star => values.push(Value::Int(1)),
                AggArg::Expr(e) => {
                    let v = self.scalar(e, env)?;
                    if !v.is_null() {
                        values.push(v);
                    }
                }
            }
        }
        // Restore the representative frames.
        if let Some(first) = members.first() {
            env.truncate(base - first.len());
            for f in first {
                env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
            }
        }
        if call.distinct {
            let mut seen: HashSet<Key> = HashSet::with_capacity(values.len());
            values.retain(|v| seen.insert(v.key()));
        }
        Ok(self.fold_aggregate(call.func, &values))
    }

    fn fold_aggregate(&self, func: AggFunc, values: &[Value]) -> Value {
        let empty_numeric = || match self.conv.empty_agg {
            EmptyAgg::Null => Value::Null,
            EmptyAgg::Zero => Value::Int(0),
        };
        match func {
            AggFunc::Count => Value::Int(values.len() as i64),
            AggFunc::Sum => {
                if values.is_empty() {
                    return empty_numeric();
                }
                fold_sum(values)
            }
            AggFunc::Avg => {
                if values.is_empty() {
                    return empty_numeric();
                }
                let sum = fold_sum(values);
                match sum.as_f64() {
                    Some(s) => Value::Float(s / values.len() as f64),
                    None => Value::Null,
                }
            }
            AggFunc::Min => values
                .iter()
                .cloned()
                .reduce(|a, b| match a.compare(&b) {
                    Some(std::cmp::Ordering::Greater) => b,
                    _ => a,
                })
                .unwrap_or(Value::Null),
            AggFunc::Max => values
                .iter()
                .cloned()
                .reduce(|a, b| match a.compare(&b) {
                    Some(std::cmp::Ordering::Less) => b,
                    _ => a,
                })
                .unwrap_or(Value::Null),
        }
    }

    // -- Boolean formula evaluation -----------------------------------------

    /// Evaluate a formula as a truth value (sentences, negation scopes,
    /// nested existentials).
    pub(crate) fn formula_truth(&self, f: &Formula, env: &mut Env) -> Result<Truth> {
        match f {
            Formula::Pred(p) => self.pred_truth(p, env),
            Formula::And(fs) => {
                let mut t = Truth::True;
                for sub in fs {
                    t = t.and(self.formula_truth(sub, env)?);
                    if t == Truth::False {
                        break;
                    }
                }
                Ok(t)
            }
            Formula::Or(fs) => {
                let mut t = Truth::False;
                for sub in fs {
                    t = t.or(self.formula_truth(sub, env)?);
                    if t == Truth::True {
                        break;
                    }
                }
                Ok(t)
            }
            Formula::Not(inner) => Ok(self.formula_truth(inner, env)?.not()),
            Formula::Quant(q) => self.quant_truth(q, env),
        }
    }

    /// Existential truth of a quantifier scope: does any binding
    /// environment (or, for grouping scopes, any group) satisfy the body?
    fn quant_truth(&self, q: &Quant, env: &mut Env) -> Result<Truth> {
        // The head name "\u{0}" cannot occur, so nothing classifies as an
        // assignment.
        let parts = partition(&q.body, "\u{0}");
        match &q.grouping {
            None => {
                if let Some(p) = parts.agg_tests.first() {
                    return Err(EvalError::AggregateOutsideGrouping(p.to_string()));
                }
                let mut found = false;
                self.enumerate(
                    &q.bindings,
                    q.join.as_ref(),
                    &parts.filters,
                    env,
                    &mut |ctx, env| {
                        for b in &parts.pre_bool {
                            if !ctx.formula_truth(b, env)?.is_true() {
                                return Ok(true);
                            }
                        }
                        found = true;
                        Ok(false) // stop early
                    },
                )?;
                Ok(Truth::from_bool(found))
            }
            Some(g) => {
                let base = env.len();
                let mut groups: BTreeMap<Vec<Key>, Vec<Vec<Frame>>> = BTreeMap::new();
                self.enumerate(
                    &q.bindings,
                    q.join.as_ref(),
                    &parts.filters,
                    env,
                    &mut |ctx, env| {
                        for b in &parts.pre_bool {
                            if !ctx.formula_truth(b, env)?.is_true() {
                                return Ok(true);
                            }
                        }
                        let mut key = Vec::with_capacity(g.keys.len());
                        for k in &g.keys {
                            key.push(env.lookup(&k.var, &k.attr)?.key());
                        }
                        groups
                            .entry(key)
                            .or_default()
                            .push(env.frames[base..].to_vec());
                        Ok(true)
                    },
                )?;
                if g.keys.is_empty() && groups.is_empty() {
                    groups.insert(Vec::new(), Vec::new());
                }
                for members in groups.values() {
                    if let Some(frames) = members.first() {
                        for f in frames {
                            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
                        }
                    }
                    let verdict = self.group_verdict(&parts, members, env);
                    env.truncate(base);
                    if verdict? {
                        return Ok(Truth::True);
                    }
                }
                Ok(Truth::False)
            }
        }
    }

    fn pred_truth(&self, p: &Predicate, env: &mut Env) -> Result<Truth> {
        match p {
            Predicate::Cmp { left, op, right } => {
                let l = self.scalar(left, env)?;
                let r = self.scalar(right, env)?;
                Ok(self.compare(&l, *op, &r))
            }
            Predicate::IsNull { expr, negated } => {
                let v = self.scalar(expr, env)?;
                Ok(Truth::from_bool(v.is_null() != *negated))
            }
        }
    }

    fn compare(&self, l: &Value, op: CmpOp, r: &Value) -> Truth {
        let t = if l.is_null() || r.is_null() {
            Truth::Unknown
        } else {
            match l.compare(r) {
                Some(ord) => Truth::from_bool(match op {
                    CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                    CmpOp::Ne => ord != std::cmp::Ordering::Equal,
                    CmpOp::Lt => ord == std::cmp::Ordering::Less,
                    CmpOp::Le => ord != std::cmp::Ordering::Greater,
                    CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                    CmpOp::Ge => ord != std::cmp::Ordering::Less,
                }),
                // Incomparable (heterogeneous) values: only equality-family
                // operators have a defined answer.
                None => match op {
                    CmpOp::Eq => Truth::False,
                    CmpOp::Ne => Truth::True,
                    _ => Truth::Unknown,
                },
            }
        };
        match self.conv.null_logic {
            NullLogic::ThreeValued => t,
            NullLogic::TwoValued => {
                if t == Truth::Unknown {
                    Truth::False
                } else {
                    t
                }
            }
        }
    }

    /// Evaluate a scalar in tuple context (no aggregates).
    fn scalar(&self, s: &Scalar, env: &mut Env) -> Result<Value> {
        match s {
            Scalar::Attr(a) => env.lookup(&a.var, &a.attr),
            Scalar::Const(v) => Ok(v.clone()),
            Scalar::Agg(call) => Err(EvalError::AggregateOutsideGrouping(call.to_string())),
            Scalar::Arith { op, left, right } => {
                let l = self.scalar(left, env)?;
                let r = self.scalar(right, env)?;
                Ok(arith(*op, &l, &r))
            }
        }
    }

    // -- Binding enumeration -------------------------------------------------

    /// Enumerate all binding environments of a quantifier, applying the
    /// filter predicates, and invoke `cb` for each survivor. `cb` returns
    /// `Ok(false)` to stop early (existential short-circuit).
    fn enumerate(
        &self,
        bindings: &[Binding],
        join: Option<&JoinTree>,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        if let Some(tree) = join {
            if tree.has_outer() {
                return self.enumerate_join(bindings, tree, filters, env, cb);
            }
            // A pure-inner annotation is semantically the default join.
        }
        let order = self.order_bindings(bindings, filters, env)?;
        self.enumerate_rec(&order, 0, filters, env, cb).map(|_| ())
    }

    /// Recursive nested-loop enumeration; returns false when stopped early.
    fn enumerate_rec(
        &self,
        order: &[Ordered<'_>],
        i: usize,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<bool> {
        if i == order.len() {
            // All bound: apply filters, then the callback.
            for p in filters {
                if !self.pred_truth(p, env)?.is_true() {
                    return Ok(true);
                }
            }
            return cb(self, env);
        }
        let ob = &order[i];
        match &ob.source {
            Src::Rows(rel) => {
                let attrs = Rc::new(rel.schema.clone());
                for row in &rel.rows {
                    env.push(ob.var.clone(), attrs.clone(), row.clone());
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::Nested(c) => {
                // Lateral: evaluate the nested collection per environment.
                let rel = self.collection_relation(c, env)?;
                let attrs = Rc::new(rel.schema.clone());
                for row in rel.rows {
                    env.push(ob.var.clone(), attrs.clone(), row);
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::External { ext, pattern, inputs } => {
                let mut vals = Vec::with_capacity(inputs.len());
                let mut null_input = false;
                for e in inputs {
                    let v = self.scalar(e, env)?;
                    if v.is_null() {
                        null_input = true;
                        break;
                    }
                    vals.push(v);
                }
                if null_input {
                    return Ok(true); // no tuples relate to NULL operands
                }
                let attrs = Rc::new(ext.schema.clone());
                for tuple in (pattern.complete)(&vals) {
                    env.push(ob.var.clone(), attrs.clone(), tuple);
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::Abstract { def, inputs } => {
                // Determine the full candidate tuple, then check membership
                // by evaluating the abstract definition's body with the
                // head fixed (§2.13.2).
                let mut tuple = Vec::with_capacity(inputs.len());
                let mut null_input = false;
                for e in inputs {
                    let v = self.scalar(e, env)?;
                    if v.is_null() {
                        null_input = true;
                        break;
                    }
                    tuple.push(v);
                }
                if null_input {
                    return Ok(true);
                }
                let head_attrs = Rc::new(def.head.attrs.clone());
                let head_var: Rc<str> = Rc::from(def.head.relation.as_str());
                env.push(head_var, head_attrs.clone(), tuple.clone());
                let holds = self.formula_truth(&def.body, env)?;
                env.pop();
                if holds.is_true() {
                    env.push(ob.var.clone(), head_attrs, tuple);
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Order bindings so that external/abstract relations come after the
    /// bindings that determine their inputs, and laterally-dependent nested
    /// collections after their referenced siblings.
    fn order_bindings<'b>(
        &'b self,
        bindings: &'b [Binding],
        filters: &[&'b Predicate],
        env: &Env,
    ) -> Result<Vec<Ordered<'b>>> {
        let mut remaining: Vec<&Binding> = bindings.iter().collect();
        let mut available: Vec<String> = Vec::new();
        let mut out: Vec<Ordered<'b>> = Vec::with_capacity(bindings.len());

        // Equality predicates usable to determine external/abstract inputs.
        let equalities: Vec<(&AttrRef, &Scalar)> = filters
            .iter()
            .flat_map(|p| equality_pair(p))
            .collect();

        let resolvable = |expr: &Scalar, available: &[String], env: &Env| -> bool {
            expr.attr_refs()
                .iter()
                .all(|r| available.iter().any(|v| v == &r.var) || env.has_var(&r.var))
        };

        while !remaining.is_empty() {
            let mut placed = None;
            'scan: for (idx, b) in remaining.iter().enumerate() {
                match &b.source {
                    BindingSource::Named(name) => {
                        if let Some(rel) = self.defined.get(name) {
                            placed = Some((idx, Src::Rows(rel)));
                            break 'scan;
                        }
                        if let Some(rel) = self.catalog.relation(name) {
                            placed = Some((idx, Src::Rows(rel)));
                            break 'scan;
                        }
                        if let Some(def) = self.abstracts.get(name) {
                            // All attributes must be determined.
                            let mut inputs = Vec::with_capacity(def.head.attrs.len());
                            for attr in &def.head.attrs {
                                let found = equalities.iter().find(|(a, e)| {
                                    a.var == b.var
                                        && &a.attr == attr
                                        && resolvable(e, &available, env)
                                });
                                match found {
                                    Some((_, e)) => inputs.push((*e).clone()),
                                    None => continue 'scan,
                                }
                            }
                            placed = Some((idx, Src::Abstract { def, inputs }));
                            break 'scan;
                        }
                        if let Some(ext) = self.catalog.external(name) {
                            for pattern in &ext.patterns {
                                let mut inputs = Vec::with_capacity(pattern.bound.len());
                                let mut ok = true;
                                for &pos in &pattern.bound {
                                    let attr = &ext.schema[pos];
                                    let found = equalities.iter().find(|(a, e)| {
                                        a.var == b.var
                                            && &a.attr == attr
                                            && resolvable(e, &available, env)
                                    });
                                    match found {
                                        Some((_, e)) => inputs.push((*e).clone()),
                                        None => {
                                            ok = false;
                                            break;
                                        }
                                    }
                                }
                                if ok {
                                    placed = Some((
                                        idx,
                                        Src::External {
                                            ext,
                                            pattern,
                                            inputs,
                                        },
                                    ));
                                    break 'scan;
                                }
                            }
                            continue 'scan;
                        }
                        return Err(EvalError::UnknownRelation(name.clone()));
                    }
                    BindingSource::Collection(c) => {
                        // Nested collections may reference earlier siblings
                        // (lateral); place once free variables are bound.
                        let free = free_vars(c);
                        let ready = free
                            .iter()
                            .all(|v| available.iter().any(|a| a == v) || env.has_var(v));
                        if ready {
                            placed = Some((idx, Src::Nested(c)));
                            break 'scan;
                        }
                    }
                }
            }
            match placed {
                Some((idx, source)) => {
                    let b = remaining.remove(idx);
                    available.push(b.var.clone());
                    out.push(Ordered {
                        var: Rc::from(b.var.as_str()),
                        source,
                    });
                }
                None => {
                    // Report the most informative error.
                    let b = remaining[0];
                    return Err(match &b.source {
                        BindingSource::Named(name) if self.catalog.external(name).is_some() => {
                            EvalError::NoAccessPath {
                                relation: name.clone(),
                                var: b.var.clone(),
                            }
                        }
                        BindingSource::Named(name) if self.abstracts.contains_key(name) => {
                            EvalError::AbstractUnderdetermined {
                                relation: name.clone(),
                                var: b.var.clone(),
                            }
                        }
                        BindingSource::Named(name) => EvalError::UnknownRelation(name.clone()),
                        BindingSource::Collection(c) => EvalError::UnboundVariable(
                            free_vars(c).into_iter().next().unwrap_or_default(),
                        ),
                    });
                }
            }
        }
        Ok(out)
    }

    // -- Outer-join enumeration (§2.11) --------------------------------------

    fn enumerate_join(
        &self,
        bindings: &[Binding],
        tree: &JoinTree,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        // The annotation must cover exactly the bound variables.
        let tree_vars: HashSet<&str> = tree.vars().into_iter().collect();
        if tree_vars.len() != bindings.len()
            || !bindings.iter().all(|b| tree_vars.contains(b.var.as_str()))
        {
            return Err(EvalError::JoinTreeMismatch);
        }
        let by_var: HashMap<&str, &Binding> =
            bindings.iter().map(|b| (b.var.as_str(), b)).collect();
        let mut consumed: HashSet<usize> = HashSet::new();
        let joined = self.eval_join_node(tree, &by_var, filters, &mut consumed, env)?;
        let base = env.len();
        for row in joined.rows {
            for f in &row {
                env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
            }
            // Remaining (non-consumed) filters apply as WHERE.
            let mut pass = true;
            for (i, p) in filters.iter().enumerate() {
                if consumed.contains(&i) {
                    continue;
                }
                if !self.pred_truth(p, env)?.is_true() {
                    pass = false;
                    break;
                }
            }
            let cont = if pass { cb(self, env)? } else { true };
            env.truncate(base);
            if !cont {
                return Ok(());
            }
        }
        Ok(())
    }

    fn eval_join_node(
        &self,
        node: &JoinTree,
        by_var: &HashMap<&str, &Binding>,
        filters: &[&Predicate],
        consumed: &mut HashSet<usize>,
        env: &mut Env,
    ) -> Result<Joined> {
        match node {
            JoinTree::Var(v) => {
                let binding = by_var
                    .get(v.as_str())
                    .ok_or(EvalError::JoinTreeMismatch)?;
                let rel: Relation = match &binding.source {
                    BindingSource::Named(name) => {
                        if let Some(r) = self.defined.get(name) {
                            r.clone()
                        } else if let Some(r) = self.catalog.relation(name) {
                            r.clone()
                        } else if self.catalog.external(name).is_some() {
                            return Err(EvalError::ExternalInJoinTree { var: v.clone() });
                        } else {
                            return Err(EvalError::UnknownRelation(name.clone()));
                        }
                    }
                    BindingSource::Collection(c) => self.collection_relation(c, env)?,
                };
                let var: Rc<str> = Rc::from(v.as_str());
                let attrs = Rc::new(rel.schema.clone());
                Ok(Joined {
                    rows: rel
                        .rows
                        .into_iter()
                        .map(|t| {
                            vec![Frame {
                                var: var.clone(),
                                attrs: attrs.clone(),
                                tuple: t,
                            }]
                        })
                        .collect(),
                    vars: vec![(var, attrs)],
                    lits: Vec::new(),
                })
            }
            JoinTree::Lit(v) => Ok(Joined {
                rows: vec![Vec::new()],
                vars: Vec::new(),
                lits: vec![v.clone()],
            }),
            JoinTree::Inner(children) => {
                let mut acc = Joined {
                    rows: vec![Vec::new()],
                    vars: Vec::new(),
                    lits: Vec::new(),
                };
                for c in children {
                    let next = self.eval_join_node(c, by_var, filters, consumed, env)?;
                    let mut rows = Vec::with_capacity(acc.rows.len() * next.rows.len().max(1));
                    for a in &acc.rows {
                        for b in &next.rows {
                            let mut row = a.clone();
                            row.extend(b.iter().cloned());
                            rows.push(row);
                        }
                    }
                    acc.rows = rows;
                    acc.vars.extend(next.vars);
                    acc.lits.extend(next.lits);
                }
                Ok(acc)
            }
            JoinTree::Left(l, r) => {
                let left = self.eval_join_node(l, by_var, filters, consumed, env)?;
                let right = self.eval_join_node(r, by_var, filters, consumed, env)?;
                let on = self.select_on_preds(&left, &right, filters, consumed, env);
                let mut rows = Vec::new();
                for lrow in &left.rows {
                    let mut matched = false;
                    for rrow in &right.rows {
                        if self.on_match(lrow, rrow, &on, env)? {
                            matched = true;
                            let mut row = lrow.clone();
                            row.extend(rrow.iter().cloned());
                            rows.push(row);
                        }
                    }
                    if !matched {
                        let mut row = lrow.clone();
                        row.extend(null_frames(&right.vars));
                        rows.push(row);
                    }
                }
                Ok(Joined {
                    rows,
                    vars: [left.vars, right.vars].concat(),
                    lits: [left.lits, right.lits].concat(),
                })
            }
            JoinTree::Full(l, r) => {
                let left = self.eval_join_node(l, by_var, filters, consumed, env)?;
                let right = self.eval_join_node(r, by_var, filters, consumed, env)?;
                let on = self.select_on_preds(&left, &right, filters, consumed, env);
                let mut rows = Vec::new();
                let mut right_matched = vec![false; right.rows.len()];
                for lrow in &left.rows {
                    let mut matched = false;
                    for (j, rrow) in right.rows.iter().enumerate() {
                        if self.on_match(lrow, rrow, &on, env)? {
                            matched = true;
                            right_matched[j] = true;
                            let mut row = lrow.clone();
                            row.extend(rrow.iter().cloned());
                            rows.push(row);
                        }
                    }
                    if !matched {
                        let mut row = lrow.clone();
                        row.extend(null_frames(&right.vars));
                        rows.push(row);
                    }
                }
                for (j, rrow) in right.rows.iter().enumerate() {
                    if !right_matched[j] {
                        let mut row = null_frames(&left.vars);
                        row.extend(rrow.iter().cloned());
                        rows.push(row);
                    }
                }
                Ok(Joined {
                    rows,
                    vars: [left.vars, right.vars].concat(),
                    lits: [left.lits, right.lits].concat(),
                })
            }
        }
    }

    /// Select the ON predicates for an outer node: body predicates whose
    /// variables are covered by the two sides (plus the outer environment)
    /// and that either touch the right side's variables or compare against
    /// one of the right side's literal leaves (paper Fig 12's
    /// `inner(11, s)` pattern).
    fn select_on_preds<'f>(
        &self,
        left: &Joined,
        right: &Joined,
        filters: &[&'f Predicate],
        consumed: &mut HashSet<usize>,
        env: &Env,
    ) -> Vec<&'f Predicate> {
        let left_vars: HashSet<&str> = left.vars.iter().map(|(v, _)| &**v).collect();
        let right_vars: HashSet<&str> = right.vars.iter().map(|(v, _)| &**v).collect();
        let mut on = Vec::new();
        for (i, p) in filters.iter().enumerate() {
            if consumed.contains(&i) {
                continue;
            }
            let vars = pred_vars(p);
            let covered = vars.iter().all(|v| {
                left_vars.contains(v.as_str())
                    || right_vars.contains(v.as_str())
                    || env.has_var(v)
            });
            if !covered {
                continue;
            }
            let touches_right = vars.iter().any(|v| right_vars.contains(v.as_str()));
            let touches_lit = !right.lits.is_empty()
                && pred_consts(p).iter().any(|c| right.lits.contains(c));
            if touches_right || touches_lit {
                consumed.insert(i);
                on.push(*p);
            }
        }
        on
    }

    fn on_match(
        &self,
        lrow: &[Frame],
        rrow: &[Frame],
        on: &[&Predicate],
        env: &mut Env,
    ) -> Result<bool> {
        let base = env.len();
        for f in lrow.iter().chain(rrow.iter()) {
            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
        }
        let mut ok = true;
        for p in on {
            if !self.pred_truth(p, env)?.is_true() {
                ok = false;
                break;
            }
        }
        env.truncate(base);
        Ok(ok)
    }
}

/// Intermediate result of join-tree evaluation.
struct Joined {
    rows: Vec<Vec<Frame>>,
    vars: Vec<(Rc<str>, Rc<Vec<String>>)>,
    lits: Vec<Value>,
}

fn null_frames(vars: &[(Rc<str>, Rc<Vec<String>>)]) -> Vec<Frame> {
    vars.iter()
        .map(|(var, attrs)| Frame {
            var: var.clone(),
            attrs: attrs.clone(),
            tuple: vec![Value::Null; attrs.len()],
        })
        .collect()
}

enum Src<'b> {
    Rows(&'b Relation),
    Nested(&'b Collection),
    External {
        ext: &'b ExternalRelation,
        pattern: &'b crate::external::AccessPattern,
        inputs: Vec<Scalar>,
    },
    Abstract {
        def: &'b Collection,
        inputs: Vec<Scalar>,
    },
}

struct Ordered<'b> {
    var: Rc<str>,
    source: Src<'b>,
}

/// Extract `(attr-ref, other-side)` pairs from an equality predicate, in
/// both orientations.
fn equality_pair(p: &Predicate) -> Vec<(&AttrRef, &Scalar)> {
    let mut out = Vec::new();
    if let Predicate::Cmp {
        left,
        op: CmpOp::Eq,
        right,
    } = p
    {
        if let Scalar::Attr(a) = left {
            out.push((a, right));
        }
        if let Scalar::Attr(a) = right {
            out.push((a, left));
        }
    }
    out
}

/// Variables referenced by a predicate.
fn pred_vars(p: &Predicate) -> Vec<String> {
    let mut out = Vec::new();
    let mut push_scalar = |s: &Scalar| {
        for r in s.attr_refs() {
            out.push(r.var.clone());
        }
    };
    match p {
        Predicate::Cmp { left, right, .. } => {
            push_scalar(left);
            push_scalar(right);
        }
        Predicate::IsNull { expr, .. } => push_scalar(expr),
    }
    out
}

/// Constants appearing in a predicate (for literal-leaf ON association).
fn pred_consts(p: &Predicate) -> Vec<Value> {
    fn walk(s: &Scalar, out: &mut Vec<Value>) {
        match s {
            Scalar::Const(v) => out.push(v.clone()),
            Scalar::Attr(_) => {}
            Scalar::Agg(call) => {
                if let AggArg::Expr(e) = &call.arg {
                    walk(e, out);
                }
            }
            Scalar::Arith { left, right, .. } => {
                walk(left, out);
                walk(right, out);
            }
        }
    }
    let mut out = Vec::new();
    match p {
        Predicate::Cmp { left, right, .. } => {
            walk(left, &mut out);
            walk(right, &mut out);
        }
        Predicate::IsNull { expr, .. } => walk(expr, &mut out),
    }
    out
}

/// Free variables of a collection: referenced variables that no internal
/// binding (or the collection's own head) declares.
pub(crate) fn free_vars(c: &Collection) -> Vec<String> {
    let mut bound: Vec<String> = vec![c.head.relation.clone()];
    let mut free = Vec::new();
    collect_free(&c.body, &mut bound, &mut free);
    free
}

fn collect_free(f: &Formula, bound: &mut Vec<String>, free: &mut Vec<String>) {
    match f {
        Formula::Quant(q) => {
            let base = bound.len();
            for b in &q.bindings {
                if let BindingSource::Collection(c) = &b.source {
                    // The nested collection sees current bound vars.
                    let mut inner_bound = bound.clone();
                    inner_bound.push(c.head.relation.clone());
                    collect_free(&c.body, &mut inner_bound, free);
                }
                bound.push(b.var.clone());
            }
            collect_free(&q.body, bound, free);
            bound.truncate(base);
        }
        Formula::And(fs) | Formula::Or(fs) => {
            for sub in fs {
                collect_free(sub, bound, free);
            }
        }
        Formula::Not(inner) => collect_free(inner, bound, free),
        Formula::Pred(p) => {
            let mut push_scalar = |s: &Scalar| {
                for r in s.attr_refs() {
                    if !bound.iter().any(|b| b == &r.var) && !free.contains(&r.var) {
                        free.push(r.var.clone());
                    }
                }
            };
            match p {
                Predicate::Cmp { left, right, .. } => {
                    push_scalar(left);
                    push_scalar(right);
                }
                Predicate::IsNull { expr, .. } => push_scalar(expr),
            }
        }
    }
}

/// Null-propagating arithmetic; integer ops stay integral, `Div` follows
/// SQL integer division for integer operands, division by zero yields
/// `NULL` (documented deviation: SQL raises an error; an error value would
/// poison whole-query evaluation for a single bad tuple).
fn arith(op: ArithOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            ArithOp::Add => Value::Float(a + b),
            ArithOp::Sub => Value::Float(a - b),
            ArithOp::Mul => Value::Float(a * b),
            ArithOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
        },
        _ => Value::Null,
    }
}

fn fold_sum(values: &[Value]) -> Value {
    let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int {
        Value::Int(values.iter().filter_map(|v| v.as_i64()).sum())
    } else {
        match values
            .iter()
            .map(|v| v.as_f64())
            .collect::<Option<Vec<f64>>>()
        {
            Some(fs) => Value::Float(fs.iter().sum()),
            None => Value::Null,
        }
    }
}

/// Record an assignment into the partial head tuple. Returns `false` when
/// a conflicting value was already assigned (the row then fails, since both
/// equalities cannot hold).
fn set_partial(partial: &mut Partial, head: &HeadCtx<'_>, attr: &str, v: Value) -> Result<bool> {
    let idx = head
        .attrs
        .iter()
        .position(|a| a == attr)
        .ok_or_else(|| EvalError::UnknownAttribute {
            var: head.name.to_string(),
            attr: attr.to_string(),
        })?;
    match &partial[idx] {
        Some(existing) => {
            // NULL = NULL assignments agree only structurally; two
            // assignments must produce the same key to both hold.
            Ok(existing.key() == v.key())
        }
        None => {
            partial[idx] = Some(v);
            Ok(true)
        }
    }
}

fn complete(partial: &Partial, head: &HeadCtx<'_>) -> Result<Tuple> {
    let mut out = Vec::with_capacity(partial.len());
    for (i, slot) in partial.iter().enumerate() {
        match slot {
            Some(v) => out.push(v.clone()),
            None => {
                return Err(EvalError::MissingAssignment {
                    collection: head.name.to_string(),
                    attr: head.attrs[i].clone(),
                })
            }
        }
    }
    Ok(out)
}

fn dedupe_in_place(rows: &mut Vec<Tuple>) {
    let mut seen: HashSet<Vec<Key>> = HashSet::with_capacity(rows.len());
    rows.retain(|r| seen.insert(Relation::row_key(r)));
}
