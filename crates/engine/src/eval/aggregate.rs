//! Aggregation over grouping scopes: accumulating aggregates across group
//! members and evaluating per-group tests (§2.5, §2.6).

use super::env::{Env, Frame};
use super::partition::Parts;
use super::scalar::{arith, fold_sum};
use super::Ctx;
use crate::error::Result;
use arc_core::ast::*;
use arc_core::conventions::EmptyAgg;
use arc_core::value::{Key, Truth, Value};
use std::collections::HashSet;

/// Evaluate the per-group tests (aggregation comparisons + boolean
/// subformulas containing scope-level aggregates).
pub(crate) fn group_verdict(
    ctx: &Ctx<'_>,
    parts: &Parts<'_>,
    members: &[Vec<Frame>],
    env: &mut Env,
) -> Result<bool> {
    let mut t = Truth::True;
    for p in &parts.agg_tests {
        t = t.and(group_pred(ctx, p, members, env)?);
        if t == Truth::False {
            return Ok(false);
        }
    }
    for f in &parts.post_bool {
        t = t.and(group_formula(ctx, f, members, env)?);
        if t == Truth::False {
            return Ok(false);
        }
    }
    Ok(t.is_true())
}

fn group_formula(
    ctx: &Ctx<'_>,
    f: &Formula,
    members: &[Vec<Frame>],
    env: &mut Env,
) -> Result<Truth> {
    match f {
        Formula::Pred(p) => group_pred(ctx, p, members, env),
        Formula::And(fs) => {
            let mut t = Truth::True;
            for sub in fs {
                t = t.and(group_formula(ctx, sub, members, env)?);
            }
            Ok(t)
        }
        Formula::Or(fs) => {
            let mut t = Truth::False;
            for sub in fs {
                t = t.or(group_formula(ctx, sub, members, env)?);
            }
            Ok(t)
        }
        Formula::Not(inner) => Ok(group_formula(ctx, inner, members, env)?.not()),
        Formula::Quant(_) => ctx.formula_truth(f, env),
    }
}

fn group_pred(
    ctx: &Ctx<'_>,
    p: &Predicate,
    members: &[Vec<Frame>],
    env: &mut Env,
) -> Result<Truth> {
    match p {
        Predicate::Cmp { left, op, right } => {
            let l = group_scalar(ctx, left, members, env)?;
            let r = group_scalar(ctx, right, members, env)?;
            Ok(ctx.compare(&l, *op, &r))
        }
        Predicate::IsNull { expr, negated } => {
            let v = group_scalar(ctx, expr, members, env)?;
            Ok(Truth::from_bool(v.is_null() != *negated))
        }
    }
}

/// Evaluate a scalar in group context: aggregates accumulate over the
/// group members; everything else evaluates against the representative
/// environment.
pub(crate) fn group_scalar(
    ctx: &Ctx<'_>,
    s: &Scalar,
    members: &[Vec<Frame>],
    env: &mut Env,
) -> Result<Value> {
    match s {
        Scalar::Agg(call) => accumulate(ctx, call, members, env),
        Scalar::Attr(_) | Scalar::Const(_) => ctx.scalar(s, env),
        Scalar::Arith { op, left, right } => {
            let l = group_scalar(ctx, left, members, env)?;
            let r = group_scalar(ctx, right, members, env)?;
            Ok(arith(*op, &l, &r))
        }
    }
}

/// Accumulate one aggregate over the group (SQL semantics: `NULL` inputs
/// are skipped; `count(*)` counts rows; the empty-group value is the
/// [`EmptyAgg`] convention for `sum`/`avg`, always 0 for `count`, `NULL`
/// for `min`/`max`).
fn accumulate(
    ctx: &Ctx<'_>,
    call: &AggCall,
    members: &[Vec<Frame>],
    env: &mut Env,
) -> Result<Value> {
    let base = env.len();
    let mut values: Vec<Value> = Vec::with_capacity(members.len());
    for member in members {
        // Swap in this member's local frames (replacing the
        // representative's) so per-tuple expressions see the member.
        env.truncate(base - members.first().map(|m| m.len()).unwrap_or(0));
        for f in member {
            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
        }
        match &call.arg {
            AggArg::Star => values.push(Value::Int(1)),
            AggArg::Expr(e) => {
                let v = ctx.scalar(e, env)?;
                if !v.is_null() {
                    values.push(v);
                }
            }
        }
    }
    // Restore the representative frames.
    if let Some(first) = members.first() {
        env.truncate(base - first.len());
        for f in first {
            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
        }
    }
    if call.distinct {
        let mut seen: HashSet<Key> = HashSet::with_capacity(values.len());
        values.retain(|v| seen.insert(v.key()));
    }
    Ok(fold_aggregate(ctx, call.func, &values))
}

fn fold_aggregate(ctx: &Ctx<'_>, func: AggFunc, values: &[Value]) -> Value {
    let empty_numeric = || match ctx.conv.empty_agg {
        EmptyAgg::Null => Value::Null,
        EmptyAgg::Zero => Value::Int(0),
    };
    match func {
        AggFunc::Count => Value::Int(values.len() as i64),
        AggFunc::Sum => {
            if values.is_empty() {
                return empty_numeric();
            }
            fold_sum(values)
        }
        AggFunc::Avg => {
            if values.is_empty() {
                return empty_numeric();
            }
            let sum = fold_sum(values);
            match sum.as_f64() {
                Some(s) => Value::Float(s / values.len() as f64),
                None => Value::Null,
            }
        }
        AggFunc::Min => values
            .iter()
            .cloned()
            .reduce(|a, b| match a.compare(&b) {
                Some(std::cmp::Ordering::Greater) => b,
                _ => a,
            })
            .unwrap_or(Value::Null),
        AggFunc::Max => values
            .iter()
            .cloned()
            .reduce(|a, b| match a.compare(&b) {
                Some(std::cmp::Ordering::Less) => b,
                _ => a,
            })
            .unwrap_or(Value::Null),
    }
}
