//! Runtime environments: the stack of bound range variables.
//!
//! Frames share their variable name and attribute schema through `Arc`
//! (not `Rc`): the parallel executor clones an environment snapshot per
//! morsel and drives it on a pool worker, so the whole frame stack must
//! be `Send` (see `eval::parallel`). The per-push cost difference is one
//! atomic increment, invisible next to tuple cloning.

use crate::error::{EvalError, Result};
use crate::relation::Tuple;
use arc_core::value::Value;
use std::sync::Arc;

/// One bound range variable: its name, attribute names, and current tuple.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    pub(crate) var: Arc<str>,
    pub(crate) attrs: Arc<Vec<String>>,
    pub(crate) tuple: Tuple,
}

/// A stack of frames; lookup walks innermost-first (lexical scoping).
#[derive(Debug, Default, Clone)]
pub(crate) struct Env {
    pub(crate) frames: Vec<Frame>,
}

impl Env {
    pub(crate) fn push(&mut self, var: Arc<str>, attrs: Arc<Vec<String>>, tuple: Tuple) {
        self.frames.push(Frame { var, attrs, tuple });
    }

    pub(crate) fn pop(&mut self) {
        self.frames.pop();
    }

    pub(crate) fn len(&self) -> usize {
        self.frames.len()
    }

    pub(crate) fn truncate(&mut self, n: usize) {
        self.frames.truncate(n);
    }

    pub(crate) fn lookup(&self, var: &str, attr: &str) -> Result<Value> {
        for f in self.frames.iter().rev() {
            if &*f.var == var {
                let idx = f.attrs.iter().position(|a| a == attr).ok_or_else(|| {
                    EvalError::UnknownAttribute {
                        var: var.to_string(),
                        attr: attr.to_string(),
                    }
                })?;
                return Ok(f.tuple[idx].clone());
            }
        }
        Err(EvalError::UnboundVariable(var.to_string()))
    }

    pub(crate) fn has_var(&self, var: &str) -> bool {
        self.frames.iter().any(|f| &*f.var == var)
    }
}

// The parallel executor sends cloned environments (and their frames) to
// pool workers; keep that a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Frame>();
    assert_send_sync::<Env>();
};
