//! Boolean formula evaluation: sentences, negation scopes, and nested
//! existentials, including existential grouping scopes.

use super::aggregate;
use super::env::{Env, Frame};
use super::partition::partition;
use super::Ctx;
use crate::error::{EvalError, Result};
use arc_core::ast::*;
use arc_core::value::{Key, Truth};
use std::collections::BTreeMap;

impl Ctx<'_> {
    /// Evaluate a formula as a truth value (sentences, negation scopes,
    /// nested existentials).
    pub(crate) fn formula_truth(&self, f: &Formula, env: &mut Env) -> Result<Truth> {
        match f {
            Formula::Pred(p) => self.pred_truth(p, env),
            Formula::And(fs) => {
                let mut t = Truth::True;
                for sub in fs {
                    t = t.and(self.formula_truth(sub, env)?);
                    if t == Truth::False {
                        break;
                    }
                }
                Ok(t)
            }
            Formula::Or(fs) => {
                let mut t = Truth::False;
                for sub in fs {
                    t = t.or(self.formula_truth(sub, env)?);
                    if t == Truth::True {
                        break;
                    }
                }
                Ok(t)
            }
            Formula::Not(inner) => Ok(self.formula_truth(inner, env)?.not()),
            Formula::Quant(q) => self.quant_truth(q, env),
        }
    }

    /// Existential truth of a quantifier scope: does any binding
    /// environment (or, for grouping scopes, any group) satisfy the body?
    ///
    /// Scopes with pure equi-join correlation short-cut through the
    /// decorrelated set-level path ([`Ctx::semijoin_truth`]): the body is
    /// evaluated once and every outer row probes a build-once key set
    /// instead of re-entering the enumeration.
    fn quant_truth(&self, q: &Quant, env: &mut Env) -> Result<Truth> {
        // The head name "\u{0}" cannot occur, so nothing classifies as an
        // assignment.
        let parts = partition(&q.body, "\u{0}");
        match &q.grouping {
            None => {
                if let Some(p) = parts.agg_tests.first() {
                    return Err(EvalError::AggregateOutsideGrouping(p.to_string()));
                }
                if !parts.post_bool.is_empty() {
                    // Mirror the collection path (`emit_existential`): an
                    // aggregate under a connective needs a grouping scope;
                    // silently ignoring it would make the quantifier
                    // degenerate to a non-emptiness check.
                    return Err(EvalError::AggregateOutsideGrouping(
                        "aggregate under a connective".to_string(),
                    ));
                }
                if let Some(t) = self.semijoin_truth(q, &parts, env)? {
                    return Ok(t);
                }
                let mut found = false;
                self.enumerate(
                    &q.bindings,
                    q.join.as_ref(),
                    &parts.filters,
                    env,
                    &mut |ctx, env| {
                        for b in &parts.pre_bool {
                            if !ctx.formula_truth(b, env)?.is_true() {
                                return Ok(true);
                            }
                        }
                        found = true;
                        Ok(false) // stop early
                    },
                )?;
                Ok(Truth::from_bool(found))
            }
            Some(g) => {
                let base = env.len();
                let mut groups: BTreeMap<Vec<Key>, Vec<Vec<Frame>>> = BTreeMap::new();
                self.enumerate(
                    &q.bindings,
                    q.join.as_ref(),
                    &parts.filters,
                    env,
                    &mut |ctx, env| {
                        for b in &parts.pre_bool {
                            if !ctx.formula_truth(b, env)?.is_true() {
                                return Ok(true);
                            }
                        }
                        let mut key = Vec::with_capacity(g.keys.len());
                        for k in &g.keys {
                            key.push(env.lookup(&k.var, &k.attr)?.key());
                        }
                        groups
                            .entry(key)
                            .or_default()
                            .push(env.frames[base..].to_vec());
                        Ok(true)
                    },
                )?;
                if g.keys.is_empty() && groups.is_empty() {
                    groups.insert(Vec::new(), Vec::new());
                }
                for members in groups.values() {
                    if let Some(frames) = members.first() {
                        for f in frames {
                            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
                        }
                    }
                    let verdict = aggregate::group_verdict(self, &parts, members, env);
                    env.truncate(base);
                    if verdict? {
                        return Ok(Truth::True);
                    }
                }
                Ok(Truth::False)
            }
        }
    }
}
