//! Ordered secondary indexes: sorted permutations over one or more
//! columns, binary-searched for the bound prefix of an
//! [`Access::IndexRange`](arc_plan::Access::IndexRange) step.
//!
//! ## What the index holds
//!
//! An [`OrderedIndex`] over columns `cols` is a permutation of the row
//! ids whose every indexed column has a join key (`NULL` and float `NaN`
//! are excluded outright: under three-valued logic neither can satisfy an
//! equality *or* an ordering predicate, so no bound prefix could ever
//! select them). Entries sort lexicographically by a total order over
//! [`Key`]s — class rank first (booleans, then numerics with `Int`/`Float`
//! interleaved by numeric value, then strings), exact value within a
//! class — with ties broken by row id, so equal-key runs enumerate in
//! original row order.
//!
//! ## Search semantics — who defines "equal" and "less"
//!
//! The two probe components deliberately use *different* comparison
//! sources, each matching the execution path it replaces:
//!
//! * **equality prefix** — exact [`Key`] match, the same rule the
//!   hash-join index uses ([`Relation::key_for`]): an index-range step
//!   with a constant-equality prefix replaces a hash probe, and must
//!   select exactly the rows that probe would have.
//! * **range bound** — [`Value::compare`] semantics, the same rule the
//!   row path's [`cmp_truth`](arc_core::value::cmp_truth) and the
//!   columnar kernels apply: the bound replaces an ordering filter. A
//!   constant only orders against values of its own comparability class
//!   (bool / numeric / string — anything else is `Unknown` and the row
//!   path drops it), so the search first narrows to the constant's class
//!   window and only then applies the bound; a missing end stops at the
//!   class boundary, not at the end of the index. A `NULL`/`NaN`
//!   constant (or a lower/upper pair from two different classes) can
//!   match nothing and short-circuits to an empty selection.
//!
//! Both probes are monotone over the sort order, so plain binary search
//! (`partition_point` style) finds every window; the qualifying row ids
//! are then re-sorted ascending so the scan emits environments in
//! exactly the order the full-scan row path would — workspace
//! invariant 13, and what lets the selection compose with chunk-aligned
//! morsel partitioning unchanged.

use crate::relation::{Relation, Tuple};
use arc_core::ast::{CmpOp, Predicate};
use arc_core::value::{Key, Value};
use arc_plan::const_cmp;
use std::cmp::Ordering;

/// Comparability class of a key (mirrors [`Value::compare`]: values of
/// different classes never order against each other). `Key::Null` never
/// enters an index.
fn class(k: &Key) -> u8 {
    match k {
        Key::Null => unreachable!("NULL keys are excluded at build time"),
        Key::Bool(_) => 0,
        Key::Int(_) | Key::Float(_) => 1,
        Key::Str(_) => 2,
    }
}

/// Class of a constant value, `None` for `NULL`/`NaN` (which no row can
/// equal or order against).
fn value_class(v: &Value) -> Option<u8> {
    match v {
        Value::Null => None,
        Value::Float(f) if f.is_nan() => None,
        Value::Bool(_) => Some(0),
        Value::Int(_) | Value::Float(_) => Some(1),
        Value::Str(_) => Some(2),
    }
}

/// The index's total order over two keys: class rank, then exact value.
/// `Int` and `Float` interleave by numeric value (via `f64`, which is
/// exact here: integral floats normalize to `Key::Int` at key
/// construction, so every `Float` key is non-integral with magnitude
/// below 2^53, where `i64 → f64` ordering is lossless) and are never
/// `Equal` cross-type — so an `Equal` run under this order is exactly a
/// run of identical keys.
fn key_cmp(a: &Key, b: &Key) -> Ordering {
    let (ca, cb) = (class(a), class(b));
    if ca != cb {
        return ca.cmp(&cb);
    }
    match (a, b) {
        (Key::Bool(x), Key::Bool(y)) => x.cmp(y),
        (Key::Int(x), Key::Int(y)) => x.cmp(y),
        (Key::Str(x), Key::Str(y)) => x.cmp(y),
        (Key::Float(x), Key::Float(y)) => f64::from_bits(*x)
            .partial_cmp(&f64::from_bits(*y))
            .expect("NaN keys are excluded at build time"),
        (Key::Int(x), Key::Float(y)) => (*x as f64)
            .partial_cmp(&f64::from_bits(*y))
            .expect("NaN keys are excluded at build time"),
        (Key::Float(x), Key::Int(y)) => f64::from_bits(*x)
            .partial_cmp(&(*y as f64))
            .expect("NaN keys are excluded at build time"),
        _ => unreachable!("cross-class pairs are ordered by class rank"),
    }
}

/// Same-class ordering of an indexed key against a bound constant,
/// replicating [`Value::compare`] exactly — including its `f64` widening
/// for mixed `Int`/`Float` pairs, so the selected window is precisely
/// the set of rows `cmp_truth` would keep. Monotone over [`key_cmp`]
/// order (the `i64 → f64` widening is order-preserving), which is what
/// makes binary search with it sound. Caller guarantees the constant is
/// in the key's class and is not `NULL`/`NaN`.
fn key_cmp_value(k: &Key, v: &Value) -> Ordering {
    let within = match (k, v) {
        (Key::Bool(a), Value::Bool(b)) => a.cmp(b),
        (Key::Int(a), Value::Int(b)) => a.cmp(b),
        (Key::Int(a), Value::Float(b)) => return (*a as f64).partial_cmp(b).expect("NaN guarded"),
        (Key::Float(a), Value::Int(b)) => {
            return f64::from_bits(*a)
                .partial_cmp(&(*b as f64))
                .expect("NaN keys are excluded at build time")
        }
        (Key::Float(a), Value::Float(b)) => {
            return f64::from_bits(*a).partial_cmp(b).expect("NaN guarded")
        }
        (Key::Str(a), Value::Str(b)) => a.as_str().cmp(b.as_str()),
        _ => unreachable!("caller narrows to the constant's class first"),
    };
    within
}

/// A resolved index probe: the constant equality prefix (exact keys, in
/// index-column order) plus at most one lower and one upper bound on the
/// final column. Built once at step-materialization time from the
/// consumed filters (see `Ctx::materialize_steps`).
pub(crate) struct IndexProbe {
    /// Exact keys for the leading equality columns (may be empty: a
    /// range-only probe on a single-column index).
    pub(crate) eq: Vec<Key>,
    /// Lower bound on the final column (`Gt`/`Ge`).
    pub(crate) lo: Option<(CmpOp, Value)>,
    /// Upper bound on the final column (`Lt`/`Le`).
    pub(crate) hi: Option<(CmpOp, Value)>,
    /// Statically empty: some consumed constant was `NULL`/`NaN`, or the
    /// two bounds come from different comparability classes — no row can
    /// satisfy the conjunction, so the search skips the index entirely.
    pub(crate) empty: bool,
}

/// The executable form of an [`Access::IndexRange`](arc_plan::Access)
/// step: which columns the index sorts, the resolved probe, and the
/// consumed filters' addresses (the selection-cache key component).
pub(crate) struct IndexPlan {
    /// Indexed columns: the equality prefix in order, then the single
    /// range-bound column.
    pub(crate) cols: Vec<usize>,
    /// The resolved probe (exact prefix keys + bounds).
    pub(crate) probe: IndexProbe,
    /// Addresses of the consumed predicates — combined with the
    /// vectorized-prefix addresses to key the per-`Ctx` selection cache.
    pub(crate) key: Vec<usize>,
}

impl IndexPlan {
    /// Re-derive the bound semantics of an index-range step from its
    /// consumed filter indices, using the *same* classifier the planner
    /// used ([`const_cmp`]) so the two can never disagree. Returns
    /// `None` when the consumed filters don't re-derive — the engine
    /// maps that onto an internal-invariant error.
    pub(crate) fn build(
        cols: &[usize],
        consumed: &[usize],
        filters: &[&Predicate],
        var: &str,
        schema: &[String],
    ) -> Option<IndexPlan> {
        let (&range_col, eq_cols) = cols.split_last()?;
        let mut eq: Vec<Option<Key>> = vec![None; eq_cols.len()];
        let mut lo: Option<(CmpOp, Value)> = None;
        let mut hi: Option<(CmpOp, Value)> = None;
        let mut empty = false;
        for &f in consumed {
            let (col, op, value) = const_cmp(filters.get(f)?, var, schema)?;
            match op {
                CmpOp::Eq => {
                    let p = eq_cols.iter().position(|&c| c == col)?;
                    if eq[p].is_some() {
                        return None; // one equality per prefix column
                    }
                    // A NULL/NaN equality constant matches no row; the
                    // placeholder key is never compared (`empty` wins).
                    eq[p] = Some(match value.join_key() {
                        Some(k) => k,
                        None => {
                            empty = true;
                            Key::Int(0)
                        }
                    });
                }
                CmpOp::Lt | CmpOp::Le => {
                    if col != range_col || hi.is_some() {
                        return None;
                    }
                    empty |= value_class(value).is_none();
                    hi = Some((op, value.clone()));
                }
                CmpOp::Gt | CmpOp::Ge => {
                    if col != range_col || lo.is_some() {
                        return None;
                    }
                    empty |= value_class(value).is_none();
                    lo = Some((op, value.clone()));
                }
                CmpOp::Ne => return None, // the planner never consumes ≠
            }
        }
        if lo.is_none() && hi.is_none() {
            return None; // an index-range step always has a range bound
        }
        // Bounds from two different comparability classes reject every
        // row (one of the two comparisons is Unknown for any value).
        if let (Some((_, l)), Some((_, h))) = (&lo, &hi) {
            if value_class(l) != value_class(h) {
                empty = true;
            }
        }
        let eq: Vec<Key> = eq.into_iter().collect::<Option<_>>()?;
        Some(IndexPlan {
            cols: cols.to_vec(),
            probe: IndexProbe { eq, lo, hi, empty },
            key: consumed
                .iter()
                .map(|&f| filters[f] as *const Predicate as usize)
                .collect(),
        })
    }

    /// Row-wise equivalent of this plan's consumed filters — the
    /// **degraded** scan path when the memory budget denies the
    /// ordered-index (or selection) build. Keeps exactly the rows
    /// [`OrderedIndex::search`] would select: the equality prefix under
    /// hash-probe (key) semantics, the range bounds under
    /// [`cmp_truth`](arc_core::value::cmp_truth).
    pub(crate) fn row_matches(&self, row: &[Value]) -> bool {
        if self.probe.empty {
            return false;
        }
        let (&range_col, eq_cols) = self
            .cols
            .split_last()
            .expect("an index plan always has columns");
        for (k, &c) in self.probe.eq.iter().zip(eq_cols) {
            match row[c].join_key() {
                Some(rk) if rk == *k => {}
                _ => return false,
            }
        }
        let in_bound = |b: &Option<(CmpOp, Value)>| {
            b.iter()
                .all(|(op, v)| arc_core::value::cmp_truth(&row[range_col], *op, v).is_true())
        };
        in_bound(&self.probe.lo) && in_bound(&self.probe.hi)
    }
}

/// An ordered secondary index over one or more columns of a relation:
/// the sorted permutation plus the (flattened) key tuples it sorts by.
pub(crate) struct OrderedIndex {
    /// Number of indexed columns (key tuple width).
    width: usize,
    /// Key tuples, flattened: entry `i` owns `keys[i*width..(i+1)*width]`.
    keys: Vec<Key>,
    /// Row ids, parallel to the key tuples, in sorted order.
    perm: Vec<u32>,
    /// Source row count at build time (the cache's invalidation check,
    /// same rule as the relation's column cache).
    rows: usize,
}

impl OrderedIndex {
    /// Build the index over `cols` of `rows`. Rows where any indexed
    /// column lacks a join key (`NULL`/`NaN`) are excluded — they can
    /// never satisfy the equality or ordering predicates a probe encodes.
    pub(crate) fn build(rows: &[Tuple], cols: &[usize]) -> OrderedIndex {
        let width = cols.len().max(1);
        let mut entries: Vec<(Vec<Key>, u32)> = Vec::with_capacity(rows.len());
        for (i, row) in rows.iter().enumerate() {
            if let Some(key) = Relation::key_for(row, cols) {
                entries.push((key, i as u32));
            }
        }
        entries.sort_unstable_by(|a, b| cmp_tuples(&a.0, &b.0).then_with(|| a.1.cmp(&b.1)));
        let mut keys = Vec::with_capacity(entries.len() * width);
        let mut perm = Vec::with_capacity(entries.len());
        for (key, rid) in entries {
            keys.extend(key);
            perm.push(rid);
        }
        OrderedIndex {
            width,
            keys,
            perm,
            rows: rows.len(),
        }
    }

    /// Source row count at build time (cache invalidation).
    pub(crate) fn rows(&self) -> usize {
        self.rows
    }

    /// Number of indexed (non-NULL/NaN) entries.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.perm.len()
    }

    fn key(&self, entry: usize, col: usize) -> &Key {
        &self.keys[entry * self.width + col]
    }

    /// First entry in `[lo, hi)` where `pred` on column `col` turns
    /// false (`partition_point` over a slice of the permutation).
    fn partition(
        &self,
        mut lo: usize,
        mut hi: usize,
        col: usize,
        pred: impl Fn(&Key) -> bool,
    ) -> usize {
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if pred(self.key(mid, col)) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Row ids satisfying the probe, in **ascending row order** (the
    /// same artifact a vectorized scan's selection vector is, so the two
    /// compose and the morsel partitioner needs no special case).
    pub(crate) fn search(&self, probe: &IndexProbe) -> Vec<u32> {
        if probe.empty {
            return Vec::new();
        }
        // Narrow to the equality prefix, one column at a time: each
        // column's keys are sorted within the window where all previous
        // columns already match, and exact-key runs are contiguous
        // because `key_cmp` is `Equal` only for identical keys.
        let (mut lo, mut hi) = (0usize, self.perm.len());
        for (col, k) in probe.eq.iter().enumerate() {
            lo = self.partition(lo, hi, col, |x| key_cmp(x, k) == Ordering::Less);
            hi = self.partition(lo, hi, col, |x| key_cmp(x, k) != Ordering::Greater);
            if lo == hi {
                return Vec::new();
            }
        }
        // Narrow to the bound constants' comparability class on the
        // range column: a constant orders only against its own class
        // (everything else is `Unknown`, which the row path rejects).
        let col = probe.eq.len();
        if let Some(c) = [&probe.lo, &probe.hi]
            .into_iter()
            .flatten()
            .filter_map(|(_, v)| value_class(v))
            .next()
        {
            lo = self.partition(lo, hi, col, |x| class(x) < c);
            hi = self.partition(lo, hi, col, |x| class(x) <= c);
        }
        // Apply the bounds with `Value::compare` semantics.
        if let Some((op, v)) = &probe.lo {
            let strict = *op == CmpOp::Gt;
            lo = self.partition(lo, hi, col, |x| {
                let ord = key_cmp_value(x, v);
                ord == Ordering::Less || (strict && ord == Ordering::Equal)
            });
        }
        if let Some((op, v)) = &probe.hi {
            let strict = *op == CmpOp::Lt;
            hi = self.partition(lo, hi, col, |x| {
                let ord = key_cmp_value(x, v);
                ord == Ordering::Less || (!strict && ord == Ordering::Equal)
            });
        }
        let mut out: Vec<u32> = self.perm[lo..hi].to_vec();
        out.sort_unstable();
        out
    }
}

/// Lexicographic [`key_cmp`] over key tuples (the index sort order).
fn cmp_tuples(a: &[Key], b: &[Key]) -> Ordering {
    for (x, y) in a.iter().zip(b) {
        match key_cmp(x, y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

// Indexes are cached on relations behind `Arc` and shared read-only
// across pool workers; keep that a compile-time fact.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<OrderedIndex>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use arc_core::value::cmp_truth;

    fn rel() -> Relation {
        // Mixed-type column A with NULL/NaN noise, plus a B column for
        // multi-column prefixes.
        Relation::from_rows(
            "R",
            &["A", "B"],
            (0..400i64)
                .map(|i| {
                    vec![
                        match i % 7 {
                            0 => Value::Null,
                            1 => Value::Float(f64::NAN),
                            2 => Value::Float(i as f64 + 0.5),
                            3 => Value::Float(i as f64), // integral: keys as Int
                            4 => Value::Str(format!("s{:03}", i % 50)),
                            5 => Value::Bool(i % 2 == 0),
                            _ => Value::Int(i % 90),
                        },
                        Value::Int(i % 4),
                    ]
                })
                .collect(),
        )
    }

    /// The reference: the rows the row path would keep for the same
    /// conjunction of consumed filters.
    fn row_reference(
        rel: &Relation,
        eq: &[(usize, Value)],
        col: usize,
        probe: &IndexProbe,
    ) -> Vec<u32> {
        rel.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                eq.iter().all(|(c, v)| {
                    // Equality prefix uses hash-probe (key) semantics.
                    match (row[*c].join_key(), v.join_key()) {
                        (Some(a), Some(b)) => a == b,
                        _ => false,
                    }
                }) && probe
                    .lo
                    .iter()
                    .all(|(op, v)| cmp_truth(&row[col], *op, v).is_true())
                    && probe
                        .hi
                        .iter()
                        .all(|(op, v)| cmp_truth(&row[col], *op, v).is_true())
            })
            .map(|(i, _)| i as u32)
            .collect()
    }

    #[test]
    fn range_search_matches_cmp_truth_per_class() {
        let rel = rel();
        let idx = OrderedIndex::build(&rel.rows, &[0]);
        assert!(idx.len() < rel.len(), "NULL/NaN rows are excluded");
        let cases = vec![
            (
                Some((CmpOp::Gt, Value::Int(40))),
                Some((CmpOp::Le, Value::Int(70))),
            ),
            (Some((CmpOp::Ge, Value::Float(39.5))), None),
            (None, Some((CmpOp::Lt, Value::Float(10.75)))),
            (
                Some((CmpOp::Gt, Value::str("s01"))),
                Some((CmpOp::Lt, Value::str("s040"))),
            ),
            (Some((CmpOp::Ge, Value::Bool(true))), None),
            // Contradictory interval: empty, not negative.
            (
                Some((CmpOp::Gt, Value::Int(70))),
                Some((CmpOp::Lt, Value::Int(40))),
            ),
        ];
        for (lo, hi) in cases {
            let probe = IndexProbe {
                eq: Vec::new(),
                lo: lo.clone(),
                hi: hi.clone(),
                empty: false,
            };
            let got = idx.search(&probe);
            let want = row_reference(&rel, &[], 0, &probe);
            assert_eq!(got, want, "bounds {lo:?} / {hi:?}");
            assert!(got.windows(2).all(|w| w[0] < w[1]), "ascending row order");
        }
    }

    #[test]
    fn eq_prefix_narrows_before_the_range_bound() {
        let rel = rel();
        let idx = OrderedIndex::build(&rel.rows, &[1, 0]);
        let probe = IndexProbe {
            eq: vec![Key::Int(2)],
            lo: Some((CmpOp::Gt, Value::Int(10))),
            hi: Some((CmpOp::Le, Value::Int(60))),
            empty: false,
        };
        let got = idx.search(&probe);
        let want = row_reference(&rel, &[(1, Value::Int(2))], 0, &probe);
        assert_eq!(got, want);
        assert!(!got.is_empty(), "fixture must exercise the window");
    }

    #[test]
    fn unmatchable_probes_are_empty() {
        let rel = rel();
        let idx = OrderedIndex::build(&rel.rows, &[0]);
        // Statically empty probe (NULL/NaN constant or cross-class pair).
        let probe = IndexProbe {
            eq: Vec::new(),
            lo: Some((CmpOp::Gt, Value::Int(0))),
            hi: None,
            empty: true,
        };
        assert!(idx.search(&probe).is_empty());
        // Missing equality key: empty without touching the range logic.
        let idx2 = OrderedIndex::build(&rel.rows, &[1, 0]);
        let probe = IndexProbe {
            eq: vec![Key::Int(99)],
            lo: Some((CmpOp::Gt, Value::Int(0))),
            hi: None,
            empty: false,
        };
        assert!(idx2.search(&probe).is_empty());
    }

    #[test]
    fn cache_rebuilds_after_growth_and_survives_requests() {
        let mut rel = rel();
        let first = rel.ordered_index(&[0]);
        assert!(
            std::sync::Arc::ptr_eq(&first, &rel.ordered_index(&[0])),
            "stable while unchanged"
        );
        rel.push(vec![Value::Int(7), Value::Int(7)]);
        let second = rel.ordered_index(&[0]);
        assert_eq!(second.rows(), rel.len());
        assert!(!std::sync::Arc::ptr_eq(&first, &second));
    }
}
