//! Outer-join annotation trees (§2.11): `left`/`full` nodes over the
//! binding list, with ON-condition absorption of body predicates.
//!
//! Outer joins always run on the materialized nested-loop path — the ON
//! absorption logic depends on seeing whole sides at once, and outer
//! workloads in the paper are small. Extending [`super::EvalStrategy`]
//! coverage to outer nodes is future work.

use super::env::{Env, Frame};
use super::partition::{pred_consts, pred_vars};
use super::Ctx;
use crate::error::{EvalError, Result};
use crate::relation::Relation;
use arc_core::ast::*;
use arc_core::value::Value;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Intermediate result of join-tree evaluation.
pub(crate) struct Joined {
    rows: Vec<Vec<Frame>>,
    vars: Vec<(Arc<str>, Arc<Vec<String>>)>,
    lits: Vec<Value>,
}

fn null_frames(vars: &[(Arc<str>, Arc<Vec<String>>)]) -> Vec<Frame> {
    vars.iter()
        .map(|(var, attrs)| Frame {
            var: var.clone(),
            attrs: attrs.clone(),
            tuple: vec![Value::Null; attrs.len()],
        })
        .collect()
}

impl<'a> Ctx<'a> {
    pub(crate) fn enumerate_join(
        &self,
        bindings: &[Binding],
        tree: &JoinTree,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        // The annotation must cover exactly the bound variables.
        let tree_vars: HashSet<&str> = tree.vars().into_iter().collect();
        if tree_vars.len() != bindings.len()
            || !bindings.iter().all(|b| tree_vars.contains(b.var.as_str()))
        {
            return Err(EvalError::JoinTreeMismatch);
        }
        let by_var: HashMap<&str, &Binding> =
            bindings.iter().map(|b| (b.var.as_str(), b)).collect();
        let mut consumed: HashSet<usize> = HashSet::new();
        let joined = self.eval_join_node(tree, &by_var, filters, &mut consumed, env)?;
        let base = env.len();
        for row in joined.rows {
            for f in &row {
                env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
            }
            // Remaining (non-consumed) filters apply as WHERE.
            let mut pass = true;
            for (i, p) in filters.iter().enumerate() {
                if consumed.contains(&i) {
                    continue;
                }
                if !self.pred_truth(p, env)?.is_true() {
                    pass = false;
                    break;
                }
            }
            let cont = if pass { cb(self, env)? } else { true };
            env.truncate(base);
            if !cont {
                return Ok(());
            }
        }
        Ok(())
    }

    fn eval_join_node(
        &self,
        node: &JoinTree,
        by_var: &HashMap<&str, &Binding>,
        filters: &[&Predicate],
        consumed: &mut HashSet<usize>,
        env: &mut Env,
    ) -> Result<Joined> {
        match node {
            JoinTree::Var(v) => {
                let binding = by_var.get(v.as_str()).ok_or(EvalError::JoinTreeMismatch)?;
                let rel: Relation = match &binding.source {
                    BindingSource::Named(name) => {
                        if let Some(r) = self.defined.get(name) {
                            r.clone()
                        } else if let Some(r) = self.catalog.relation(name) {
                            r.clone()
                        } else if self.catalog.external(name).is_some() {
                            return Err(EvalError::ExternalInJoinTree { var: v.clone() });
                        } else {
                            return Err(EvalError::UnknownRelation(name.clone()));
                        }
                    }
                    BindingSource::Collection(c) => self.collection_relation(c, env)?,
                };
                let var: Arc<str> = Arc::from(v.as_str());
                let attrs = Arc::new(rel.schema.clone());
                Ok(Joined {
                    rows: rel
                        .rows
                        .into_iter()
                        .map(|t| {
                            vec![Frame {
                                var: var.clone(),
                                attrs: attrs.clone(),
                                tuple: t,
                            }]
                        })
                        .collect(),
                    vars: vec![(var, attrs)],
                    lits: Vec::new(),
                })
            }
            JoinTree::Lit(v) => Ok(Joined {
                rows: vec![Vec::new()],
                vars: Vec::new(),
                lits: vec![v.clone()],
            }),
            JoinTree::Inner(children) => {
                let mut acc = Joined {
                    rows: vec![Vec::new()],
                    vars: Vec::new(),
                    lits: Vec::new(),
                };
                for c in children {
                    let next = self.eval_join_node(c, by_var, filters, consumed, env)?;
                    let mut rows = Vec::with_capacity(acc.rows.len() * next.rows.len().max(1));
                    for a in &acc.rows {
                        for b in &next.rows {
                            let mut row = a.clone();
                            row.extend(b.iter().cloned());
                            rows.push(row);
                        }
                    }
                    acc.rows = rows;
                    acc.vars.extend(next.vars);
                    acc.lits.extend(next.lits);
                }
                Ok(acc)
            }
            JoinTree::Left(l, r) => {
                let left = self.eval_join_node(l, by_var, filters, consumed, env)?;
                let right = self.eval_join_node(r, by_var, filters, consumed, env)?;
                let on = self.select_on_preds(&left, &right, filters, consumed, env);
                let mut rows = Vec::new();
                for lrow in &left.rows {
                    let mut matched = false;
                    for rrow in &right.rows {
                        if self.on_match(lrow, rrow, &on, env)? {
                            matched = true;
                            let mut row = lrow.clone();
                            row.extend(rrow.iter().cloned());
                            rows.push(row);
                        }
                    }
                    if !matched {
                        let mut row = lrow.clone();
                        row.extend(null_frames(&right.vars));
                        rows.push(row);
                    }
                }
                Ok(Joined {
                    rows,
                    vars: [left.vars, right.vars].concat(),
                    lits: [left.lits, right.lits].concat(),
                })
            }
            JoinTree::Full(l, r) => {
                let left = self.eval_join_node(l, by_var, filters, consumed, env)?;
                let right = self.eval_join_node(r, by_var, filters, consumed, env)?;
                let on = self.select_on_preds(&left, &right, filters, consumed, env);
                let mut rows = Vec::new();
                let mut right_matched = vec![false; right.rows.len()];
                for lrow in &left.rows {
                    let mut matched = false;
                    for (j, rrow) in right.rows.iter().enumerate() {
                        if self.on_match(lrow, rrow, &on, env)? {
                            matched = true;
                            right_matched[j] = true;
                            let mut row = lrow.clone();
                            row.extend(rrow.iter().cloned());
                            rows.push(row);
                        }
                    }
                    if !matched {
                        let mut row = lrow.clone();
                        row.extend(null_frames(&right.vars));
                        rows.push(row);
                    }
                }
                for (j, rrow) in right.rows.iter().enumerate() {
                    if !right_matched[j] {
                        let mut row = null_frames(&left.vars);
                        row.extend(rrow.iter().cloned());
                        rows.push(row);
                    }
                }
                Ok(Joined {
                    rows,
                    vars: [left.vars, right.vars].concat(),
                    lits: [left.lits, right.lits].concat(),
                })
            }
        }
    }

    /// Select the ON predicates for an outer node: body predicates whose
    /// variables are covered by the two sides (plus the outer environment)
    /// and that either touch the right side's variables or compare against
    /// one of the right side's literal leaves (paper Fig 12's
    /// `inner(11, s)` pattern).
    fn select_on_preds<'f>(
        &self,
        left: &Joined,
        right: &Joined,
        filters: &[&'f Predicate],
        consumed: &mut HashSet<usize>,
        env: &Env,
    ) -> Vec<&'f Predicate> {
        let left_vars: HashSet<&str> = left.vars.iter().map(|(v, _)| &**v).collect();
        let right_vars: HashSet<&str> = right.vars.iter().map(|(v, _)| &**v).collect();
        let mut on = Vec::new();
        for (i, p) in filters.iter().enumerate() {
            if consumed.contains(&i) {
                continue;
            }
            let vars = pred_vars(p);
            let covered = vars.iter().all(|v| {
                left_vars.contains(v.as_str()) || right_vars.contains(v.as_str()) || env.has_var(v)
            });
            if !covered {
                continue;
            }
            let touches_right = vars.iter().any(|v| right_vars.contains(v.as_str()));
            let touches_lit =
                !right.lits.is_empty() && pred_consts(p).iter().any(|c| right.lits.contains(c));
            if touches_right || touches_lit {
                consumed.insert(i);
                on.push(*p);
            }
        }
        on
    }

    fn on_match(
        &self,
        lrow: &[Frame],
        rrow: &[Frame],
        on: &[&Predicate],
        env: &mut Env,
    ) -> Result<bool> {
        let base = env.len();
        for f in lrow.iter().chain(rrow.iter()) {
            env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
        }
        let mut ok = true;
        for p in on {
            if !self.pred_truth(p, env)?.is_true() {
                ok = false;
                break;
            }
        }
        env.truncate(base);
        Ok(ok)
    }
}
