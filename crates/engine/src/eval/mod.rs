//! The evaluator: ARC's executable semantics, as an operator pipeline.
//!
//! Collections are evaluated by enumerating quantifier bindings — the
//! `for x in X: for y in Y: if …: yield …` strategy the paper uses to
//! *define* the semantics (§2.3) — extended with:
//!
//! * grouping scopes with **multiple aggregates over one scope** (§2.5, the
//!   FIO pattern) and `γ∅` ("group by true") producing exactly one group;
//! * correlated (lateral) nested collections (§2.4);
//! * outer-join annotations over the binding list (§2.11), where the ON
//!   condition of a `left`/`full` node absorbs the body predicates that
//!   touch its right/either side (literal leaves absorb predicates that
//!   compare against their constant);
//! * external relations solved through access patterns (§2.13.1);
//! * abstract relations checked in context (§2.13.2);
//! * nested-existential **semijoin multiplicity** under bag semantics
//!   (§2.7): head tuples emitted from inside a nested scope are
//!   deduplicated per enclosing environment;
//! * the [`Conventions`] switches — none of which change the code path
//!   through the relational structure, only value-level behaviour.
//!
//! ## Pipeline layout
//!
//! The evaluator is split into focused stages, each a submodule:
//!
//! | module         | stage                                                     |
//! |----------------|-----------------------------------------------------------|
//! | [`env`]        | runtime environments (frames of bound range variables)    |
//! | [`partition`]  | body analysis (re-exported from [`arc_plan::analysis`])   |
//! | [`scalar`]     | scalar & predicate evaluation, comparisons, arithmetic    |
//! | [`formula`]    | boolean formula / sentence evaluation                     |
//! | [`quantifier`] | the binding loop: executes `arc-plan` scope plans         |
//! | [`semijoin`]   | decorrelated `∃`/`¬∃`: build-once set-level semi/anti-join|
//! | [`parallel`]   | partitioned (morsel-driven) scope execution via `arc-exec`|
//! | [`aggregate`]  | grouping scopes: accumulation, per-group verdicts         |
//! | [`output`]     | output assembly: head-tuple construction and emission     |
//! | [`join`]       | outer-join annotation trees (`left`/`full`, §2.11)        |
//! | [`strategy`]   | the [`EvalStrategy`] seam + `ARC_THREADS` parallelism     |
//!
//! The **plan seam** sits inside the binding loop: every quantifier scope
//! is described to [`arc_plan::plan_scope`] and the returned physical
//! plan — binding order, per-step scan/hash-probe/external/abstract
//! access, pushed-down filters — is executed by [`quantifier`]. Plans are
//! **cached** (per-`Ctx` by scope identity + outer signature; globally by
//! program hash — see [`arc_plan::cache`]), so correlated scopes plan
//! once, not once per outer row. Boolean `∃`/`¬∃` scopes whose
//! correlation is a pure equi-join go further: [`semijoin`] evaluates the
//! scope body **once**, keys a hash set on the correlated columns, and
//! answers every outer row with an O(1) probe — execution, not just
//! planning, amortizes across outer rows. Under the default
//! [`EvalStrategy::Planned`] each join independently selects its
//! algorithm and results are bag-identical to the paper's semantics; the
//! [`EvalStrategy::NestedLoop`]/[`EvalStrategy::HashJoin`] force modes pin
//! declaration order and leaf filters, producing the *same environments
//! in the same order* as each other — tuple-for-tuple identical. With
//! `ARC_THREADS > 1` (or [`Engine::with_threads`]) a scope whose plan has
//! a partition axis executes its outer scan in parallel morsels — the
//! ordered merge keeps even that path emission-order identical. The
//! [`Engine::explain_collection`]/[`Engine::explain_program`] renderers
//! (in [`crate::explain`]) show the plan a query would execute, including
//! the `partition(n)` operator when the engine runs parallel.

pub mod aggregate;
pub mod env;
pub mod formula;
pub(crate) mod index;
pub mod join;
pub mod output;
pub mod parallel;
pub(crate) mod profile;
pub mod quantifier;
pub mod scalar;
pub mod semijoin;
pub mod strategy;
pub mod vector;

/// Body analysis: predicate-role partitioning and free-variable
/// computation. The analysis itself lives in [`arc_plan::analysis`] — the
/// shared front half of both the planner and the evaluator, so the two
/// can never disagree on what counts as a filter, an assignment, or a
/// free variable. This module re-exports the pieces the evaluator
/// consumes.
pub mod partition {
    pub(crate) use arc_plan::analysis::{partition, pred_consts, pred_vars, Parts};
}

pub(crate) use env::Env;
pub use strategy::EvalStrategy;

/// Key of the per-`Ctx` plan cache: *(binding-list address, outer
/// signature, statistics epoch, boolean planning role)*.
pub(crate) type PlanCacheKey = (usize, u64, u64, bool);

/// Per-query cache of vectorized scan selections — see [`Ctx::selections`].
pub(crate) type SelectionCache = RefCell<HashMap<(usize, Vec<usize>), Arc<Vec<u32>>>>;

use crate::catalog::Catalog;
use crate::error::Result;
use crate::relation::Relation;
use arc_core::ast::{Collection, Formula};
use arc_core::conventions::Conventions;
use arc_core::value::Truth;
use arc_plan::ScopePlan;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// The evaluation engine: a catalog plus a convention profile plus an
/// evaluation strategy plus a parallelism budget.
pub struct Engine<'c> {
    pub(crate) catalog: &'c Catalog,
    /// The convention profile queries are interpreted under (§2.6/§2.7).
    pub conventions: Conventions,
    /// How quantifier scopes are planned (see [`EvalStrategy`]). Stored as
    /// a `Result` so a malformed environment override surfaces as a normal
    /// engine error on the first evaluation instead of panicking at
    /// construction.
    strategy: std::result::Result<EvalStrategy, crate::error::EvalError>,
    /// Parallelism for partitioned scope execution (`ARC_THREADS`); same
    /// deferred-error story as `strategy`.
    threads: std::result::Result<usize, crate::error::EvalError>,
    /// Set-level decorrelation of boolean quantifier scopes
    /// (`ARC_DECORRELATE`, default on); same deferred-error story.
    decorrelate: std::result::Result<bool, crate::error::EvalError>,
    /// Vectorized columnar execution (`ARC_VECTOR`, default on); same
    /// deferred-error story.
    vectorize: std::result::Result<bool, crate::error::EvalError>,
    /// Ordered secondary indexes / index-range access paths
    /// (`ARC_INDEX`, default on); same deferred-error story.
    indexes: std::result::Result<bool, crate::error::EvalError>,
    /// Execution tracing (`ARC_TRACE`, default **off**): timing of
    /// index/selection/semi-join builds into the `arc-trace` registry
    /// and wall-time stamps on execution profiles; same deferred-error
    /// story.
    trace: std::result::Result<bool, crate::error::EvalError>,
    /// Hierarchical span recording (`ARC_SPANS`, default **off**): every
    /// evaluation context gets a per-lane span sink and the
    /// query/plan/scope/step/morsel seams record begin/end timestamps
    /// into it; same deferred-error story.
    spans: std::result::Result<bool, crate::error::EvalError>,
    /// When set, every evaluation context this engine creates records
    /// per-operator actuals into the sink (the `EXPLAIN ANALYZE` /
    /// [`Engine::profile_collection`] path; `None` for ordinary
    /// evaluation, which then pays only an `Option` check per row).
    profile: Option<arc_trace::ProfileSink>,
    /// When set, evaluation contexts record spans into *this* sink
    /// instead of a per-context one (the [`Engine::span_trace_*`]
    /// timeline-export path, which needs the spans back afterwards).
    /// Implies span recording regardless of the `spans` knob.
    pub(crate) span_sink: Option<arc_trace::SpanSink>,
    /// Lazily-built sink for the bare `spans` knob: allocated once per
    /// engine on the first evaluation and [`reset`](arc_trace::SpanSink::reset)
    /// per evaluation, so `ARC_SPANS=on` pays ring-buffer *recording*
    /// per query, not ring-buffer *allocation* (the slabs are hundreds
    /// of KB for a multi-lane sink). Never read back — the knob path
    /// records and drops; exporters attach [`Engine::span_sink`]
    /// instead, which always wins.
    knob_sink: std::sync::OnceLock<arc_trace::SpanSink>,
}

impl<'c> Engine<'c> {
    /// Create an engine over a catalog with the given conventions.
    ///
    /// The evaluation strategy defaults to [`EvalStrategy::from_env`]
    /// ([`EvalStrategy::Planned`] when no override is set), so the full
    /// test suite can be re-run under a forced strategy by setting
    /// `ARC_EVAL_STRATEGY=hash-join` (or `nested-loop`) without touching
    /// any call site; parallelism defaults to
    /// [`strategy::threads_from_env`] (`ARC_THREADS`, sequential when
    /// unset) the same way. A malformed value of either variable is
    /// reported by the first evaluation as
    /// [`EvalError::Config`](crate::error::EvalError::Config).
    pub fn new(catalog: &'c Catalog, conventions: Conventions) -> Self {
        Engine {
            catalog,
            conventions,
            strategy: EvalStrategy::from_env(),
            threads: strategy::threads_from_env(),
            decorrelate: strategy::decorrelate_from_env(),
            vectorize: strategy::vectorize_from_env(),
            indexes: strategy::indexes_from_env(),
            trace: strategy::trace_from_env(),
            spans: strategy::spans_from_env(),
            profile: None,
            span_sink: None,
            knob_sink: std::sync::OnceLock::new(),
        }
    }

    /// Override the evaluation strategy (builder style).
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = Ok(strategy);
        self
    }

    /// Override the parallelism (builder style); `1` (or `0`) means
    /// sequential. Clamped to [`arc_exec::MAX_THREADS`], the same bound
    /// the `ARC_THREADS` parser enforces — an oversized value must never
    /// be able to exhaust OS threads and abort the process.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Ok(threads.clamp(1, arc_exec::MAX_THREADS));
        self
    }

    /// The strategy this engine evaluates under (an `Err` reproduces the
    /// configuration problem every evaluation would report).
    pub fn strategy(&self) -> Result<EvalStrategy> {
        self.strategy.clone()
    }

    /// The parallelism this engine evaluates under.
    pub fn threads(&self) -> Result<usize> {
        self.threads.clone()
    }

    /// Override set-level decorrelation of boolean scopes (builder style):
    /// `false` pins the per-outer-row nested path, exactly like running
    /// under `ARC_DECORRELATE=off` — tests use this to compare both paths
    /// without touching the (racy) process environment.
    pub fn with_decorrelate(mut self, decorrelate: bool) -> Self {
        self.decorrelate = Ok(decorrelate);
        self
    }

    /// Whether this engine decorrelates boolean scopes.
    pub fn decorrelate(&self) -> Result<bool> {
        self.decorrelate.clone()
    }

    /// Override vectorized columnar execution (builder style): `false`
    /// forces the row-at-a-time path everywhere, exactly like running
    /// under `ARC_VECTOR=off` — tests and the `ablation_columnar` bench
    /// use this to compare both paths without touching the (racy)
    /// process environment.
    pub fn with_vectorize(mut self, vectorize: bool) -> Self {
        self.vectorize = Ok(vectorize);
        self
    }

    /// Whether this engine runs the vectorized columnar path.
    pub fn vectorize(&self) -> Result<bool> {
        self.vectorize.clone()
    }

    /// Override ordered-index usage (builder style): `false` pins the
    /// scan/hash-probe access paths everywhere, exactly like running
    /// under `ARC_INDEX=off` — tests and the `ablation_index` bench use
    /// this to compare both paths without touching the (racy) process
    /// environment.
    pub fn with_indexes(mut self, indexes: bool) -> Self {
        self.indexes = Ok(indexes);
        self
    }

    /// Whether this engine may plan index-range access paths.
    pub fn indexes(&self) -> Result<bool> {
        self.indexes.clone()
    }

    /// Override execution tracing (builder style): `true` makes
    /// evaluation time index/selection/semi-join builds into the
    /// [`arc_trace`] registry and stamp wall time onto execution
    /// profiles, exactly like running under `ARC_TRACE=on` — tests and
    /// the `ablation_trace` bench use this to compare both modes without
    /// touching the (racy) process environment. Off (the default) keeps
    /// the hot path free of clock reads; row/call actuals in
    /// [`Engine::profile_collection`] /
    /// [`Engine::explain_analyze_collection`](crate::eval::Engine) are
    /// gathered either way.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = Ok(trace);
        self
    }

    /// Whether this engine records execution timings.
    pub fn trace(&self) -> Result<bool> {
        self.trace.clone()
    }

    /// Override hierarchical span recording (builder style): `true` makes
    /// every evaluation record begin/end spans (query → plan → scope →
    /// semi-join build → step → morsel) into bounded per-lane ring
    /// buffers, exactly like running under `ARC_SPANS=on`. Use
    /// [`Engine::span_trace_collection`](crate::explain) /
    /// `span_trace_program` to get the spans back as a Chrome-trace
    /// timeline; with only this knob the spans are recorded and dropped,
    /// which is what the `ARC_SPANS=on` CI leg and the `ablation_span`
    /// bench exercise (recording cost without export cost). Off (the
    /// default) keeps every span seam to a single `Option` check.
    pub fn with_spans(mut self, spans: bool) -> Self {
        self.spans = Ok(spans);
        self
    }

    /// Whether this engine records execution spans.
    pub fn spans(&self) -> Result<bool> {
        self.spans.clone()
    }

    /// A shallow copy of this engine with a profile sink attached: every
    /// evaluation context it creates records per-operator actuals into
    /// `sink`. The `EXPLAIN ANALYZE` entry points evaluate through this
    /// copy so ordinary engines never pay for profiling.
    pub(crate) fn with_sink(&self, sink: arc_trace::ProfileSink) -> Engine<'c> {
        Engine {
            catalog: self.catalog,
            conventions: self.conventions,
            strategy: self.strategy.clone(),
            threads: self.threads.clone(),
            decorrelate: self.decorrelate.clone(),
            vectorize: self.vectorize.clone(),
            indexes: self.indexes.clone(),
            trace: self.trace.clone(),
            spans: self.spans.clone(),
            profile: Some(sink),
            span_sink: self.span_sink.clone(),
            knob_sink: std::sync::OnceLock::new(),
        }
    }

    /// A shallow copy with a span sink attached: every evaluation context
    /// records spans into `sink` (implying span recording), so the
    /// `span_trace_*` exporters can drain them afterwards.
    pub(crate) fn with_span_sink(&self, sink: arc_trace::SpanSink) -> Engine<'c> {
        Engine {
            catalog: self.catalog,
            conventions: self.conventions,
            strategy: self.strategy.clone(),
            threads: self.threads.clone(),
            decorrelate: self.decorrelate.clone(),
            vectorize: self.vectorize.clone(),
            indexes: self.indexes.clone(),
            trace: self.trace.clone(),
            spans: Ok(true),
            profile: self.profile.clone(),
            span_sink: Some(sink),
            knob_sink: std::sync::OnceLock::new(),
        }
    }

    /// Inject a strategy-parse outcome (tests only: process environment
    /// variables are racy under parallel tests, so the typo path is tested
    /// by injection rather than by setting `ARC_EVAL_STRATEGY`).
    #[cfg(test)]
    pub(crate) fn set_strategy_result(
        &mut self,
        r: std::result::Result<EvalStrategy, crate::error::EvalError>,
    ) {
        self.strategy = r;
    }

    /// Inject a threads-parse outcome (tests only; see
    /// [`Engine::set_strategy_result`]).
    #[cfg(test)]
    pub(crate) fn set_threads_result(
        &mut self,
        r: std::result::Result<usize, crate::error::EvalError>,
    ) {
        self.threads = r;
    }

    fn ctx<'a>(
        &'a self,
        defined: &'a HashMap<String, Relation>,
        abstracts: &'a HashMap<String, Collection>,
        program: u64,
    ) -> Result<Ctx<'a>> {
        let threads = self.threads.clone()?;
        // An explicit sink (the span_trace_* path) wins; the bare knob
        // records into a per-context sink that is dropped at the end —
        // same recording cost, no export, which is what the ARC_SPANS=on
        // CI leg and the ablation bench price.
        let spans = match (&self.span_sink, self.spans.clone()?) {
            (Some(sink), _) => Some(sink.clone()),
            (None, true) => {
                // Engine-cached sink, rewound per evaluation: the knob
                // prices recording, not per-query slab allocation.
                let sink = self
                    .knob_sink
                    .get_or_init(|| arc_trace::SpanSink::with_lanes(threads));
                sink.reset();
                Some(sink.clone())
            }
            (None, false) => None,
        };
        Ok(Ctx {
            catalog: self.catalog,
            conv: self.conventions,
            strategy: self.strategy.clone()?,
            threads,
            decorrelate: self.decorrelate.clone()?,
            vectorize: self.vectorize.clone()?,
            indexes: self.indexes.clone()?,
            trace: self.trace.clone()?,
            spans,
            lane: 0,
            profile: self.profile.clone(),
            program,
            defined,
            abstracts,
            join_indexes: RefCell::new(HashMap::new()),
            distinct_estimates: RefCell::new(HashMap::new()),
            plans: RefCell::new(HashMap::new()),
            selections: RefCell::new(HashMap::new()),
            semi_builds: semijoin::SemiBuildCache::default(),
            semi_bailed: RefCell::new(std::collections::HashSet::new()),
        })
    }

    /// Evaluate a standalone query collection (no definitions).
    pub fn eval_collection(&self, c: &Collection) -> Result<Relation> {
        let (defined, abstracts) = (HashMap::new(), HashMap::new());
        let ctx = self.ctx(&defined, &abstracts, arc_plan::program_hash(c))?;
        let timer = QueryTimer::start(ctx.spans.as_ref());
        let out = ctx.collection_relation(c, &mut Env::default());
        timer.finish(ctx.spans.as_ref());
        out
    }

    /// Evaluate a boolean sentence (paper Fig 9).
    pub fn eval_sentence(&self, f: &Formula) -> Result<Truth> {
        let (defined, abstracts) = (HashMap::new(), HashMap::new());
        let ctx = self.ctx(&defined, &abstracts, arc_plan::formula_hash(f))?;
        let timer = QueryTimer::start(ctx.spans.as_ref());
        let out = ctx.formula_truth(f, &mut Env::default());
        timer.finish(ctx.spans.as_ref());
        out
    }

    /// Evaluate a collection with pre-materialized definitions and abstract
    /// relations in scope (used by the fixpoint driver).
    pub(crate) fn eval_with(
        &self,
        c: &Collection,
        defined: &HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
    ) -> Result<Relation> {
        self.ctx(defined, abstracts, arc_plan::program_hash(c))?
            .collection_relation(c, &mut Env::default())
    }

    /// Evaluate a sentence with definitions in scope.
    pub(crate) fn eval_sentence_with(
        &self,
        f: &Formula,
        defined: &HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
    ) -> Result<Truth> {
        self.ctx(defined, abstracts, arc_plan::formula_hash(f))?
            .formula_truth(f, &mut Env::default())
    }
}

/// Top-level query timing, attached at the engine entry points
/// (`eval_collection` / `eval_sentence` / `eval_program`): one always-on
/// sample into the `engine.query.latency` quantile histogram (gated only
/// by the process-wide `arc_trace::quantile::recording()` switch), plus
/// the enclosing `Query` span when span recording is on.
pub(crate) struct QueryTimer {
    wall: Option<std::time::Instant>,
    span: Option<u64>,
}

impl QueryTimer {
    pub(crate) fn start(spans: Option<&arc_trace::SpanSink>) -> QueryTimer {
        QueryTimer {
            wall: arc_trace::quantile::recording().then(std::time::Instant::now),
            span: spans.and_then(|s| s.start(0)),
        }
    }

    pub(crate) fn finish(self, spans: Option<&arc_trace::SpanSink>) {
        if let (Some(sink), Some(t0)) = (spans, self.span) {
            sink.complete(0, arc_trace::SpanKind::Query, arc_trace::OpId::scope(0), t0);
        }
        if let Some(t0) = self.wall {
            let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            crate::metrics::query_latency().record_nanos(nanos);
        }
    }
}

/// The per-query evaluation context threaded through every pipeline stage.
pub(crate) struct Ctx<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) conv: Conventions,
    pub(crate) strategy: EvalStrategy,
    /// Parallelism budget: scopes with a partition axis scatter their
    /// outer scan across this many pool threads. Worker contexts are
    /// forked with `threads = 1`, so parallelism never nests.
    pub(crate) threads: usize,
    /// Whether boolean quantifier scopes with pure equi-join correlation
    /// execute as build-once set-level semi/anti-joins (see
    /// [`semijoin`]). Off pins the per-outer-row nested path.
    pub(crate) decorrelate: bool,
    /// Whether scans, index builds, and semi-join key extraction run the
    /// vectorized columnar kernels (see [`vector`]). Off pins the
    /// row-at-a-time path.
    pub(crate) vectorize: bool,
    /// Whether the planner may choose the index-range access path (see
    /// [`index`]). Off pins scans and hash probes everywhere.
    pub(crate) indexes: bool,
    /// Whether execution records wall times (`ARC_TRACE`, default off):
    /// gates every clock read on the evaluation path, so the default
    /// engine never touches `Instant::now`.
    pub(crate) trace: bool,
    /// Span sink for hierarchical begin/end timeline events
    /// (`ARC_SPANS` / [`Engine::with_spans`] / the `span_trace_*`
    /// exporters); `None` on ordinary evaluation, which then pays one
    /// `Option` check per span seam. Cloned into every worker context —
    /// lanes write to disjoint ring buffers.
    pub(crate) spans: Option<arc_trace::SpanSink>,
    /// Worker lane this context executes on: 0 for the coordinator (and
    /// all sequential evaluation), the worker's lane id inside a
    /// partitioned scope. Stamps spans and morsel events.
    pub(crate) lane: usize,
    /// Per-operator actuals sink, when this evaluation is profiled (see
    /// [`profile`]); `None` on ordinary evaluation. Cloned into every
    /// worker context the parallel executor forks — all tallies merge
    /// into one profile.
    pub(crate) profile: Option<arc_trace::ProfileSink>,
    /// Structural hash of the top-level query this context evaluates
    /// (the global plan cache's program key).
    pub(crate) program: u64,
    /// Materialized intensional relations (views/CTEs/fixpoint results).
    pub(crate) defined: &'a HashMap<String, Relation>,
    /// Abstract relations: checked in context, never materialized.
    pub(crate) abstracts: &'a HashMap<String, Collection>,
    /// Per-query cache of equi-join hash indexes, keyed by relation
    /// address + key columns (addresses are stable for the `Ctx` lifetime;
    /// see `Ctx::join_index`). Correlated scopes that still run the nested
    /// path (non-equi correlation, force modes, `ARC_DECORRELATE=off`)
    /// re-enter `enumerate` once per outer environment and reuse these
    /// instead of rebuilding; decorrelated boolean scopes skip the
    /// re-entry entirely and probe [`Ctx::semi_builds`] instead.
    pub(crate) join_indexes: quantifier::JoinIndexCache,
    /// Per-query cache of distinct-key estimates (same keying scheme),
    /// feeding the planner's greedy join ordering.
    pub(crate) distinct_estimates: RefCell<HashMap<(usize, Vec<usize>), usize>>,
    /// Per-query plan cache keyed by (binding-list address, outer
    /// signature, statistics epoch, boolean role) — the fast path in
    /// front of the global plan cache (see `Ctx::scope_plan`).
    pub(crate) plans: RefCell<HashMap<PlanCacheKey, Arc<ScopePlan>>>,
    /// Per-query cache of vectorized scan selections, keyed by relation
    /// address + the addresses of the vectorized filter prefix (both
    /// stable for the `Ctx` lifetime). Correlated scopes that re-enter
    /// `enumerate` per outer row recompute nothing: the selection of a
    /// constant-filter scan is outer-independent by construction.
    pub(crate) selections: SelectionCache,
    /// Build-once key sets of decorrelated boolean scopes, keyed by the
    /// build plan's [`Arc`] address and shared — through the `Arc` — with
    /// every worker context the parallel executor forks, so all workers
    /// probe the same build (see [`semijoin`]). Invalidated with the
    /// statistics epoch implicitly: a new epoch yields a new plan `Arc`.
    pub(crate) semi_builds: semijoin::SemiBuildCache,
    /// Negative cache of boolean scopes that bailed out of decorrelation
    /// (by binding-list address): the per-outer-row probe path skips the
    /// eligibility/plan work after the first bail (see
    /// [`Ctx::semijoin_truth`]).
    pub(crate) semi_bailed: RefCell<std::collections::HashSet<usize>>,
}
