//! The evaluator: ARC's executable semantics, as an operator pipeline.
//!
//! Collections are evaluated by enumerating quantifier bindings — the
//! `for x in X: for y in Y: if …: yield …` strategy the paper uses to
//! *define* the semantics (§2.3) — extended with:
//!
//! * grouping scopes with **multiple aggregates over one scope** (§2.5, the
//!   FIO pattern) and `γ∅` ("group by true") producing exactly one group;
//! * correlated (lateral) nested collections (§2.4);
//! * outer-join annotations over the binding list (§2.11), where the ON
//!   condition of a `left`/`full` node absorbs the body predicates that
//!   touch its right/either side (literal leaves absorb predicates that
//!   compare against their constant);
//! * external relations solved through access patterns (§2.13.1);
//! * abstract relations checked in context (§2.13.2);
//! * nested-existential **semijoin multiplicity** under bag semantics
//!   (§2.7): head tuples emitted from inside a nested scope are
//!   deduplicated per enclosing environment;
//! * the [`Conventions`] switches — none of which change the code path
//!   through the relational structure, only value-level behaviour.
//!
//! ## Pipeline layout
//!
//! The evaluator is split into focused stages, each a submodule:
//!
//! | module         | stage                                                     |
//! |----------------|-----------------------------------------------------------|
//! | [`env`]        | runtime environments (frames of bound range variables)    |
//! | [`partition`]  | body analysis (re-exported from [`arc_plan::analysis`])   |
//! | [`scalar`]     | scalar & predicate evaluation, comparisons, arithmetic    |
//! | [`formula`]    | boolean formula / sentence evaluation                     |
//! | [`quantifier`] | the binding loop: executes `arc-plan` scope plans         |
//! | [`semijoin`]   | decorrelated `∃`/`¬∃`: build-once set-level semi/anti-join|
//! | [`parallel`]   | partitioned (morsel-driven) scope execution via `arc-exec`|
//! | [`aggregate`]  | grouping scopes: accumulation, per-group verdicts         |
//! | [`output`]     | output assembly: head-tuple construction and emission     |
//! | [`join`]       | outer-join annotation trees (`left`/`full`, §2.11)        |
//! | [`strategy`]   | the [`EvalStrategy`] seam + `ARC_THREADS` parallelism     |
//!
//! The **plan seam** sits inside the binding loop: every quantifier scope
//! is described to [`arc_plan::plan_scope`] and the returned physical
//! plan — binding order, per-step scan/hash-probe/external/abstract
//! access, pushed-down filters — is executed by [`quantifier`]. Plans are
//! **cached** (per-`Ctx` by scope identity + outer signature; globally by
//! program hash — see [`arc_plan::cache`]), so correlated scopes plan
//! once, not once per outer row. Boolean `∃`/`¬∃` scopes whose
//! correlation is a pure equi-join go further: [`semijoin`] evaluates the
//! scope body **once**, keys a hash set on the correlated columns, and
//! answers every outer row with an O(1) probe — execution, not just
//! planning, amortizes across outer rows. Under the default
//! [`EvalStrategy::Planned`] each join independently selects its
//! algorithm and results are bag-identical to the paper's semantics; the
//! [`EvalStrategy::NestedLoop`]/[`EvalStrategy::HashJoin`] force modes pin
//! declaration order and leaf filters, producing the *same environments
//! in the same order* as each other — tuple-for-tuple identical. With
//! `ARC_THREADS > 1` (or [`Engine::with_threads`]) a scope whose plan has
//! a partition axis executes its outer scan in parallel morsels — the
//! ordered merge keeps even that path emission-order identical. The
//! [`Engine::explain_collection`]/[`Engine::explain_program`] renderers
//! (in [`crate::explain`]) show the plan a query would execute, including
//! the `partition(n)` operator when the engine runs parallel.

pub mod aggregate;
pub mod env;
pub mod formula;
pub(crate) mod index;
pub mod join;
pub mod output;
pub mod parallel;
pub(crate) mod profile;
pub mod quantifier;
pub mod scalar;
pub mod semijoin;
pub mod strategy;
pub mod vector;

/// Body analysis: predicate-role partitioning and free-variable
/// computation. The analysis itself lives in [`arc_plan::analysis`] — the
/// shared front half of both the planner and the evaluator, so the two
/// can never disagree on what counts as a filter, an assignment, or a
/// free variable. This module re-exports the pieces the evaluator
/// consumes.
pub mod partition {
    pub(crate) use arc_plan::analysis::{partition, pred_consts, pred_vars, Parts};
}

pub(crate) use env::Env;
pub use strategy::EvalStrategy;

/// Key of the per-`Ctx` plan cache: *(binding-list address, outer
/// signature, statistics epoch, boolean planning role)*.
pub(crate) type PlanCacheKey = (usize, u64, u64, bool);

/// Per-query cache of vectorized scan selections — see [`Ctx::selections`].
pub(crate) type SelectionCache = RefCell<HashMap<(usize, Vec<usize>), Arc<Vec<u32>>>>;

use crate::catalog::Catalog;
use crate::error::{EvalError, Result};
use crate::relation::Relation;
use arc_core::ast::{Collection, Formula};
use arc_core::conventions::Conventions;
use arc_core::value::Truth;
use arc_guard::{seam, CancelHandle, CancelState, FaultKind, FaultPlan, QueryGuard, Trip};
use arc_plan::ScopePlan;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// How many enumeration steps ([`Ctx::guard_step`]) between guard
/// checks: amortizes the cancel-flag load and deadline clock read so the
/// per-environment cost of an armed guard stays one `Cell` bump.
const GUARD_TICK: u32 = 256;

/// Map a guard trip onto its structured engine error.
pub(crate) fn trip_error(t: Trip) -> EvalError {
    match t {
        Trip::Cancelled => EvalError::Cancelled,
        Trip::DeadlineExceeded => EvalError::DeadlineExceeded,
        Trip::MemoryBudget => EvalError::MemoryBudget,
    }
}

/// Guard plumbing shared by code that holds a guard but no [`Ctx`] (the
/// fixpoint driver): fault injection at a named check seam, then the
/// cooperative check. A `Panic` fault panics (containment is the entry
/// points' `catch_unwind`); a `Budget` fault at a check seam trips the
/// budget; a `Cancel` fault trips cancellation.
pub(crate) fn guard_check_at(guard: Option<&Arc<QueryGuard>>, at: &'static str) -> Result<()> {
    let Some(g) = guard else { return Ok(()) };
    if g.fault_armed() {
        match g.fire_fault(at) {
            Some(FaultKind::Panic) => {
                crate::metrics::guard_faults().inc();
                panic!("injected fault at seam `{at}`")
            }
            Some(FaultKind::Budget) => {
                crate::metrics::guard_faults().inc();
                g.trip(Trip::MemoryBudget);
            }
            Some(FaultKind::Cancel) => {
                crate::metrics::guard_faults().inc();
                g.trip(Trip::Cancelled);
            }
            None => {}
        }
    }
    g.check().map_err(trip_error)
}

/// Hard reservation against a guard without a [`Ctx`] (fixpoint deltas):
/// denial trips the guard and surfaces `EvalError::MemoryBudget`.
pub(crate) fn guard_reserve_hard(guard: Option<&Arc<QueryGuard>>, bytes: usize) -> Result<()> {
    match guard {
        Some(g) => g.reserve_hard(bytes).map_err(trip_error),
        None => Ok(()),
    }
}

/// The evaluation engine: a catalog plus a convention profile plus an
/// evaluation strategy plus a parallelism budget.
pub struct Engine<'c> {
    pub(crate) catalog: &'c Catalog,
    /// The convention profile queries are interpreted under (§2.6/§2.7).
    pub conventions: Conventions,
    /// How quantifier scopes are planned (see [`EvalStrategy`]). Stored as
    /// a `Result` so a malformed environment override surfaces as a normal
    /// engine error on the first evaluation instead of panicking at
    /// construction.
    strategy: std::result::Result<EvalStrategy, crate::error::EvalError>,
    /// Parallelism for partitioned scope execution (`ARC_THREADS`); same
    /// deferred-error story as `strategy`.
    threads: std::result::Result<usize, crate::error::EvalError>,
    /// Set-level decorrelation of boolean quantifier scopes
    /// (`ARC_DECORRELATE`, default on); same deferred-error story.
    decorrelate: std::result::Result<bool, crate::error::EvalError>,
    /// Vectorized columnar execution (`ARC_VECTOR`, default on); same
    /// deferred-error story.
    vectorize: std::result::Result<bool, crate::error::EvalError>,
    /// Ordered secondary indexes / index-range access paths
    /// (`ARC_INDEX`, default on); same deferred-error story.
    indexes: std::result::Result<bool, crate::error::EvalError>,
    /// Execution tracing (`ARC_TRACE`, default **off**): timing of
    /// index/selection/semi-join builds into the `arc-trace` registry
    /// and wall-time stamps on execution profiles; same deferred-error
    /// story.
    trace: std::result::Result<bool, crate::error::EvalError>,
    /// Hierarchical span recording (`ARC_SPANS`, default **off**): every
    /// evaluation context gets a per-lane span sink and the
    /// query/plan/scope/step/morsel seams record begin/end timestamps
    /// into it; same deferred-error story.
    spans: std::result::Result<bool, crate::error::EvalError>,
    /// Per-query deadline (`ARC_TIMEOUT_MS` / [`Engine::with_timeout`]);
    /// `None` means unbounded. Same deferred-error story as `strategy`.
    timeout: std::result::Result<Option<Duration>, crate::error::EvalError>,
    /// Per-query memory budget in bytes (`ARC_MEM_BUDGET` /
    /// [`Engine::with_mem_budget`]); `None` means unbounded. Builds that
    /// would exceed the budget degrade to streaming paths; only hard
    /// exhaustion aborts. Same deferred-error story.
    mem_budget: std::result::Result<Option<usize>, crate::error::EvalError>,
    /// Deterministic fault-injection plan (`ARC_FAULT` /
    /// [`Engine::with_fault`]); `None` (the default) injects nothing.
    /// Same deferred-error story.
    fault: std::result::Result<Option<FaultPlan>, crate::error::EvalError>,
    /// Cooperative cancellation state shared with every
    /// [`CancelHandle`] this engine hands out. Guards are only built
    /// when a handle was requested (or a deadline/budget/fault is
    /// configured), so engines that never cancel pay nothing.
    cancel: Arc<CancelState>,
    /// When set, every evaluation context this engine creates records
    /// per-operator actuals into the sink (the `EXPLAIN ANALYZE` /
    /// [`Engine::profile_collection`] path; `None` for ordinary
    /// evaluation, which then pays only an `Option` check per row).
    profile: Option<arc_trace::ProfileSink>,
    /// When set, evaluation contexts record spans into *this* sink
    /// instead of a per-context one (the [`Engine::span_trace_*`]
    /// timeline-export path, which needs the spans back afterwards).
    /// Implies span recording regardless of the `spans` knob.
    pub(crate) span_sink: Option<arc_trace::SpanSink>,
    /// Lazily-built sink for the bare `spans` knob: allocated once per
    /// engine on the first evaluation and [`reset`](arc_trace::SpanSink::reset)
    /// per evaluation, so `ARC_SPANS=on` pays ring-buffer *recording*
    /// per query, not ring-buffer *allocation* (the slabs are hundreds
    /// of KB for a multi-lane sink). Never read back — the knob path
    /// records and drops; exporters attach [`Engine::span_sink`]
    /// instead, which always wins.
    knob_sink: std::sync::OnceLock<arc_trace::SpanSink>,
}

impl<'c> Engine<'c> {
    /// Create an engine over a catalog with the given conventions.
    ///
    /// The evaluation strategy defaults to [`EvalStrategy::from_env`]
    /// ([`EvalStrategy::Planned`] when no override is set), so the full
    /// test suite can be re-run under a forced strategy by setting
    /// `ARC_EVAL_STRATEGY=hash-join` (or `nested-loop`) without touching
    /// any call site; parallelism defaults to
    /// [`strategy::threads_from_env`] (`ARC_THREADS`, sequential when
    /// unset) the same way. A malformed value of either variable is
    /// reported by the first evaluation as
    /// [`EvalError::Config`](crate::error::EvalError::Config).
    pub fn new(catalog: &'c Catalog, conventions: Conventions) -> Self {
        Engine {
            catalog,
            conventions,
            strategy: EvalStrategy::from_env(),
            threads: strategy::threads_from_env(),
            decorrelate: strategy::decorrelate_from_env(),
            vectorize: strategy::vectorize_from_env(),
            indexes: strategy::indexes_from_env(),
            trace: strategy::trace_from_env(),
            spans: strategy::spans_from_env(),
            timeout: strategy::timeout_from_env(),
            mem_budget: strategy::mem_budget_from_env(),
            fault: strategy::fault_from_env(),
            cancel: Arc::new(CancelState::default()),
            profile: None,
            span_sink: None,
            knob_sink: std::sync::OnceLock::new(),
        }
    }

    /// Override the evaluation strategy (builder style).
    pub fn with_strategy(mut self, strategy: EvalStrategy) -> Self {
        self.strategy = Ok(strategy);
        self
    }

    /// Override the parallelism (builder style); `1` (or `0`) means
    /// sequential. Clamped to [`arc_exec::MAX_THREADS`], the same bound
    /// the `ARC_THREADS` parser enforces — an oversized value must never
    /// be able to exhaust OS threads and abort the process.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Ok(threads.clamp(1, arc_exec::MAX_THREADS));
        self
    }

    /// The strategy this engine evaluates under (an `Err` reproduces the
    /// configuration problem every evaluation would report).
    pub fn strategy(&self) -> Result<EvalStrategy> {
        self.strategy.clone()
    }

    /// The parallelism this engine evaluates under.
    pub fn threads(&self) -> Result<usize> {
        self.threads.clone()
    }

    /// Override set-level decorrelation of boolean scopes (builder style):
    /// `false` pins the per-outer-row nested path, exactly like running
    /// under `ARC_DECORRELATE=off` — tests use this to compare both paths
    /// without touching the (racy) process environment.
    pub fn with_decorrelate(mut self, decorrelate: bool) -> Self {
        self.decorrelate = Ok(decorrelate);
        self
    }

    /// Whether this engine decorrelates boolean scopes.
    pub fn decorrelate(&self) -> Result<bool> {
        self.decorrelate.clone()
    }

    /// Override vectorized columnar execution (builder style): `false`
    /// forces the row-at-a-time path everywhere, exactly like running
    /// under `ARC_VECTOR=off` — tests and the `ablation_columnar` bench
    /// use this to compare both paths without touching the (racy)
    /// process environment.
    pub fn with_vectorize(mut self, vectorize: bool) -> Self {
        self.vectorize = Ok(vectorize);
        self
    }

    /// Whether this engine runs the vectorized columnar path.
    pub fn vectorize(&self) -> Result<bool> {
        self.vectorize.clone()
    }

    /// Override ordered-index usage (builder style): `false` pins the
    /// scan/hash-probe access paths everywhere, exactly like running
    /// under `ARC_INDEX=off` — tests and the `ablation_index` bench use
    /// this to compare both paths without touching the (racy) process
    /// environment.
    pub fn with_indexes(mut self, indexes: bool) -> Self {
        self.indexes = Ok(indexes);
        self
    }

    /// Whether this engine may plan index-range access paths.
    pub fn indexes(&self) -> Result<bool> {
        self.indexes.clone()
    }

    /// Override execution tracing (builder style): `true` makes
    /// evaluation time index/selection/semi-join builds into the
    /// [`arc_trace`] registry and stamp wall time onto execution
    /// profiles, exactly like running under `ARC_TRACE=on` — tests and
    /// the `ablation_trace` bench use this to compare both modes without
    /// touching the (racy) process environment. Off (the default) keeps
    /// the hot path free of clock reads; row/call actuals in
    /// [`Engine::profile_collection`] /
    /// [`Engine::explain_analyze_collection`](crate::eval::Engine) are
    /// gathered either way.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = Ok(trace);
        self
    }

    /// Whether this engine records execution timings.
    pub fn trace(&self) -> Result<bool> {
        self.trace.clone()
    }

    /// Override hierarchical span recording (builder style): `true` makes
    /// every evaluation record begin/end spans (query → plan → scope →
    /// semi-join build → step → morsel) into bounded per-lane ring
    /// buffers, exactly like running under `ARC_SPANS=on`. Use
    /// [`Engine::span_trace_collection`](crate::explain) /
    /// `span_trace_program` to get the spans back as a Chrome-trace
    /// timeline; with only this knob the spans are recorded and dropped,
    /// which is what the `ARC_SPANS=on` CI leg and the `ablation_span`
    /// bench exercise (recording cost without export cost). Off (the
    /// default) keeps every span seam to a single `Option` check.
    pub fn with_spans(mut self, spans: bool) -> Self {
        self.spans = Ok(spans);
        self
    }

    /// Whether this engine records execution spans.
    pub fn spans(&self) -> Result<bool> {
        self.spans.clone()
    }

    /// Set a per-query deadline (builder style): every evaluation on this
    /// engine must finish within `timeout` of its start or it surfaces
    /// [`EvalError::DeadlineExceeded`] — cooperatively, within one morsel
    /// of work of the deadline passing. Exactly like running under
    /// `ARC_TIMEOUT_MS=<millis>`.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Ok(Some(timeout));
        self
    }

    /// The per-query deadline this engine evaluates under.
    pub fn timeout(&self) -> Result<Option<Duration>> {
        self.timeout.clone()
    }

    /// Set a per-query memory budget in bytes (builder style): an
    /// allocation-heavy build (hash index, semi-join key set, column
    /// chunks, ordered index, scan selection) that would exceed the
    /// budget releases its claim and **degrades** to the corresponding
    /// streaming/nested path instead of failing (counted in
    /// `guard.degradations`); only hard exhaustion — fixpoint deltas,
    /// result growth that no fallback can avoid — surfaces
    /// [`EvalError::MemoryBudget`]. Exactly like running under
    /// `ARC_MEM_BUDGET=<bytes>` (suffixes `k`/`m`/`g` accepted).
    pub fn with_mem_budget(mut self, bytes: usize) -> Self {
        self.mem_budget = Ok((bytes > 0).then_some(bytes));
        self
    }

    /// The per-query memory budget this engine evaluates under.
    pub fn mem_budget(&self) -> Result<Option<usize>> {
        self.mem_budget.clone()
    }

    /// Arm a deterministic fault-injection plan (builder style): the
    /// `plan.at`-th visit to seam `plan.seam` fires `plan.kind` (a panic,
    /// a budget trip, or a cancellation). Exactly like running under
    /// `ARC_FAULT=<seam>:<n>[:<kind>]`; tests and the CI smoke leg use it
    /// to prove every error path leaves the engine reusable.
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Ok(Some(plan));
        self
    }

    /// A handle that cancels queries on this engine from another thread:
    /// evaluations observe the flag at the enumeration/morsel/fixpoint
    /// seams and surface [`EvalError::Cancelled`] within one morsel of
    /// work. The flag is sticky until [`CancelHandle::reset`]; requesting
    /// a handle arms guard construction for subsequent evaluations.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.arm();
        CancelHandle::new(self.cancel.clone())
    }

    /// Build the per-query guard for one engine entry — `None` when no
    /// deadline, budget, fault plan, or cancel handle is configured, so
    /// unguarded evaluation stays a handful of `Option` checks.
    pub(crate) fn make_guard(&self) -> Result<Option<Arc<QueryGuard>>> {
        let timeout = self.timeout.clone()?;
        let budget = self.mem_budget.clone()?;
        let fault = self.fault.clone()?;
        if timeout.is_none() && budget.is_none() && fault.is_none() && !self.cancel.armed() {
            return Ok(None);
        }
        Ok(Some(Arc::new(QueryGuard::new(
            timeout.map(|d| std::time::Instant::now() + d),
            budget,
            fault,
            self.cancel.armed().then(|| self.cancel.clone()),
        ))))
    }

    /// Panic containment at the engine boundary: run `f` under
    /// `catch_unwind` so a worker (or injected) panic surfaces as
    /// [`EvalError::WorkerPanic`] instead of unwinding through the
    /// caller, and count terminal guard trips into the metrics registry.
    /// The engine and its pool stay usable afterwards — per-engine caches
    /// recover via their poison-clearing locks.
    pub(crate) fn contained<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)).unwrap_or_else(|p| {
            Err(crate::error::EvalError::WorkerPanic(
                arc_guard::panic_message(p.as_ref()),
            ))
        });
        match &out {
            Err(crate::error::EvalError::Cancelled) => crate::metrics::query_cancelled().inc(),
            Err(crate::error::EvalError::DeadlineExceeded) => crate::metrics::query_timeout().inc(),
            _ => {}
        }
        out
    }

    /// A shallow copy of this engine with a profile sink attached: every
    /// evaluation context it creates records per-operator actuals into
    /// `sink`. The `EXPLAIN ANALYZE` entry points evaluate through this
    /// copy so ordinary engines never pay for profiling.
    pub(crate) fn with_sink(&self, sink: arc_trace::ProfileSink) -> Engine<'c> {
        Engine {
            catalog: self.catalog,
            conventions: self.conventions,
            strategy: self.strategy.clone(),
            threads: self.threads.clone(),
            decorrelate: self.decorrelate.clone(),
            vectorize: self.vectorize.clone(),
            indexes: self.indexes.clone(),
            trace: self.trace.clone(),
            spans: self.spans.clone(),
            timeout: self.timeout.clone(),
            mem_budget: self.mem_budget.clone(),
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
            profile: Some(sink),
            span_sink: self.span_sink.clone(),
            knob_sink: std::sync::OnceLock::new(),
        }
    }

    /// A shallow copy with a span sink attached: every evaluation context
    /// records spans into `sink` (implying span recording), so the
    /// `span_trace_*` exporters can drain them afterwards.
    pub(crate) fn with_span_sink(&self, sink: arc_trace::SpanSink) -> Engine<'c> {
        Engine {
            catalog: self.catalog,
            conventions: self.conventions,
            strategy: self.strategy.clone(),
            threads: self.threads.clone(),
            decorrelate: self.decorrelate.clone(),
            vectorize: self.vectorize.clone(),
            indexes: self.indexes.clone(),
            trace: self.trace.clone(),
            spans: Ok(true),
            timeout: self.timeout.clone(),
            mem_budget: self.mem_budget.clone(),
            fault: self.fault.clone(),
            cancel: self.cancel.clone(),
            profile: self.profile.clone(),
            span_sink: Some(sink),
            knob_sink: std::sync::OnceLock::new(),
        }
    }

    /// Inject a strategy-parse outcome (tests only: process environment
    /// variables are racy under parallel tests, so the typo path is tested
    /// by injection rather than by setting `ARC_EVAL_STRATEGY`).
    #[cfg(test)]
    pub(crate) fn set_strategy_result(
        &mut self,
        r: std::result::Result<EvalStrategy, crate::error::EvalError>,
    ) {
        self.strategy = r;
    }

    /// Inject a threads-parse outcome (tests only; see
    /// [`Engine::set_strategy_result`]).
    #[cfg(test)]
    pub(crate) fn set_threads_result(
        &mut self,
        r: std::result::Result<usize, crate::error::EvalError>,
    ) {
        self.threads = r;
    }

    fn ctx<'a>(
        &'a self,
        defined: &'a HashMap<String, Relation>,
        abstracts: &'a HashMap<String, Collection>,
        program: u64,
        guard: Option<Arc<QueryGuard>>,
    ) -> Result<Ctx<'a>> {
        let threads = self.threads.clone()?;
        // An explicit sink (the span_trace_* path) wins; the bare knob
        // records into a per-context sink that is dropped at the end —
        // same recording cost, no export, which is what the ARC_SPANS=on
        // CI leg and the ablation bench price.
        let spans = match (&self.span_sink, self.spans.clone()?) {
            (Some(sink), _) => Some(sink.clone()),
            (None, true) => {
                // Engine-cached sink, rewound per evaluation: the knob
                // prices recording, not per-query slab allocation.
                let sink = self
                    .knob_sink
                    .get_or_init(|| arc_trace::SpanSink::with_lanes(threads));
                sink.reset();
                Some(sink.clone())
            }
            (None, false) => None,
        };
        Ok(Ctx {
            catalog: self.catalog,
            conv: self.conventions,
            strategy: self.strategy.clone()?,
            threads,
            decorrelate: self.decorrelate.clone()?,
            vectorize: self.vectorize.clone()?,
            indexes: self.indexes.clone()?,
            trace: self.trace.clone()?,
            spans,
            lane: 0,
            guard,
            guard_tick: Cell::new(0),
            profile: self.profile.clone(),
            program,
            defined,
            abstracts,
            join_indexes: RefCell::new(HashMap::new()),
            distinct_estimates: RefCell::new(HashMap::new()),
            plans: RefCell::new(HashMap::new()),
            selections: RefCell::new(HashMap::new()),
            semi_builds: semijoin::SemiBuildCache::default(),
            semi_bailed: RefCell::new(std::collections::HashSet::new()),
        })
    }

    /// Evaluate a standalone query collection (no definitions).
    pub fn eval_collection(&self, c: &Collection) -> Result<Relation> {
        self.contained(|| {
            let guard = self.make_guard()?;
            let (defined, abstracts) = (HashMap::new(), HashMap::new());
            let ctx = self.ctx(&defined, &abstracts, arc_plan::program_hash(c), guard)?;
            let timer = QueryTimer::start(ctx.spans.as_ref());
            let out = ctx.collection_relation(c, &mut Env::default());
            timer.finish(ctx.spans.as_ref());
            out
        })
    }

    /// Evaluate a boolean sentence (paper Fig 9).
    pub fn eval_sentence(&self, f: &Formula) -> Result<Truth> {
        self.contained(|| {
            let guard = self.make_guard()?;
            let (defined, abstracts) = (HashMap::new(), HashMap::new());
            let ctx = self.ctx(&defined, &abstracts, arc_plan::formula_hash(f), guard)?;
            let timer = QueryTimer::start(ctx.spans.as_ref());
            let out = ctx.formula_truth(f, &mut Env::default());
            timer.finish(ctx.spans.as_ref());
            out
        })
    }

    /// Evaluate a collection with pre-materialized definitions and abstract
    /// relations in scope (used by the fixpoint driver). The guard is the
    /// **program-level** one: deadline and budget span all strata.
    pub(crate) fn eval_with(
        &self,
        c: &Collection,
        defined: &HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
        guard: Option<&Arc<QueryGuard>>,
    ) -> Result<Relation> {
        self.ctx(
            defined,
            abstracts,
            arc_plan::program_hash(c),
            guard.cloned(),
        )?
        .collection_relation(c, &mut Env::default())
    }

    /// Evaluate a sentence with definitions in scope.
    pub(crate) fn eval_sentence_with(
        &self,
        f: &Formula,
        defined: &HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
        guard: Option<&Arc<QueryGuard>>,
    ) -> Result<Truth> {
        self.ctx(
            defined,
            abstracts,
            arc_plan::formula_hash(f),
            guard.cloned(),
        )?
        .formula_truth(f, &mut Env::default())
    }
}

/// Top-level query timing, attached at the engine entry points
/// (`eval_collection` / `eval_sentence` / `eval_program`): one always-on
/// sample into the `engine.query.latency` quantile histogram (gated only
/// by the process-wide `arc_trace::quantile::recording()` switch), plus
/// the enclosing `Query` span when span recording is on.
pub(crate) struct QueryTimer {
    wall: Option<std::time::Instant>,
    span: Option<u64>,
}

impl QueryTimer {
    pub(crate) fn start(spans: Option<&arc_trace::SpanSink>) -> QueryTimer {
        QueryTimer {
            wall: arc_trace::quantile::recording().then(std::time::Instant::now),
            span: spans.and_then(|s| s.start(0)),
        }
    }

    pub(crate) fn finish(self, spans: Option<&arc_trace::SpanSink>) {
        if let (Some(sink), Some(t0)) = (spans, self.span) {
            sink.complete(0, arc_trace::SpanKind::Query, arc_trace::OpId::scope(0), t0);
        }
        if let Some(t0) = self.wall {
            let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            crate::metrics::query_latency().record_nanos(nanos);
        }
    }
}

/// The per-query evaluation context threaded through every pipeline stage.
pub(crate) struct Ctx<'a> {
    pub(crate) catalog: &'a Catalog,
    pub(crate) conv: Conventions,
    pub(crate) strategy: EvalStrategy,
    /// Parallelism budget: scopes with a partition axis scatter their
    /// outer scan across this many pool threads. Worker contexts are
    /// forked with `threads = 1`, so parallelism never nests.
    pub(crate) threads: usize,
    /// Whether boolean quantifier scopes with pure equi-join correlation
    /// execute as build-once set-level semi/anti-joins (see
    /// [`semijoin`]). Off pins the per-outer-row nested path.
    pub(crate) decorrelate: bool,
    /// Whether scans, index builds, and semi-join key extraction run the
    /// vectorized columnar kernels (see [`vector`]). Off pins the
    /// row-at-a-time path.
    pub(crate) vectorize: bool,
    /// Whether the planner may choose the index-range access path (see
    /// [`index`]). Off pins scans and hash probes everywhere.
    pub(crate) indexes: bool,
    /// Whether execution records wall times (`ARC_TRACE`, default off):
    /// gates every clock read on the evaluation path, so the default
    /// engine never touches `Instant::now`.
    pub(crate) trace: bool,
    /// Span sink for hierarchical begin/end timeline events
    /// (`ARC_SPANS` / [`Engine::with_spans`] / the `span_trace_*`
    /// exporters); `None` on ordinary evaluation, which then pays one
    /// `Option` check per span seam. Cloned into every worker context —
    /// lanes write to disjoint ring buffers.
    pub(crate) spans: Option<arc_trace::SpanSink>,
    /// Worker lane this context executes on: 0 for the coordinator (and
    /// all sequential evaluation), the worker's lane id inside a
    /// partitioned scope. Stamps spans and morsel events.
    pub(crate) lane: usize,
    /// The per-query resource guard (deadline, budget, cancellation,
    /// fault plan); `None` on unguarded evaluation, which then pays one
    /// `Option` check per seam. Shared (`Arc`) with every worker context
    /// so trips and memory charges are query-global.
    pub(crate) guard: Option<Arc<QueryGuard>>,
    /// Amortization tick for [`Ctx::guard_step`]: the cooperative check
    /// runs every [`GUARD_TICK`] enumeration steps, not every step.
    pub(crate) guard_tick: Cell<u32>,
    /// Per-operator actuals sink, when this evaluation is profiled (see
    /// [`profile`]); `None` on ordinary evaluation. Cloned into every
    /// worker context the parallel executor forks — all tallies merge
    /// into one profile.
    pub(crate) profile: Option<arc_trace::ProfileSink>,
    /// Structural hash of the top-level query this context evaluates
    /// (the global plan cache's program key).
    pub(crate) program: u64,
    /// Materialized intensional relations (views/CTEs/fixpoint results).
    pub(crate) defined: &'a HashMap<String, Relation>,
    /// Abstract relations: checked in context, never materialized.
    pub(crate) abstracts: &'a HashMap<String, Collection>,
    /// Per-query cache of equi-join hash indexes, keyed by relation
    /// address + key columns (addresses are stable for the `Ctx` lifetime;
    /// see `Ctx::join_index`). Correlated scopes that still run the nested
    /// path (non-equi correlation, force modes, `ARC_DECORRELATE=off`)
    /// re-enter `enumerate` once per outer environment and reuse these
    /// instead of rebuilding; decorrelated boolean scopes skip the
    /// re-entry entirely and probe [`Ctx::semi_builds`] instead.
    pub(crate) join_indexes: quantifier::JoinIndexCache,
    /// Per-query cache of distinct-key estimates (same keying scheme),
    /// feeding the planner's greedy join ordering.
    pub(crate) distinct_estimates: RefCell<HashMap<(usize, Vec<usize>), usize>>,
    /// Per-query plan cache keyed by (binding-list address, outer
    /// signature, statistics epoch, boolean role) — the fast path in
    /// front of the global plan cache (see `Ctx::scope_plan`).
    pub(crate) plans: RefCell<HashMap<PlanCacheKey, Arc<ScopePlan>>>,
    /// Per-query cache of vectorized scan selections, keyed by relation
    /// address + the addresses of the vectorized filter prefix (both
    /// stable for the `Ctx` lifetime). Correlated scopes that re-enter
    /// `enumerate` per outer row recompute nothing: the selection of a
    /// constant-filter scan is outer-independent by construction.
    pub(crate) selections: SelectionCache,
    /// Build-once key sets of decorrelated boolean scopes, keyed by the
    /// build plan's [`Arc`] address and shared — through the `Arc` — with
    /// every worker context the parallel executor forks, so all workers
    /// probe the same build (see [`semijoin`]). Invalidated with the
    /// statistics epoch implicitly: a new epoch yields a new plan `Arc`.
    pub(crate) semi_builds: semijoin::SemiBuildCache,
    /// Negative cache of boolean scopes that bailed out of decorrelation
    /// (by binding-list address): the per-outer-row probe path skips the
    /// eligibility/plan work after the first bail (see
    /// [`Ctx::semijoin_truth`]).
    pub(crate) semi_bailed: RefCell<std::collections::HashSet<usize>>,
}

/// Guard seams: how the evaluation pipeline observes the per-query
/// [`QueryGuard`]. Three shapes, by cost profile:
///
/// * **tick seams** ([`Ctx::guard_step`]) — per-environment, so the
///   check is amortized over [`GUARD_TICK`] steps;
/// * **check seams** ([`Ctx::guard_at`]) — per-morsel / per-round, so
///   the full check (and any armed fault) runs every time;
/// * **admission seams** ([`Ctx::guard_admit`]) — before an
///   allocation-heavy build, charging the estimate against the budget;
///   denial is *graceful*: the caller degrades to its streaming path.
impl Ctx<'_> {
    /// Full cooperative check at a named seam (morsel claim, fixpoint
    /// round): fires any armed fault for this seam, then surfaces a
    /// tripped/expired/cancelled guard as its structured error.
    pub(crate) fn guard_at(&self, at: &'static str) -> Result<()> {
        guard_check_at(self.guard.as_ref(), at)
    }

    /// Amortized cooperative check on the enumeration hot path: one
    /// `Option` check when unguarded; a `Cell` bump plus a check every
    /// [`GUARD_TICK`] environments when guarded (every step while a
    /// fault plan is armed, so injection offsets stay deterministic).
    #[inline]
    pub(crate) fn guard_step(&self) -> Result<()> {
        let Some(g) = self.guard.as_ref() else {
            return Ok(());
        };
        if g.fault_armed() {
            return guard_check_at(self.guard.as_ref(), seam::ENUMERATE);
        }
        let t = self.guard_tick.get().wrapping_add(1);
        self.guard_tick.set(t);
        if !t.is_multiple_of(GUARD_TICK) {
            return Ok(());
        }
        g.check().map_err(trip_error)
    }

    /// Admission control for an allocation-heavy build at seam `at`,
    /// charging `bytes` (a coarse deterministic estimate) against the
    /// memory budget. Returns `true` when the build may proceed; `false`
    /// when the budget denies it — the caller **degrades** to its
    /// streaming path (counted in `guard.degradations`), it does not
    /// fail. An armed `Panic` fault at this seam panics (contained at
    /// the engine boundary); a `Budget` fault denies this admission; a
    /// `Cancel` fault trips cancellation (observed at the next check).
    pub(crate) fn guard_admit(&self, at: &'static str, bytes: usize) -> bool {
        let Some(g) = self.guard.as_ref() else {
            return true;
        };
        if g.fault_armed() {
            match g.fire_fault(at) {
                Some(FaultKind::Panic) => {
                    crate::metrics::guard_faults().inc();
                    panic!("injected fault at seam `{at}`")
                }
                Some(FaultKind::Budget) => {
                    crate::metrics::guard_faults().inc();
                    g.note_degradation();
                    crate::metrics::guard_degradations().inc();
                    return false;
                }
                Some(FaultKind::Cancel) => {
                    crate::metrics::guard_faults().inc();
                    g.trip(Trip::Cancelled);
                }
                None => {}
            }
        }
        if g.try_reserve(bytes) {
            return true;
        }
        g.note_degradation();
        crate::metrics::guard_degradations().inc();
        false
    }
}
