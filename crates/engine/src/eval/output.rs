//! Output assembly: building head tuples from assignment predicates and
//! emitting them through the (possibly disjunctive, possibly nested)
//! emission spine.

use super::aggregate;
use super::env::{Env, Frame};
use super::partition::{partition, Parts};
use super::Ctx;
use crate::error::{EvalError, Result};
use crate::relation::{Relation, Tuple};
use arc_core::ast::*;
use arc_core::conventions::Semantics;
use arc_core::value::{Key, Value};
use std::collections::{BTreeMap, HashSet};

/// Partial head tuple: per-attribute assigned value.
pub(crate) type Partial = Vec<Option<Value>>;

/// The output relation being assembled: name + attribute schema.
pub(crate) struct HeadCtx<'h> {
    pub(crate) name: &'h str,
    pub(crate) attrs: &'h [String],
}

impl Ctx<'_> {
    /// Evaluate a collection to a relation (applying the set-semantics
    /// deduplication convention at the collection boundary).
    pub(crate) fn collection_relation(&self, c: &Collection, env: &mut Env) -> Result<Relation> {
        let tuples = self.collection_tuples(c, env)?;
        let mut rel = Relation::new(c.head.relation.clone(), &[]);
        rel.schema = c.head.attrs.clone();
        rel.rows = tuples;
        Ok(match self.conv.semantics {
            Semantics::Set => rel.deduped(),
            Semantics::Bag => rel,
        })
    }

    fn collection_tuples(&self, c: &Collection, env: &mut Env) -> Result<Vec<Tuple>> {
        let head = HeadCtx {
            name: &c.head.relation,
            attrs: &c.head.attrs,
        };
        let mut out = Vec::new();
        let partial: Partial = vec![None; c.head.attrs.len()];
        self.emit_branch(&c.body, &head, &partial, env, &mut out)?;
        Ok(out)
    }

    pub(crate) fn emit_branch(
        &self,
        f: &Formula,
        head: &HeadCtx<'_>,
        partial: &Partial,
        env: &mut Env,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        match f {
            Formula::Or(branches) => {
                for b in branches {
                    self.emit_branch(b, head, partial, env, out)?;
                }
                Ok(())
            }
            Formula::Quant(q) => self.emit_quant(
                &q.bindings,
                q.grouping.as_ref(),
                q.join.as_ref(),
                &q.body,
                head,
                partial,
                env,
                out,
            ),
            other => self.emit_quant(&[], None, None, other, head, partial, env, out),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_quant(
        &self,
        bindings: &[Binding],
        grouping: Option<&Grouping>,
        join: Option<&JoinTree>,
        body: &Formula,
        head: &HeadCtx<'_>,
        partial: &Partial,
        env: &mut Env,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        let parts = partition(body, head.name);
        match grouping {
            None => self.emit_existential(bindings, join, &parts, head, partial, env, out),
            Some(g) => self.emit_grouped(bindings, join, g, &parts, head, partial, env, out),
        }
    }

    /// Plain existential scope: each surviving environment contributes one
    /// head tuple (or descends into the spine).
    #[allow(clippy::too_many_arguments)]
    fn emit_existential(
        &self,
        bindings: &[Binding],
        join: Option<&JoinTree>,
        parts: &Parts<'_>,
        head: &HeadCtx<'_>,
        partial: &Partial,
        env: &mut Env,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if let Some(p) = parts.agg_tests.first() {
            return Err(EvalError::AggregateOutsideGrouping(p.to_string()));
        }
        if let Some((attr, _)) = parts.agg_assigns.first() {
            return Err(EvalError::AggregateOutsideGrouping(format!(
                "{}.{attr}",
                head.name
            )));
        }
        if !parts.post_bool.is_empty() {
            return Err(EvalError::AggregateOutsideGrouping(
                "aggregate under a connective".to_string(),
            ));
        }
        if parts.spines.len() > 1 {
            return Err(EvalError::MultipleSpines);
        }
        // Through `enumerate_collect`: scopes with a partition axis run
        // their outer scan in parallel morsels (the ordered merge keeps
        // the emitted tuples in sequential enumeration order); everything
        // else streams straight into `out` as before.
        self.enumerate_collect::<Tuple>(
            bindings,
            join,
            &parts.filters,
            env,
            &|ctx, env, sink| {
                for b in &parts.pre_bool {
                    if !ctx.formula_truth(b, env)?.is_true() {
                        return Ok(true);
                    }
                }
                let mut p2 = partial.clone();
                let mut consistent = true;
                for (attr, expr) in &parts.assigns {
                    let v = ctx.scalar(expr, env)?;
                    if !set_partial(&mut p2, head, attr, v)? {
                        consistent = false;
                        break;
                    }
                }
                if !consistent {
                    return Ok(true);
                }
                if let Some(spine) = parts.spines.first() {
                    // Nested existential: emissions collapse per
                    // environment (semijoin multiplicity, §2.7).
                    let mut sub = Vec::new();
                    ctx.emit_branch(spine, head, &p2, env, &mut sub)?;
                    dedupe_in_place(&mut sub);
                    sink.extend(sub);
                } else {
                    sink.push(complete(&p2, head)?);
                }
                Ok(true)
            },
            out,
        )
    }

    /// Grouping scope: materialize surviving environments per key, then
    /// emit one head tuple per passing group.
    #[allow(clippy::too_many_arguments)]
    fn emit_grouped(
        &self,
        bindings: &[Binding],
        join: Option<&JoinTree>,
        g: &Grouping,
        parts: &Parts<'_>,
        head: &HeadCtx<'_>,
        partial: &Partial,
        env: &mut Env,
        out: &mut Vec<Tuple>,
    ) -> Result<()> {
        if !parts.spines.is_empty() {
            return Err(EvalError::SpineUnderGrouping);
        }
        // Materialize surviving local environments (in parallel when the
        // scope has a partition axis: each morsel collects its
        // `(key, frames)` pairs and the ordered merge below folds them
        // into the group map in sequential enumeration order, so member
        // order within every group matches the sequential loop).
        let base = env.len();
        let mut entries: Vec<(Vec<Key>, Vec<Frame>)> = Vec::new();
        self.enumerate_collect(
            bindings,
            join,
            &parts.filters,
            env,
            &|ctx, env, sink| {
                for b in &parts.pre_bool {
                    if !ctx.formula_truth(b, env)?.is_true() {
                        return Ok(true);
                    }
                }
                let mut key = Vec::with_capacity(g.keys.len());
                for k in &g.keys {
                    key.push(env.lookup(&k.var, &k.attr)?.key());
                }
                sink.push((key, env.frames[base..].to_vec()));
                Ok(true)
            },
            &mut entries,
        )?;
        let mut groups: BTreeMap<Vec<Key>, Vec<Vec<Frame>>> = BTreeMap::new();
        for (key, frames) in entries {
            groups.entry(key).or_default().push(frames);
        }
        // γ∅: exactly one group, even over an empty join (§2.5 — "there is
        // just one group", like SQL's aggregate query without GROUP BY).
        if g.keys.is_empty() && groups.is_empty() {
            groups.insert(Vec::new(), Vec::new());
        }
        for members in groups.values() {
            // Representative environment: outer frames plus the first
            // member's local frames (grouping keys are constant within a
            // group).
            let repr: Option<&Vec<Frame>> = members.first();
            if let Some(frames) = repr {
                for f in frames {
                    env.push(f.var.clone(), f.attrs.clone(), f.tuple.clone());
                }
            }
            let verdict = aggregate::group_verdict(self, parts, members, env);
            let emitted = match verdict {
                Ok(true) => {
                    let mut p2 = partial.clone();
                    let mut ok = true;
                    for (attr, expr) in &parts.assigns {
                        let v = self.scalar(expr, env)?;
                        if !set_partial(&mut p2, head, attr, v)? {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for (attr, expr) in &parts.agg_assigns {
                            let v = aggregate::group_scalar(self, expr, members, env)?;
                            if !set_partial(&mut p2, head, attr, v)? {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok {
                        Some(complete(&p2, head)?)
                    } else {
                        None
                    }
                }
                Ok(false) => None,
                Err(e) => {
                    env.truncate(base);
                    return Err(e);
                }
            };
            env.truncate(base);
            if let Some(t) = emitted {
                out.push(t);
            }
        }
        Ok(())
    }
}

/// Record an assignment into the partial head tuple. Returns `false` when
/// a conflicting value was already assigned (the row then fails, since both
/// equalities cannot hold).
pub(crate) fn set_partial(
    partial: &mut Partial,
    head: &HeadCtx<'_>,
    attr: &str,
    v: Value,
) -> Result<bool> {
    let idx =
        head.attrs
            .iter()
            .position(|a| a == attr)
            .ok_or_else(|| EvalError::UnknownAttribute {
                var: head.name.to_string(),
                attr: attr.to_string(),
            })?;
    match &partial[idx] {
        Some(existing) => {
            // NULL = NULL assignments agree only structurally; two
            // assignments must produce the same key to both hold.
            Ok(existing.key() == v.key())
        }
        None => {
            partial[idx] = Some(v);
            Ok(true)
        }
    }
}

pub(crate) fn complete(partial: &Partial, head: &HeadCtx<'_>) -> Result<Tuple> {
    let mut out = Vec::with_capacity(partial.len());
    for (i, slot) in partial.iter().enumerate() {
        match slot {
            Some(v) => out.push(v.clone()),
            None => {
                return Err(EvalError::MissingAssignment {
                    collection: head.name.to_string(),
                    attr: head.attrs[i].clone(),
                })
            }
        }
    }
    Ok(out)
}

pub(crate) fn dedupe_in_place(rows: &mut Vec<Tuple>) {
    let mut seen: HashSet<Vec<Key>> = HashSet::with_capacity(rows.len());
    rows.retain(|r| seen.insert(Relation::row_key(r)));
}
