//! Partitioned (morsel-driven) scope execution.
//!
//! When an engine runs with `ARC_THREADS > 1`, a scope whose plan has a
//! [partition axis](arc_plan::ScopePlan::partition_axis) — an outer
//! relation scan big enough to amortize the fork — executes in parallel:
//!
//! 1. the **coordinator** (the evaluating thread) plans the scope once,
//!    materializes the step pipeline, checks the prelude filters, and
//!    eagerly builds every hash index the plan probes (build sides are
//!    shared read-only via `Arc` — workers never build);
//! 2. the axis scan is split into [`Morsels`]; each morsel runs the full
//!    pipeline over its row range on a pool worker, with a **forked
//!    context** (same catalog/definitions/caches, `threads = 1` so
//!    parallelism never nests) and a cloned outer environment;
//! 3. per-morsel outputs are gathered **in morsel order** and
//!    concatenated, which reproduces the sequential enumeration order
//!    exactly — so bag semantics needs no merge logic at all, set
//!    semantics deduplicates at the collection boundary as always, and
//!    grouped scopes fold the concatenation into their group map in the
//!    same order the sequential loop would have.
//!
//! Errors follow the same rule: the error reported is the first error of
//! the earliest morsel, which is the error the sequential loop would have
//! hit first (later morsels may do wasted work, never observable work —
//! enumeration is side-effect-free).

use super::env::Env;
use super::profile::ScopeTally;
use super::quantifier::{HashIndex, Src};
use super::{Ctx, EvalStrategy};
use crate::catalog::Catalog;
use crate::error::Result;
use crate::relation::Relation;
use arc_core::ast::{Binding, Collection, JoinTree, Predicate};
use arc_core::conventions::Conventions;
use arc_exec::{run_morsels_guarded, Morsels, WorkerPool};
use arc_guard::QueryGuard;
use arc_plan::ScopePlan;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Everything a pool worker needs to rebuild an evaluation context:
/// shared read-only references plus snapshots of the coordinator's
/// caches (hash indexes, plans, distinct estimates), so workers start
/// warm and build nothing the coordinator already has.
pub(crate) struct WorkerSeed<'a> {
    catalog: &'a Catalog,
    conv: Conventions,
    strategy: EvalStrategy,
    decorrelate: bool,
    vectorize: bool,
    indexes: bool,
    program: u64,
    defined: &'a HashMap<String, Relation>,
    abstracts: &'a HashMap<String, Collection>,
    join_indexes: HashMap<(usize, Vec<usize>), Arc<HashIndex>>,
    distinct_estimates: HashMap<(usize, Vec<usize>), usize>,
    plans: HashMap<super::PlanCacheKey, Arc<ScopePlan>>,
    selections: HashMap<(usize, Vec<usize>), Arc<Vec<u32>>>,
    /// Shared (not snapshot) semi-join build cache: workers and the
    /// coordinator probe — and lazily populate — the *same* build sets
    /// through the `Arc`, so a decorrelated scope builds its key set once
    /// per evaluation, not once per worker.
    semi_builds: super::semijoin::SemiBuildCache,
    /// Snapshot of the coordinator's bailed-decorrelation scopes.
    semi_bailed: std::collections::HashSet<usize>,
    /// Whether workers record wall times (the coordinator's trace knob).
    trace: bool,
    /// Shared (not snapshot) profile sink: every worker's morsel tallies
    /// merge into the coordinator's profile.
    profile: Option<arc_trace::ProfileSink>,
    /// Shared span sink: workers append morsel spans into their own lane
    /// ring buffers (lane = pool claim order, assigned at worker init).
    spans: Option<arc_trace::SpanSink>,
    /// Shared query guard: workers observe the same trip flag and charge
    /// the same memory accountant as the coordinator.
    guard: Option<Arc<QueryGuard>>,
}

impl<'a> WorkerSeed<'a> {
    /// A per-morsel evaluation context. `threads` is pinned to 1: nested
    /// scopes inside a worker run sequentially (the scope above them is
    /// already saturating the pool).
    fn ctx(&self) -> Ctx<'a> {
        Ctx {
            catalog: self.catalog,
            conv: self.conv,
            strategy: self.strategy,
            threads: 1,
            decorrelate: self.decorrelate,
            vectorize: self.vectorize,
            indexes: self.indexes,
            program: self.program,
            defined: self.defined,
            abstracts: self.abstracts,
            join_indexes: RefCell::new(self.join_indexes.clone()),
            distinct_estimates: RefCell::new(self.distinct_estimates.clone()),
            plans: RefCell::new(self.plans.clone()),
            selections: RefCell::new(self.selections.clone()),
            semi_builds: self.semi_builds.clone(),
            semi_bailed: RefCell::new(self.semi_bailed.clone()),
            trace: self.trace,
            profile: self.profile.clone(),
            spans: self.spans.clone(),
            lane: 0,
            guard: self.guard.clone(),
            guard_tick: Cell::new(0),
        }
    }
}

// Worker seeds are shared by reference across pool threads.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<WorkerSeed<'static>>();
};

/// Per-worker state for a partitioned scope run: the forked evaluation
/// context plus worker-lane profile accounting (morsels claimed, busy
/// wall time). The lane flushes to the shared sink on drop — i.e. when
/// the worker finishes its last morsel — so the profile's `workers`
/// vector reflects the actual work distribution.
struct WorkerState<'a> {
    ctx: Ctx<'a>,
    lane: usize,
    morsels: u64,
    busy_nanos: u64,
}

impl Drop for WorkerState<'_> {
    fn drop(&mut self) {
        if self.morsels > 0 {
            if let Some(sink) = &self.ctx.profile {
                sink.record_lane(self.lane, self.morsels, self.busy_nanos);
            }
        }
    }
}

/// The per-environment collection callback [`Ctx::enumerate_collect`]
/// drives: append into the morsel's output vector, return `Ok(true)` to
/// keep enumerating. `Sync` because the parallel path shares it across
/// pool workers.
pub(crate) type EachFn<'f, 'a, T> =
    dyn Fn(&Ctx<'a>, &mut Env, &mut Vec<T>) -> Result<bool> + Sync + 'f;

impl<'a> Ctx<'a> {
    fn worker_seed(&self) -> WorkerSeed<'a> {
        WorkerSeed {
            catalog: self.catalog,
            conv: self.conv,
            strategy: self.strategy,
            decorrelate: self.decorrelate,
            vectorize: self.vectorize,
            indexes: self.indexes,
            program: self.program,
            defined: self.defined,
            abstracts: self.abstracts,
            join_indexes: self.join_indexes.borrow().clone(),
            distinct_estimates: self.distinct_estimates.borrow().clone(),
            plans: self.plans.borrow().clone(),
            selections: self.selections.borrow().clone(),
            semi_builds: self.semi_builds.clone(),
            semi_bailed: self.semi_bailed.borrow().clone(),
            trace: self.trace,
            profile: self.profile.clone(),
            spans: self.spans.clone(),
            guard: self.guard.clone(),
        }
    }

    /// Enumerate a scope, appending what `each` produces per surviving
    /// environment into `out` — in enumeration order. This is the entry
    /// point the output stages use instead of raw [`Ctx::enumerate`]:
    /// append-only collection is exactly what partitioned execution can
    /// scatter, so eligible scopes run parallel here, and everything
    /// else streams through the sequential loop straight into `out`
    /// with no intermediate buffering.
    ///
    /// `each` must not rely on early exit (it must always return
    /// `Ok(true)`; the parallel path enumerates every partition).
    pub(crate) fn enumerate_collect<T: Send>(
        &self,
        bindings: &[Binding],
        join: Option<&JoinTree>,
        filters: &[&Predicate],
        env: &mut Env,
        each: &EachFn<'_, 'a, T>,
        out: &mut Vec<T>,
    ) -> Result<()> {
        if self.threads > 1
            && !join.is_some_and(|t| t.has_outer())
            && self.try_parallel(bindings, filters, env, each, out)?
        {
            return Ok(());
        }
        self.enumerate(bindings, join, filters, env, &mut |ctx, env| {
            each(ctx, env, out)
        })
    }

    /// The partitioned path; `Ok(false)` means "not eligible — run the
    /// sequential loop" (no partition axis, or the axis scan is too
    /// small for the configured morsel floor).
    fn try_parallel<T: Send>(
        &self,
        bindings: &[Binding],
        filters: &[&Predicate],
        env: &mut Env,
        each: &EachFn<'_, 'a, T>,
        out: &mut Vec<T>,
    ) -> Result<bool> {
        let resolved = self.resolve_bindings(bindings)?;
        let plan = self.scope_plan(bindings, filters, env, &resolved, false)?;
        if plan.partition_axis().is_none() {
            return Ok(false);
        }
        let (order, prelude, leaf) = self.materialize_steps(bindings, filters, &resolved, &plan)?;
        // The axis must be an un-probed relation scan at step 0 (the plan
        // guarantees the access kind; re-check the source against the
        // materialization so a mismatch degrades to sequential instead of
        // erroring).
        let total = match order.first() {
            Some(first) if first.hash_plan.is_none() => match &first.source {
                Src::Rows(rel) => rel.rows.len(),
                _ => return Ok(false),
            },
            _ => return Ok(false),
        };
        if total < 2 {
            return Ok(false);
        }

        // Coordinator-side profile tally: the scope entry and the axis
        // scan's single start are counted here, exactly once — morsel
        // tallies deliberately skip both (see `Ctx::scan_partition`), so
        // a partitioned profile is count-identical to the sequential one.
        let scope_id = bindings.as_ptr() as usize;
        let coord = self
            .profile
            .as_ref()
            .map(|_| ScopeTally::new(scope_id, order.len()));
        let start = (self.trace && coord.is_some()).then(Instant::now);
        // Coordinator scope span: covers the prelude, the shared builds,
        // and the whole scatter/gather. Worker morsel spans nest under it
        // on the timeline (their lanes render as separate tracks).
        let scope_span = self.spans.as_ref().and_then(|s| s.start(self.lane));

        // Prelude filters see only outer variables: evaluate once here,
        // not once per morsel.
        for p in &prelude {
            if !self.pred_truth(p, env)?.is_true() {
                if let (Some(t), Some(sink)) = (&coord, &self.profile) {
                    t.flush(sink, true);
                }
                if let (Some(sink), Some(t0)) = (&self.spans, scope_span) {
                    sink.complete(
                        self.lane,
                        arc_trace::SpanKind::Scope,
                        arc_trace::OpId::scope(scope_id),
                        t0,
                    );
                }
                return Ok(true); // scope is empty; nothing to scatter
            }
        }
        // Build every probe's hash index — and every vectorized scan's
        // selection vector — up front so workers share them read-only
        // instead of racing to build duplicates.
        for ob in &order {
            if let (Src::Rows(rel), Some(hash_plan)) = (&ob.source, &ob.hash_plan) {
                let _ = self.join_index(hash_plan, rel);
            }
            if let (Src::Rows(rel), true) = (&ob.source, ob.uses_selection()) {
                let _ = self.scan_selection(rel, ob);
            }
        }

        let seed = self.worker_seed();
        let outer_env = env.clone();
        // Chunk-aligned morsels under vectorized execution: a morsel
        // covers whole column chunks, so a worker's selection walk never
        // straddles a chunk another worker owns. Ordered gather is
        // untouched either way (invariant 9).
        let morsels = if self.vectorize {
            Morsels::aligned(total, self.threads, arc_core::column::CHUNK_ROWS)
        } else {
            Morsels::new(total, self.threads)
        };
        // One forked context per participating worker (not per morsel —
        // forking clones the cache snapshots); each morsel still gets a
        // fresh clone of the outer environment because an error can
        // abandon pushed frames mid-scan.
        if let Some(t) = &coord {
            t.call(0); // the axis scan starts once, morsels notwithstanding
        }
        let lanes = AtomicUsize::new(0);
        let results = run_morsels_guarded(
            WorkerPool::global(),
            self.threads,
            morsels,
            self.guard.as_deref(),
            || {
                let lane = lanes.fetch_add(1, Ordering::Relaxed);
                let mut ctx = seed.ctx();
                ctx.lane = lane;
                if let Some(sink) = &ctx.spans {
                    sink.touch(lane); // name the track even if every span drops
                }
                WorkerState {
                    ctx,
                    lane,
                    morsels: 0,
                    busy_nanos: 0,
                }
            },
            |st, _, range| {
                let mut wenv = outer_env.clone();
                let mut morsel_out = Vec::new();
                let tally = st
                    .ctx
                    .profile
                    .as_ref()
                    .map(|_| ScopeTally::new(scope_id, order.len()));
                let mstart = (st.ctx.trace && tally.is_some()).then(Instant::now);
                let mspan = st.ctx.spans.as_ref().and_then(|s| s.start(st.lane));
                let r = st
                    .ctx
                    .scan_partition(
                        &order,
                        &leaf,
                        range,
                        &mut wenv,
                        scope_id,
                        tally.as_ref(),
                        &mut |c, e| each(c, e, &mut morsel_out),
                    )
                    .map(|()| morsel_out);
                if let (Some(sink), Some(t0)) = (&st.ctx.spans, mspan) {
                    sink.complete(
                        st.lane,
                        arc_trace::SpanKind::Morsel,
                        arc_trace::OpId::step(scope_id, 0),
                        t0,
                    );
                }
                st.morsels += 1;
                if let Some(s) = mstart {
                    st.busy_nanos += s.elapsed().as_nanos() as u64;
                }
                if let (Some(t), Some(sink)) = (&tally, &st.ctx.profile) {
                    t.flush(sink, false);
                }
                r
            },
        );
        if let (Some(t), Some(sink)) = (&coord, &self.profile) {
            if let Some(s) = start {
                t.add_nanos(s.elapsed().as_nanos() as u64);
            }
            t.flush(sink, true);
        }
        if let (Some(sink), Some(t0)) = (&self.spans, scope_span) {
            sink.complete(
                self.lane,
                arc_trace::SpanKind::Scope,
                arc_trace::OpId::scope(scope_id),
                t0,
            );
        }
        // Merge in morsel order: errors surface from the earliest morsel
        // (what the sequential loop would hit first), outputs concatenate
        // into the exact sequential emission order. A contained worker
        // panic becomes the structured `WorkerPanic` error (the pool
        // itself survives); a morsel skipped because the guard tripped
        // surfaces the trip's own error — never a partial result.
        let results = results.map_err(|p| crate::error::EvalError::WorkerPanic(p.message))?;
        for slot in results {
            match slot {
                Some(r) => out.extend(r?),
                None => {
                    let trip = self
                        .guard
                        .as_ref()
                        .and_then(|g| g.trip_cause())
                        .map(super::trip_error)
                        .unwrap_or_else(|| {
                            crate::error::EvalError::Internal(
                                "unclaimed morsel without a tripped guard".into(),
                            )
                        });
                    return Err(trip);
                }
            }
        }
        Ok(true)
    }
}
