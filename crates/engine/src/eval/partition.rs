//! Body analysis: predicate-role partitioning and free-variable
//! computation.
//!
//! The analysis itself lives in [`arc_plan::analysis`] — it is the shared
//! front half of both the planner and the evaluator (it moved there when
//! the plan layer was introduced, so the two can never disagree on what
//! counts as a filter, an assignment, or a free variable). This module
//! re-exports the pieces the evaluator consumes.

pub(crate) use arc_plan::analysis::{partition, pred_consts, pred_vars, Parts};
