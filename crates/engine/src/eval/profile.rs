//! Per-enumeration profile tallies: the lock-free local half of
//! execution profiling.
//!
//! When a [`Ctx`](super::Ctx) carries a [`ProfileSink`], every
//! enumeration call (and every morsel of a partitioned scope) counts
//! rows into a [`ScopeTally`] — plain [`Cell`] integers, touched on the
//! hot path with a single `Option` check — and folds the whole tally
//! into the shared sink **once**, at call/morsel granularity. Merging is
//! commutative addition ([`arc_trace::OpStats::merge`]), which is why a
//! profile gathered across four pool workers equals the sequential one
//! count-for-count (only wall times differ, and those are annotations,
//! not counts).

use arc_trace::{OpId, OpStats, ProfileSink, QueryProfile};
use std::cell::Cell;

/// Row/call counters for one step of one enumeration call.
#[derive(Default)]
struct StepTally {
    /// Times this step's access path started (= upstream environments
    /// that reached it).
    calls: Cell<u64>,
    /// Candidate rows the access path yielded (hash-bucket entries,
    /// selection survivors, scanned rows) — before pushed filters.
    rows: Cell<u64>,
    /// Rows surviving the step's pushed-down filters.
    out: Cell<u64>,
    /// Build time attributed to this step (first hash-index or
    /// selection-vector build), when tracing.
    nanos: Cell<u64>,
}

/// The local tally of one `enumerate` call / one morsel over one scope.
pub(crate) struct ScopeTally {
    /// The scope's stable operator id (binding-slice address — the same
    /// identity `arc_plan::scope_identity` stamps at lowering time).
    scope: usize,
    steps: Vec<StepTally>,
    /// Environments that survived every step and leaf filter (callback
    /// invocations — the scope's actual output rows).
    out: Cell<u64>,
    /// Scope wall time (inclusive of nested work), when tracing.
    nanos: Cell<u64>,
}

impl ScopeTally {
    /// A zeroed tally for a scope with `steps` plan steps.
    pub(crate) fn new(scope: usize, steps: usize) -> ScopeTally {
        ScopeTally {
            scope,
            steps: (0..steps).map(|_| StepTally::default()).collect(),
            out: Cell::new(0),
            nanos: Cell::new(0),
        }
    }

    /// Step `i`'s access path started.
    pub(crate) fn call(&self, i: usize) {
        let s = &self.steps[i];
        s.calls.set(s.calls.get() + 1);
    }

    /// Step `i` yielded a candidate row.
    pub(crate) fn row(&self, i: usize) {
        let s = &self.steps[i];
        s.rows.set(s.rows.get() + 1);
    }

    /// A candidate row survived step `i`'s pushed filters.
    pub(crate) fn pass(&self, i: usize) {
        let s = &self.steps[i];
        s.out.set(s.out.get() + 1);
    }

    /// An environment survived the leaf filters (one output row).
    pub(crate) fn emit(&self) {
        self.out.set(self.out.get() + 1);
    }

    /// Attribute build time to step `i`.
    pub(crate) fn add_step_nanos(&self, i: usize, nanos: u64) {
        let s = &self.steps[i];
        s.nanos.set(s.nanos.get() + nanos);
    }

    /// Attribute wall time to the scope as a whole.
    pub(crate) fn add_nanos(&self, nanos: u64) {
        self.nanos.set(self.nanos.get() + nanos);
    }

    /// Fold the tally into the sink — the one lock acquisition per
    /// enumeration call / morsel. `scope_call` is true on the sequential
    /// path and on the parallel coordinator (which counts the scope
    /// entry once); morsel tallies pass false so a partitioned scope
    /// still counts one call, not one per morsel.
    pub(crate) fn flush(&self, sink: &ProfileSink, scope_call: bool) {
        let mut p = QueryProfile::default();
        p.ops.insert(
            OpId::scope(self.scope),
            OpStats {
                calls: scope_call as u64,
                rows_in: 0,
                rows_out: self.out.get(),
                nanos: self.nanos.get(),
            },
        );
        for (i, s) in self.steps.iter().enumerate() {
            p.ops.insert(
                OpId::step(self.scope, i),
                OpStats {
                    calls: s.calls.get(),
                    rows_in: s.rows.get(),
                    rows_out: s.out.get(),
                    nanos: s.nanos.get(),
                },
            );
        }
        sink.merge(&p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tallies_fold_into_the_sink_once() {
        let sink = ProfileSink::new();
        let t = ScopeTally::new(0xfeed, 2);
        t.call(0);
        for _ in 0..5 {
            t.row(0);
            t.pass(0);
            t.call(1);
        }
        t.row(1);
        t.pass(1);
        t.emit();
        t.add_step_nanos(1, 40);
        t.add_nanos(100);
        t.flush(&sink, true);
        // A second (morsel-shaped) tally merges additively, without
        // double-counting the scope call.
        let m = ScopeTally::new(0xfeed, 2);
        m.row(0);
        m.pass(0);
        m.call(1);
        m.flush(&sink, false);
        let p = sink.finish();
        let scope = p.op(OpId::scope(0xfeed)).unwrap();
        assert_eq!((scope.calls, scope.rows_out, scope.nanos), (1, 1, 100));
        let s0 = p.op(OpId::step(0xfeed, 0)).unwrap();
        assert_eq!((s0.calls, s0.rows_in, s0.rows_out), (1, 6, 6));
        let s1 = p.op(OpId::step(0xfeed, 1)).unwrap();
        assert_eq!((s1.calls, s1.rows_in, s1.rows_out, s1.nanos), (6, 1, 1, 40));
    }
}
