//! The binding loop: executing the physical scope plan.
//!
//! [`Ctx::enumerate`] drives a callback over every environment of a
//! quantifier scope that survives the filter predicates. The *shape* of
//! the enumeration — binding order, per-binding access path (scan vs.
//! hash probe vs. external access pattern vs. abstract check vs. lateral),
//! and where each filter runs — is no longer derived here: the scope is
//! described to [`arc_plan::plan_scope`] and this module executes the
//! [`ScopePlan`](arc_plan::ScopePlan) it returns.
//!
//! Under [`EvalStrategy::Planned`](super::EvalStrategy::Planned) the plan
//! greedily orders joins by estimated cardinality, hash-probes every
//! reachable equi-join, and pushes filters down to the step where their
//! variables bind — results are bag-identical to the reference. Under the
//! force overrides the plan pins declaration order and leaf filters, so
//! the hash-join strategy remains *order-identical* to the nested loop:
//! the probe iterates matches in the relation's original row order and
//! every filter is still re-checked, so the callback sees exactly the
//! environments the nested loop would produce, in the same order.
//!
//! ## Plan caching
//!
//! Planning is split into three phases — [`Ctx::resolve_bindings`] (name
//! → source), [`Ctx::scope_plan`] (the cached search), and
//! [`Ctx::materialize_steps`] (plan → executable [`Ordered`] steps) — so
//! that the expensive middle phase runs once per distinct planning
//! situation instead of once per [`Ctx::enumerate`] call:
//!
//! * the **`Ctx`-level cache** keys by *(scope identity, outer-availability
//!   signature, planning role)* — a correlated scope that runs the nested
//!   path re-enters `enumerate` once per outer row with an identical
//!   signature, so only the first row plans (boolean scopes with pure
//!   equi-join correlation don't even re-enter: [`super::semijoin`]
//!   answers them from a build-once probe set);
//! * the **global cache** ([`arc_plan::cache`]) keys by *(program hash,
//!   scope fingerprint, signature, mode, role)* — repeated queries (same
//!   text, re-parsed, fresh `Ctx`) skip planning entirely.
//!
//! ## Parallel execution
//!
//! The executable steps are thread-shareable (`Ordered` is `Sync`: hash
//! indexes live behind `Arc`, memoized through `OnceLock`), which is what
//! lets `eval::parallel` drive one materialized pipeline from many pool
//! workers, each scanning its own morsel of the partition axis via
//! [`Ctx::scan_partition`].

use super::env::Env;
use super::profile::ScopeTally;
use super::Ctx;
use crate::error::{EvalError, Result};
use crate::external::{AccessPattern, ExternalRelation};
use crate::metrics;
use crate::relation::Relation;
use arc_core::ast::*;
use arc_core::value::{Key, Value};
use arc_guard::seam;
use arc_plan::analysis::free_vars;
use arc_plan::logical::other_side;
use arc_plan::{
    cache, Access, BindingSpec, DistinctEstimator, OuterScope, PlanError, ScopePlan, ScopeSpec,
    SourceSpec,
};
use std::collections::HashMap;
use std::sync::Arc;

/// Row-sample cap for the planner's distinct-key estimates.
const DISTINCT_SAMPLE: usize = 256;

/// Where one ordered binding draws its tuples from.
pub(crate) enum Src<'b> {
    /// A materialized relation (base, defined, or fixpoint result).
    Rows(&'b Relation),
    /// A correlated nested collection, evaluated per environment.
    Nested(&'b Collection),
    /// An external relation solved through an access pattern (§2.13.1).
    External {
        ext: &'b ExternalRelation,
        pattern: &'b AccessPattern,
        inputs: Vec<Scalar>,
    },
    /// An abstract relation checked in context (§2.13.2).
    Abstract {
        def: &'b Collection,
        inputs: Vec<Scalar>,
    },
}

/// Equi-join access plan for one relation binding: which columns form the
/// hash key and which outer expressions produce the probe key.
pub(crate) struct HashPlan<'b> {
    /// Column indices (into the relation schema) of the join key.
    key_cols: Vec<usize>,
    /// Outer-side expressions, parallel to `key_cols`.
    probe_exprs: Vec<&'b Scalar>,
}

/// A hash index over a relation: join key → row indices in original order.
pub(crate) type HashIndex = HashMap<Vec<Key>, Vec<u32>>;

/// The per-query index cache living on [`Ctx`], keyed by relation address
/// plus key columns (see [`Ctx::join_index`] for why addresses are
/// stable). Indexes are `Arc`-shared: the parallel executor builds them
/// once on the coordinator and every worker context reuses them
/// read-only.
pub(crate) type JoinIndexCache = std::cell::RefCell<HashMap<(usize, Vec<usize>), Arc<HashIndex>>>;

impl<'b> HashPlan<'b> {
    fn build_index(&self, rel: &Relation) -> HashIndex {
        let mut index: HashIndex = HashMap::with_capacity(rel.rows.len());
        for (i, row) in rel.rows.iter().enumerate() {
            // `Relation::key_for` is the single source of join-key
            // semantics (NULL/NaN never match) — shared with the
            // planner's distinct estimator.
            if let Some(key) = Relation::key_for(row, &self.key_cols) {
                index.entry(key).or_default().push(i as u32);
            }
        }
        index
    }

    fn probe_key(&self, ctx: &Ctx<'_>, env: &mut Env) -> Result<Option<Vec<Key>>> {
        let mut key = Vec::with_capacity(self.probe_exprs.len());
        for e in &self.probe_exprs {
            match crate::relation::join_key(&ctx.scalar(e, env)?) {
                Some(k) => key.push(k),
                None => return Ok(None),
            }
        }
        Ok(Some(key))
    }
}

/// One planned step: a binding with a resolved source, its access path,
/// and the filters pushed down to it — in execution order.
pub(crate) struct Ordered<'b> {
    var: Arc<str>,
    pub(crate) source: Src<'b>,
    pub(crate) hash_plan: Option<HashPlan<'b>>,
    /// Filters evaluated as soon as this step's variable binds (empty
    /// under the force strategies, which keep everything at the leaf).
    /// When the step scans a relation under vectorized execution, the
    /// leading run of constant filters is hoisted into `vec_filters` and
    /// only the residue remains here (see [`super::vector`] on why only
    /// a prefix is safe to hoist).
    step_filters: Vec<&'b Predicate>,
    /// The vectorizable constant-filter prefix, resolved to columns of
    /// the scanned relation (scan steps only; empty when vectorization
    /// is off, the relation is tiny, or no prefix classifies).
    vec_filters: Vec<super::vector::VecFilter>,
    /// Addresses of the original predicates behind `vec_filters` — the
    /// `Ctx` selection-cache key (predicates outlive the `Ctx`).
    vec_key: Vec<usize>,
    /// The index-range access plan, when the planner chose one for this
    /// step: the ordered index answers the consumed bound prefix by
    /// binary search and the result joins the selection-vector path
    /// (composing with `vec_filters` when both are present).
    index_plan: Option<super::index::IndexPlan>,
    /// The plan's index, memoized on first probe so the hot loop touches
    /// neither the [`Ctx`]-level cache nor its heap-allocated key again.
    /// A `OnceLock` (not `OnceCell`) so a materialized pipeline stays
    /// `Sync` and can be shared across pool workers.
    index: std::sync::OnceLock<Arc<HashIndex>>,
    /// The scan's selection vector (`vec_filters` applied to every
    /// chunk), memoized like `index` and shared across pool workers.
    selection: std::sync::OnceLock<Arc<Vec<u32>>>,
}

impl Ordered<'_> {
    /// Whether this step scans through a selection vector — an
    /// index-range probe, a vectorized constant-filter prefix, or both
    /// composed. Used by the scan loops to pick the selection walk and
    /// by the parallel coordinator to pre-build selections for workers.
    pub(crate) fn uses_selection(&self) -> bool {
        self.index_plan.is_some() || !self.vec_filters.is_empty()
    }

    /// The per-`Ctx` selection-cache key: the consumed index filters'
    /// addresses (behind a `usize::MAX` marker no predicate address can
    /// collide with), then the vectorized prefix's addresses.
    fn selection_key(&self) -> Vec<usize> {
        match &self.index_plan {
            Some(ip) => {
                let mut key = Vec::with_capacity(1 + ip.key.len() + self.vec_key.len());
                key.push(usize::MAX);
                key.extend_from_slice(&ip.key);
                key.extend_from_slice(&self.vec_key);
                key
            }
            None => self.vec_key.clone(),
        }
    }

    /// Row-wise equivalent of everything this step's selection vector
    /// encodes — the **degraded** check when the memory budget denies
    /// the selection build: the consumed index-range bounds (if any)
    /// and the vectorized constant-filter prefix, applied per row.
    fn row_survives(&self, row: &[Value]) -> bool {
        self.index_plan
            .as_ref()
            .is_none_or(|ip| ip.row_matches(row))
            && (self.vec_filters.is_empty() || super::vector::row_passes(row, &self.vec_filters))
    }

    /// Compute the selection without touching the column chunks (the
    /// budget denied the chunk build): the same ascending row order,
    /// via the row-path kernels. Only reachable for pure
    /// constant-filter selections — the index-range path never needs
    /// chunks.
    fn compute_selection_rows(&self, rel: &Relation) -> Vec<u32> {
        (0..rel.rows.len() as u32)
            .filter(|&r| super::vector::row_passes(&rel.rows[r as usize], &self.vec_filters))
            .collect()
    }

    /// Compute this step's selection vector: the index-range probe when
    /// one is planned (binary search over the relation's cached ordered
    /// index, then the demoted constant filters row-checked over the
    /// survivors), otherwise the vectorized kernels over all chunks.
    /// Ascending row order either way.
    fn compute_selection(&self, rel: &Relation) -> Vec<u32> {
        let Some(ip) = &self.index_plan else {
            return super::vector::selection(&rel.columns(), &self.vec_filters);
        };
        let mut sel = rel.ordered_index(&ip.cols).search(&ip.probe);
        // Registry accounting for the index-range path: rows the bound
        // prefix's binary search survived, and how many of those the
        // demoted constant filters then dropped.
        metrics::index_range_rows().add(sel.len() as u64);
        if !self.vec_filters.is_empty() {
            let before = sel.len();
            sel.retain(|&r| super::vector::row_passes(&rel.rows[r as usize], &self.vec_filters));
            metrics::index_range_dropped().add((before - sel.len()) as u64);
        }
        sel
    }

    /// The step's variable name — the semi-join columnar build resolves
    /// its key attributes against it.
    pub(crate) fn var(&self) -> &str {
        &self.var
    }

    /// True when no residual row-path filters remain on this step (every
    /// pushed-down filter either vectorized or there were none).
    pub(crate) fn step_filters_empty(&self) -> bool {
        self.step_filters.is_empty()
    }
}

/// A resolved binding source plus its catalog name (for diagnostics).
pub(crate) enum Resolved<'b> {
    Rel(&'b Relation),
    Ext(&'b ExternalRelation),
    Abs(&'b Collection),
    Nested(&'b Collection),
}

/// The runtime environment as the planner's outer scope (shared with the
/// semi-join module's eligibility check).
pub(crate) struct EnvOuter<'e>(pub(crate) &'e Env);

impl OuterScope for EnvOuter<'_> {
    fn attrs(&self, var: &str) -> Option<&[String]> {
        self.0
            .frames
            .iter()
            .rev()
            .find(|f| &*f.var == var)
            .map(|f| f.attrs.as_slice())
    }
}

/// Live statistics for the planner: catalog `ANALYZE` sketches first
/// (cost model v2 — correlation-capped distinct counts, MCV/histogram
/// selectivities), then the per-query prefix-sample cache on [`Ctx`] as
/// the distinct-count fallback for sources without statistics
/// (intensional results, small un-analyzed relations).
struct CtxEstimator<'a, 'b> {
    ctx: &'a Ctx<'a>,
    resolved: &'b [Resolved<'a>],
}

impl CtxEstimator<'_, '_> {
    /// Catalog statistics for a binding — only when the binding actually
    /// resolved to the catalog's relation (a same-named materialized
    /// definition shadows it, and the catalog's sketches describe the
    /// wrong rows then).
    fn table_stats(&self, binding: usize) -> Option<&std::sync::Arc<arc_stats::TableStats>> {
        let Resolved::Rel(rel) = &self.resolved[binding] else {
            return None;
        };
        let stats = self.ctx.catalog.stats(&rel.name)?;
        self.ctx
            .catalog
            .relation(&rel.name)
            .is_some_and(|r| std::ptr::eq(r, *rel))
            .then_some(stats)
    }
}

impl DistinctEstimator for CtxEstimator<'_, '_> {
    fn distinct(&self, binding: usize, cols: &[usize]) -> Option<usize> {
        if let Some(stats) = self.table_stats(binding) {
            return Some(stats.distinct_cols(cols) as usize);
        }
        let Resolved::Rel(rel) = &self.resolved[binding] else {
            return None;
        };
        let key = (*rel as *const Relation as usize, cols.to_vec());
        if let Some(&d) = self.ctx.distinct_estimates.borrow().get(&key) {
            return Some(d);
        }
        let d = rel.distinct_estimate(cols, DISTINCT_SAMPLE);
        self.ctx.distinct_estimates.borrow_mut().insert(key, d);
        Some(d)
    }

    fn selectivity(
        &self,
        binding: usize,
        col: usize,
        op: arc_core::ast::CmpOp,
        value: &arc_core::value::Value,
    ) -> Option<f64> {
        self.table_stats(binding)?.selectivity(col, op, value)
    }

    fn null_fraction(&self, binding: usize, col: usize) -> Option<f64> {
        let stats = self.table_stats(binding)?;
        Some(1.0 - stats.columns.get(col)?.non_null_fraction())
    }

    fn range_selectivity(
        &self,
        binding: usize,
        col: usize,
        lo: Option<(arc_core::ast::CmpOp, &arc_core::value::Value)>,
        hi: Option<(arc_core::ast::CmpOp, &arc_core::value::Value)>,
    ) -> Option<f64> {
        self.table_stats(binding)?.range_selectivity(col, lo, hi)
    }
}

impl<'a> Ctx<'a> {
    /// Enumerate all binding environments of a quantifier, applying the
    /// filter predicates, and invoke `cb` for each survivor. `cb` returns
    /// `Ok(false)` to stop early (existential short-circuit).
    pub(crate) fn enumerate(
        &self,
        bindings: &[Binding],
        join: Option<&JoinTree>,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        if let Some(tree) = join {
            if tree.has_outer() {
                return self.enumerate_join(bindings, tree, filters, env, cb);
            }
            // A pure-inner annotation is semantically the default join.
        }
        // Span seam: the scope span opens before planning so a
        // plan-cache miss's Plan span nests inside it. `start` reads no
        // clock when spans are off or the lane buffer is full.
        let scope_id = bindings.as_ptr() as usize;
        let span = self.spans.as_ref().and_then(|s| s.start(self.lane));
        let (order, prelude, leaf) = self.plan_bindings(bindings, filters, env)?;
        // Profiling: a local tally per enumeration call, keyed by the
        // binding-slice address — the identity `arc_plan::scope_identity`
        // stamps on the lowered plan, so `EXPLAIN ANALYZE` can join the
        // actuals back to the tree. Created before the prelude so a
        // prelude-empty call still counts as one scope invocation.
        let tally = self
            .profile
            .as_ref()
            .map(|_| ScopeTally::new(scope_id, order.len()));
        let start = (self.trace && tally.is_some()).then(std::time::Instant::now);
        // Prelude filters touch only outer variables (or constants): one
        // failing verdict empties the whole scope.
        let mut alive = true;
        for p in &prelude {
            if !self.pred_truth(p, env)?.is_true() {
                alive = false;
                break;
            }
        }
        let res = if alive {
            self.enumerate_rec(&order, 0, &leaf, env, scope_id, tally.as_ref(), cb)
        } else {
            Ok(true)
        };
        if let (Some(t), Some(sink)) = (&tally, &self.profile) {
            if let Some(s) = start {
                t.add_nanos(s.elapsed().as_nanos() as u64);
            }
            t.flush(sink, true);
        }
        if let (Some(sink), Some(t0)) = (&self.spans, span) {
            sink.complete(
                self.lane,
                arc_trace::SpanKind::Scope,
                arc_trace::OpId::scope(scope_id),
                t0,
            );
        }
        res.map(|_| ())
    }

    /// Build (or fetch from the per-query cache) the hash index for a plan
    /// over a relation. The cache key is the relation's address plus the
    /// key columns: relations are borrowed from the catalog or the
    /// `defined` map, both immutable for the lifetime of the [`Ctx`], so
    /// addresses are stable — and correlated scopes (one `enumerate` call
    /// per outer environment) reuse the index instead of rebuilding it per
    /// outer row. Under vectorized execution the build runs over column
    /// chunks ([`super::vector::build_index`]) — same index, computed
    /// with per-chunk key extraction instead of per-row allocation.
    /// `None` means the memory budget denied the build — the caller
    /// degrades to a streaming probe over the base rows (identical
    /// matches, identical ascending row order) instead of failing.
    pub(crate) fn join_index(&self, plan: &HashPlan<'_>, rel: &Relation) -> Option<Arc<HashIndex>> {
        let key = (rel as *const Relation as usize, plan.key_cols.clone());
        if let Some(index) = self.join_indexes.borrow().get(&key) {
            return Some(index.clone());
        }
        // Admission: the hash table (entry + key overhead per row).
        if !self.guard_admit(
            seam::HASH_BUILD,
            rel.len() * (48 + 24 * plan.key_cols.len()),
        ) {
            return None;
        }
        let start = self.trace.then(std::time::Instant::now);
        // The vectorized build reads the column chunks — its own
        // admission; denied only downgrades the build to the row loop.
        let index = if self.vectorize
            && rel.len() >= super::vector::VECTOR_MIN_ROWS
            && self.guard_admit(seam::CHUNK_BUILD, rel.len() * rel.schema.len().max(1) * 24)
        {
            Arc::new(super::vector::build_index(&rel.columns(), &plan.key_cols))
        } else {
            Arc::new(plan.build_index(rel))
        };
        metrics::hash_builds().inc();
        if let Some(s) = start {
            metrics::hash_build_time().record_nanos(s.elapsed().as_nanos() as u64);
        }
        self.join_indexes.borrow_mut().insert(key, index.clone());
        Some(index)
    }

    /// The selection vector of a selection-backed scan step (index-range
    /// probe and/or vectorized constant-filter prefix) — through the
    /// per-query cache, so correlated scopes that re-enter `enumerate`
    /// per outer row compute it once (the consumed filters are constant,
    /// hence outer-independent).
    /// `None` means the memory budget denied the build — the caller
    /// degrades to row-checking [`Ordered::row_survives`] during its
    /// scan instead of failing.
    pub(crate) fn scan_selection(&self, rel: &Relation, ob: &Ordered<'_>) -> Option<Arc<Vec<u32>>> {
        let key = (rel as *const Relation as usize, ob.selection_key());
        if let Some(sel) = self.selections.borrow().get(&key) {
            metrics::selection_cache_hits().inc();
            return Some(sel.clone());
        }
        // Admission: the selection vector itself, then what computing it
        // materializes — the ordered index for an index-range probe, the
        // column chunks for the vectorized kernels. A denied chunk build
        // only downgrades the computation to the row loop; a denied
        // selection or ordered-index build degrades the whole scan.
        if !self.guard_admit(seam::SELECTION_BUILD, rel.len() * 8) {
            return None;
        }
        let columnar = if ob.index_plan.is_some() {
            if !self.guard_admit(seam::ORDERED_BUILD, rel.len() * 16) {
                return None;
            }
            true
        } else {
            self.guard_admit(seam::CHUNK_BUILD, rel.len() * rel.schema.len().max(1) * 24)
        };
        let start = self.trace.then(std::time::Instant::now);
        let sel = Arc::new(if columnar {
            ob.compute_selection(rel)
        } else {
            ob.compute_selection_rows(rel)
        });
        metrics::selection_builds().inc();
        if let Some(s) = start {
            metrics::selection_build_time().record_nanos(s.elapsed().as_nanos() as u64);
        }
        self.selections.borrow_mut().insert(key, sel.clone());
        Some(sel)
    }

    /// Step `i`'s memoized hash index, timing the first (and only) build
    /// into the step's profile tally when tracing. The cold branch is
    /// taken once per materialized pipeline; after that this is a plain
    /// `OnceLock` load.
    fn step_index<'o>(
        &self,
        ob: &'o Ordered<'_>,
        plan: &HashPlan<'_>,
        rel: &Relation,
        i: usize,
        tally: Option<&ScopeTally>,
    ) -> Option<&'o Arc<HashIndex>> {
        if let Some(index) = ob.index.get() {
            return Some(index);
        }
        let start = (self.trace && tally.is_some()).then(std::time::Instant::now);
        let built = self.join_index(plan, rel)?;
        let index = ob.index.get_or_init(|| built);
        if let (Some(s), Some(t)) = (start, tally) {
            t.add_step_nanos(i, s.elapsed().as_nanos() as u64);
        }
        Some(index)
    }

    /// Step `i`'s memoized selection vector; same shape as
    /// [`Ctx::step_index`].
    fn step_selection<'o>(
        &self,
        ob: &'o Ordered<'_>,
        rel: &Relation,
        i: usize,
        tally: Option<&ScopeTally>,
    ) -> Option<&'o Arc<Vec<u32>>> {
        if let Some(sel) = ob.selection.get() {
            return Some(sel);
        }
        let start = (self.trace && tally.is_some()).then(std::time::Instant::now);
        let built = self.scan_selection(rel, ob)?;
        let sel = ob.selection.get_or_init(|| built);
        if let (Some(s), Some(t)) = (start, tally) {
            t.add_step_nanos(i, s.elapsed().as_nanos() as u64);
        }
        Some(sel)
    }

    /// Pushed-down filters of step `i`, then descend one level.
    #[allow(clippy::too_many_arguments)]
    fn step_into(
        &self,
        order: &[Ordered<'_>],
        i: usize,
        leaf: &[&Predicate],
        env: &mut Env,
        scope: usize,
        tally: Option<&ScopeTally>,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<bool> {
        if let Some(t) = tally {
            t.row(i);
        }
        // Guard tick seam: one amortized cooperative check per
        // environment entering a step.
        self.guard_step()?;
        for p in &order[i].step_filters {
            if !self.pred_truth(p, env)?.is_true() {
                return Ok(true); // this environment is filtered out
            }
        }
        if let Some(t) = tally {
            t.pass(i);
        }
        self.enumerate_rec(order, i + 1, leaf, env, scope, tally, cb)
    }

    /// Execute one morsel of a partitioned scope: enumerate rows
    /// `range` of the first step's scan (the plan's partition axis) and
    /// descend through the remaining steps exactly as the sequential
    /// loop would. Concatenating the callbacks' outputs over consecutive
    /// ranges reproduces the sequential enumeration order. `tally` is
    /// the morsel-local profile tally; note it never counts a step-0
    /// *call* — the parallel coordinator counts the scope entry (and its
    /// axis scan's single start) exactly once, which is what keeps a
    /// partitioned profile count-identical to the sequential one.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn scan_partition(
        &self,
        order: &[Ordered<'_>],
        leaf: &[&Predicate],
        range: std::ops::Range<usize>,
        env: &mut Env,
        scope: usize,
        tally: Option<&ScopeTally>,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        // Guard check seam: every morsel begins with a full cooperative
        // check, so a tripped guard stops within one morsel of work.
        self.guard_at(seam::MORSEL)?;
        let Some(first) = order.first() else {
            return Err(EvalError::Internal(
                "partitioned scope with no steps".into(),
            ));
        };
        let (Src::Rows(rel), None) = (&first.source, &first.hash_plan) else {
            return Err(EvalError::Internal(
                "partition axis is not a relation scan".into(),
            ));
        };
        let attrs = Arc::new(rel.schema.clone());
        if first.uses_selection() {
            // Selection-backed scan (index probe and/or vectorized
            // prefix): walk the (ascending) selection restricted to this
            // morsel's row range — concatenation over consecutive
            // ranges still reproduces the sequential order.
            let sel = match first.selection.get() {
                Some(sel) => Some(sel),
                None => self
                    .scan_selection(rel, first)
                    .map(|built| first.selection.get_or_init(|| built)),
            };
            let Some(sel) = sel else {
                // Degraded morsel scan (budget denied the selection):
                // row-check the same predicates over this range.
                for row in &rel.rows[range] {
                    if !first.row_survives(row) {
                        continue;
                    }
                    env.push(first.var.clone(), attrs.clone(), row.clone());
                    let cont = self.step_into(order, 0, leaf, env, scope, tally, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(());
                    }
                }
                return Ok(());
            };
            let start = sel.partition_point(|&r| (r as usize) < range.start);
            for &ridx in &sel[start..] {
                if ridx as usize >= range.end {
                    break;
                }
                env.push(
                    first.var.clone(),
                    attrs.clone(),
                    rel.rows[ridx as usize].clone(),
                );
                let cont = self.step_into(order, 0, leaf, env, scope, tally, cb)?;
                env.pop();
                if !cont {
                    return Ok(());
                }
            }
            return Ok(());
        }
        for row in &rel.rows[range] {
            env.push(first.var.clone(), attrs.clone(), row.clone());
            let cont = self.step_into(order, 0, leaf, env, scope, tally, cb)?;
            env.pop();
            if !cont {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Recursive plan execution; returns false when stopped early. Each
    /// level enumerates its access path — scan, lazily built hash index,
    /// external access pattern, abstract membership check, or lateral
    /// evaluation — applies its pushed-down filters, and recurses.
    ///
    /// This wrapper is the step span seam: one span per step invocation
    /// (= per upstream environment entering step `i`, matching the
    /// profile's `calls` semantics), covering the step's whole candidate
    /// loop including everything nested below it. Leaf entries
    /// (`i == order.len()`) record nothing.
    #[allow(clippy::too_many_arguments)]
    fn enumerate_rec(
        &self,
        order: &[Ordered<'_>],
        i: usize,
        leaf: &[&Predicate],
        env: &mut Env,
        scope: usize,
        tally: Option<&ScopeTally>,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<bool> {
        match &self.spans {
            Some(sink) if i < order.len() => {
                let span = sink.start(self.lane);
                let res = self.enumerate_rec_inner(order, i, leaf, env, scope, tally, cb);
                if let Some(t0) = span {
                    sink.complete(
                        self.lane,
                        arc_trace::SpanKind::Step,
                        arc_trace::OpId::step(scope, i),
                        t0,
                    );
                }
                res
            }
            _ => self.enumerate_rec_inner(order, i, leaf, env, scope, tally, cb),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn enumerate_rec_inner(
        &self,
        order: &[Ordered<'_>],
        i: usize,
        leaf: &[&Predicate],
        env: &mut Env,
        scope: usize,
        tally: Option<&ScopeTally>,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<bool> {
        if i == order.len() {
            // All bound: apply the leaf filters, then the callback.
            for p in leaf {
                if !self.pred_truth(p, env)?.is_true() {
                    return Ok(true);
                }
            }
            if let Some(t) = tally {
                t.emit();
            }
            return cb(self, env);
        }
        if let Some(t) = tally {
            t.call(i);
        }
        let ob = &order[i];
        match &ob.source {
            Src::Rows(rel) => {
                let attrs = Arc::new(rel.schema.clone());
                if let Some(plan) = &ob.hash_plan {
                    let Some(key) = plan.probe_key(self, env)? else {
                        return Ok(true); // NULL/NaN probe: no row can match
                    };
                    let Some(index) = self.step_index(ob, plan, rel, i, tally) else {
                        // Degraded streaming probe (budget denied the
                        // hash build): key-compare every base row —
                        // identical matches, identical ascending order.
                        for row in &rel.rows {
                            if Relation::key_for(row, &plan.key_cols).as_deref()
                                != Some(key.as_slice())
                            {
                                continue;
                            }
                            env.push(ob.var.clone(), attrs.clone(), row.clone());
                            let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                            env.pop();
                            if !cont {
                                return Ok(false);
                            }
                        }
                        return Ok(true);
                    };
                    if let Some(matches) = index.get(&key) {
                        for &ridx in matches {
                            let row = &rel.rows[ridx as usize];
                            env.push(ob.var.clone(), attrs.clone(), row.clone());
                            let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                            env.pop();
                            if !cont {
                                return Ok(false);
                            }
                        }
                    }
                    return Ok(true);
                }
                if ob.uses_selection() {
                    // Selection-backed scan: the index probe and/or the
                    // constant-filter prefix already ran; enumerate the
                    // selection (in ascending row order, so emission
                    // order is identical to the row path) and row-check
                    // only the residue.
                    let Some(sel) = self.step_selection(ob, rel, i, tally) else {
                        // Degraded scan (budget denied the selection):
                        // row-check the same predicates in row order.
                        for row in &rel.rows {
                            if !ob.row_survives(row) {
                                continue;
                            }
                            env.push(ob.var.clone(), attrs.clone(), row.clone());
                            let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                            env.pop();
                            if !cont {
                                return Ok(false);
                            }
                        }
                        return Ok(true);
                    };
                    for &ridx in sel.iter() {
                        env.push(
                            ob.var.clone(),
                            attrs.clone(),
                            rel.rows[ridx as usize].clone(),
                        );
                        let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                        env.pop();
                        if !cont {
                            return Ok(false);
                        }
                    }
                    return Ok(true);
                }
                for row in &rel.rows {
                    env.push(ob.var.clone(), attrs.clone(), row.clone());
                    let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::Nested(c) => {
                // Lateral: evaluate the nested collection per environment.
                let rel = self.collection_relation(c, env)?;
                let attrs = Arc::new(rel.schema.clone());
                for row in rel.rows {
                    env.push(ob.var.clone(), attrs.clone(), row);
                    let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::External {
                ext,
                pattern,
                inputs,
            } => {
                let mut vals = Vec::with_capacity(inputs.len());
                let mut null_input = false;
                for e in inputs {
                    let v = self.scalar(e, env)?;
                    if v.is_null() {
                        null_input = true;
                        break;
                    }
                    vals.push(v);
                }
                if null_input {
                    return Ok(true); // no tuples relate to NULL operands
                }
                let attrs = Arc::new(ext.schema.clone());
                for tuple in (pattern.complete)(&vals) {
                    env.push(ob.var.clone(), attrs.clone(), tuple);
                    let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::Abstract { def, inputs } => {
                // Determine the full candidate tuple, then check membership
                // by evaluating the abstract definition's body with the
                // head fixed (§2.13.2).
                let mut tuple = Vec::with_capacity(inputs.len());
                let mut null_input = false;
                for e in inputs {
                    let v = self.scalar(e, env)?;
                    if v.is_null() {
                        null_input = true;
                        break;
                    }
                    tuple.push(v);
                }
                if null_input {
                    return Ok(true);
                }
                let head_attrs = Arc::new(def.head.attrs.clone());
                let head_var: Arc<str> = Arc::from(def.head.relation.as_str());
                env.push(head_var, head_attrs.clone(), tuple.clone());
                let holds = self.formula_truth(&def.body, env)?;
                env.pop();
                if holds.is_true() {
                    env.push(ob.var.clone(), head_attrs, tuple);
                    let cont = self.step_into(order, i, leaf, env, scope, tally, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Resolve binding sources by name.
    ///
    /// Resolution order matches the pre-plan evaluator: defined
    /// (materialized) relations shadow catalog relations, which shadow
    /// abstract definitions, which shadow externals.
    pub(crate) fn resolve_bindings<'c>(
        &'c self,
        bindings: &'c [Binding],
    ) -> Result<Vec<Resolved<'c>>> {
        let mut resolved: Vec<Resolved<'c>> = Vec::with_capacity(bindings.len());
        for b in bindings {
            resolved.push(match &b.source {
                BindingSource::Named(name) => {
                    if let Some(rel) = self.defined.get(name) {
                        Resolved::Rel(rel)
                    } else if let Some(rel) = self.catalog.relation(name) {
                        Resolved::Rel(rel)
                    } else if let Some(def) = self.abstracts.get(name) {
                        Resolved::Abs(def)
                    } else if let Some(ext) = self.catalog.external(name) {
                        Resolved::Ext(ext)
                    } else {
                        return Err(EvalError::UnknownRelation(name.clone()));
                    }
                }
                BindingSource::Collection(c) => Resolved::Nested(c),
            });
        }
        Ok(resolved)
    }

    /// The scope's physical plan — through the caches when possible.
    ///
    /// Lookup order: the `Ctx`-level map keyed by *(binding-list address,
    /// outer signature, boolean role)* (addresses are stable for the
    /// `Ctx` lifetime because the AST strictly outlives the
    /// per-evaluation context); then the global cache keyed by the full
    /// structural [`PlanKey`](arc_plan::PlanKey); then a fresh
    /// [`arc_plan::plan_scope`] (or, for boolean scopes,
    /// [`arc_plan::plan_scope_boolean`] — the decorrelation pass) run,
    /// published to both.
    pub(crate) fn scope_plan(
        &self,
        bindings: &[Binding],
        filters: &[&Predicate],
        env: &Env,
        resolved: &[Resolved<'_>],
        boolean: bool,
    ) -> Result<Arc<ScopePlan>> {
        let frees: Vec<Vec<String>> = resolved
            .iter()
            .map(|r| match r {
                Resolved::Nested(c) => free_vars(c),
                _ => Vec::new(),
            })
            .collect();
        let locals: Vec<&str> = bindings.iter().map(|b| b.var.as_str()).collect();
        let outer = EnvOuter(env);
        let sig = cache::outer_signature(
            &locals,
            filters,
            frees.iter().flatten().map(String::as_str),
            &outer,
        );
        // The statistics epoch rides in both cache keys. The *global*
        // key is where it carries the invalidation guarantee (a
        // post-`ANALYZE` evaluation re-plans instead of serving a plan
        // shaped by the old statistics — `tests/plan_cache.rs` phase 5);
        // in the per-`Ctx` key it is constant today (the catalog borrow
        // is immutable for the `Ctx` lifetime, and the map dies with the
        // evaluation) — kept only so the two key shapes stay in lockstep
        // if a context ever outlives a statistics change.
        let epoch = self.catalog.stats_epoch();
        let ctx_key = (bindings.as_ptr() as usize, sig, epoch, boolean);
        if let Some(plan) = self.plans.borrow().get(&ctx_key) {
            return Ok(plan.clone());
        }

        // Describe the scope to the planner.
        let spec_bindings: Vec<BindingSpec<'_>> = bindings
            .iter()
            .zip(resolved.iter())
            .zip(frees.iter())
            .map(|((b, r), free)| BindingSpec {
                var: &b.var,
                source: match r {
                    Resolved::Rel(rel) => SourceSpec::Relation {
                        schema: &rel.schema,
                        rows: Some(rel.rows.len()),
                    },
                    Resolved::Ext(ext) => SourceSpec::External {
                        schema: &ext.schema,
                        patterns: ext.patterns.iter().map(|p| p.bound.as_slice()).collect(),
                    },
                    Resolved::Abs(def) => SourceSpec::Abstract {
                        attrs: &def.head.attrs,
                    },
                    Resolved::Nested(c) => SourceSpec::Nested {
                        attrs: &c.head.attrs,
                        free: free.clone(),
                    },
                },
            })
            .collect();
        let estimator = CtxEstimator {
            ctx: self,
            resolved,
        };
        let spec = ScopeSpec {
            bindings: spec_bindings,
            filters,
            outer: &outer,
            estimator: Some(&estimator),
            indexes: self.indexes,
        };

        let key = arc_plan::PlanKey {
            program: self.program,
            scope: cache::scope_fingerprint(&spec),
            sig,
            epoch,
            mode: self.strategy.plan_mode(),
            decor: boolean,
            indexes: self.indexes,
        };
        let plan = match cache::global_lookup(&key) {
            Some(plan) => plan,
            None => {
                // Plan, mapping planner failures onto the precise
                // source-kind diagnostics. A global cache miss is the only
                // arm that runs the planner, so it is the only arm that
                // records a plan span.
                let plan_span = self.spans.as_ref().and_then(|s| s.start(self.lane));
                let planned = if boolean {
                    arc_plan::plan_scope_boolean(&spec, self.strategy.plan_mode())
                } else {
                    arc_plan::plan_scope(&spec, self.strategy.plan_mode())
                };
                let plan = planned.map_err(|e| {
                    let PlanError::Unplaceable { binding } = e;
                    let b = &bindings[binding];
                    match (&b.source, &resolved[binding]) {
                        (BindingSource::Named(name), Resolved::Ext(_)) => EvalError::NoAccessPath {
                            relation: name.clone(),
                            var: b.var.clone(),
                        },
                        (BindingSource::Named(name), Resolved::Abs(_)) => {
                            EvalError::AbstractUnderdetermined {
                                relation: name.clone(),
                                var: b.var.clone(),
                            }
                        }
                        (_, Resolved::Nested(c)) => EvalError::UnboundVariable(
                            free_vars(c).into_iter().next().unwrap_or_default(),
                        ),
                        _ => EvalError::Internal(format!(
                            "relation binding `{}` reported unplaceable",
                            b.var
                        )),
                    }
                })?;
                let plan = Arc::new(plan);
                cache::global_store(key, plan.clone());
                if let (Some(sink), Some(t0)) = (&self.spans, plan_span) {
                    sink.complete(
                        self.lane,
                        arc_trace::SpanKind::Plan,
                        arc_trace::OpId::scope(bindings.as_ptr() as usize),
                        t0,
                    );
                }
                plan
            }
        };
        if boolean && plan.decorrelation.is_none() {
            // A bailed decorrelation is byte-identical to the emitting-role
            // plan (`plan_scope_boolean` falls back to the ordinary
            // pipeline): publish it under the non-boolean keys too, so the
            // nested path that follows — `quant_truth` falling through to
            // `enumerate` — reuses it instead of planning the same scope a
            // second time.
            cache::global_store(
                arc_plan::PlanKey {
                    decor: false,
                    ..key
                },
                plan.clone(),
            );
            self.plans
                .borrow_mut()
                .insert((ctx_key.0, ctx_key.1, ctx_key.2, false), plan.clone());
        }
        self.plans.borrow_mut().insert(ctx_key, plan.clone());
        Ok(plan)
    }

    /// Materialize executable steps from a (possibly cached) plan.
    #[allow(clippy::type_complexity)]
    pub(crate) fn materialize_steps<'c>(
        &'c self,
        bindings: &'c [Binding],
        filters: &[&'c Predicate],
        resolved: &[Resolved<'c>],
        plan: &ScopePlan,
    ) -> Result<(Vec<Ordered<'c>>, Vec<&'c Predicate>, Vec<&'c Predicate>)> {
        let mut order: Vec<Ordered<'c>> = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let b = &bindings[step.binding];
            let input_exprs = |inputs: &[arc_plan::EqInput]| -> Vec<Scalar> {
                inputs
                    .iter()
                    .map(|e| other_side(filters[e.filter], e.attr_on_left).clone())
                    .collect()
            };
            let mut index_plan = None;
            let (source, hash_plan) = match (&resolved[step.binding], &step.access) {
                (Resolved::Rel(rel), Access::Scan) => (Src::Rows(rel), None),
                (
                    Resolved::Rel(rel),
                    Access::IndexRange {
                        cols,
                        filters: consumed,
                    },
                ) => {
                    // Re-derive the bound semantics from the consumed
                    // filters with the planner's own classifier; a
                    // mismatch is a planner/engine contract violation.
                    index_plan = Some(
                        super::index::IndexPlan::build(
                            cols,
                            consumed,
                            filters,
                            &b.var,
                            &rel.schema,
                        )
                        .ok_or_else(|| {
                            EvalError::Internal(format!(
                                "index-range filters for `{}` did not re-derive",
                                b.var
                            ))
                        })?,
                    );
                    (Src::Rows(rel), None)
                }
                (Resolved::Rel(rel), Access::HashProbe { keys }) => {
                    let key_cols = keys.iter().map(|k| k.col).collect();
                    let probe_exprs = keys
                        .iter()
                        .map(|k| other_side(filters[k.eq.filter], k.eq.attr_on_left))
                        .collect();
                    (
                        Src::Rows(rel),
                        Some(HashPlan {
                            key_cols,
                            probe_exprs,
                        }),
                    )
                }
                (Resolved::Ext(ext), Access::External { pattern, inputs }) => (
                    Src::External {
                        ext,
                        pattern: &ext.patterns[*pattern],
                        inputs: input_exprs(inputs),
                    },
                    None,
                ),
                (Resolved::Abs(def), Access::Abstract { inputs }) => (
                    Src::Abstract {
                        def,
                        inputs: input_exprs(inputs),
                    },
                    None,
                ),
                (Resolved::Nested(c), Access::Nested) => (Src::Nested(c), None),
                (_, access) => {
                    return Err(EvalError::Internal(format!(
                        "planner chose {} for an incompatible source of `{}`",
                        access.name(),
                        b.var
                    )))
                }
            };
            let all_filters: Vec<&'c Predicate> =
                step.filters.iter().map(|&i| filters[i]).collect();
            // Vectorized scans hoist the leading run of constant filters
            // into columnar kernels; everything after the first
            // non-classifiable filter stays row-at-a-time, in order, so
            // error behaviour is untouched (see [`super::vector`]).
            let (vec_filters, vec_key, step_filters) = match (&source, &hash_plan) {
                (Src::Rows(rel), None)
                    if self.vectorize && rel.len() >= super::vector::VECTOR_MIN_ROWS =>
                {
                    let mut vf = Vec::new();
                    let mut vk = Vec::new();
                    let mut split = 0;
                    for p in &all_filters {
                        match super::vector::classify(p, &b.var, &rel.schema) {
                            Some(f) => {
                                vf.push(f);
                                vk.push(*p as *const Predicate as usize);
                                split += 1;
                            }
                            None => break,
                        }
                    }
                    (vf, vk, all_filters[split..].to_vec())
                }
                _ => (Vec::new(), Vec::new(), all_filters),
            };
            order.push(Ordered {
                var: Arc::from(b.var.as_str()),
                source,
                hash_plan,
                step_filters,
                vec_filters,
                vec_key,
                index_plan,
                index: std::sync::OnceLock::new(),
                selection: std::sync::OnceLock::new(),
            });
        }
        let prelude = plan.prelude_filters.iter().map(|&i| filters[i]).collect();
        let leaf = plan.leaf_filters.iter().map(|&i| filters[i]).collect();
        Ok((order, prelude, leaf))
    }

    /// Resolve binding sources, fetch (or compute) the scope plan, and
    /// turn it into executable steps.
    #[allow(clippy::type_complexity)]
    pub(crate) fn plan_bindings<'c>(
        &'c self,
        bindings: &'c [Binding],
        filters: &[&'c Predicate],
        env: &Env,
    ) -> Result<(Vec<Ordered<'c>>, Vec<&'c Predicate>, Vec<&'c Predicate>)> {
        let resolved = self.resolve_bindings(bindings)?;
        let plan = self.scope_plan(bindings, filters, env, &resolved, false)?;
        self.materialize_steps(bindings, filters, &resolved, &plan)
    }

    /// Drive already-materialized steps to completion (no re-planning):
    /// the semi-join build pipeline enters here, everything else goes
    /// through [`Ctx::enumerate`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn run_steps(
        &self,
        order: &[Ordered<'_>],
        leaf: &[&Predicate],
        env: &mut Env,
        scope: usize,
        tally: Option<&ScopeTally>,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        self.enumerate_rec(order, 0, leaf, env, scope, tally, cb)
            .map(|_| ())
    }
}

// The parallel executor shares materialized pipelines across pool
// workers; keep that a compile-time fact.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<Ordered<'static>>();
    assert_sync::<Src<'static>>();
};
