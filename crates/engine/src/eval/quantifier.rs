//! The binding loop: ordering bindings, enumerating environments, and the
//! pluggable join strategy.
//!
//! [`Ctx::enumerate`] drives a callback over every environment of a
//! quantifier scope that survives the filter predicates. Ordering places
//! external/abstract relations after the bindings that determine their
//! inputs and lateral nested collections after their referenced siblings.
//!
//! Under [`EvalStrategy::HashJoin`](super::EvalStrategy::HashJoin) the
//! ordering pass additionally attaches a [`HashPlan`] to every relation
//! binding reachable through equality predicates from already-placed
//! variables; enumeration then probes a hash index instead of scanning.
//! The probe iterates matches in the relation's original row order and
//! every filter is still re-checked at the leaf, so the callback sees
//! exactly the environments the nested loop would produce, in the same
//! order — the strategies are observably identical, only faster.

use super::env::Env;
use super::partition::{equality_pair, free_vars};
use super::strategy::EvalStrategy;
use super::Ctx;
use crate::error::{EvalError, Result};
use crate::external::{AccessPattern, ExternalRelation};
use crate::relation::Relation;
use arc_core::ast::*;
use arc_core::value::{Key, Value};
use std::collections::HashMap;
use std::rc::Rc;

/// Where one ordered binding draws its tuples from.
pub(crate) enum Src<'b> {
    /// A materialized relation (base, defined, or fixpoint result).
    Rows(&'b Relation),
    /// A correlated nested collection, evaluated per environment.
    Nested(&'b Collection),
    /// An external relation solved through an access pattern (§2.13.1).
    External {
        ext: &'b ExternalRelation,
        pattern: &'b AccessPattern,
        inputs: Vec<Scalar>,
    },
    /// An abstract relation checked in context (§2.13.2).
    Abstract {
        def: &'b Collection,
        inputs: Vec<Scalar>,
    },
}

/// Equi-join access plan for one relation binding: which columns form the
/// hash key and which outer expressions produce the probe key.
pub(crate) struct HashPlan<'b> {
    /// Column indices (into the relation schema) of the join key.
    key_cols: Vec<usize>,
    /// Outer-side expressions, parallel to `key_cols`.
    probe_exprs: Vec<&'b Scalar>,
}

/// A hash index over a relation: join key → row indices in original order.
pub(crate) type HashIndex = HashMap<Vec<Key>, Vec<u32>>;

/// The per-query index cache living on [`Ctx`], keyed by relation address
/// plus key columns (see [`Ctx::join_index`] for why addresses are stable).
pub(crate) type JoinIndexCache = std::cell::RefCell<HashMap<(usize, Vec<usize>), Rc<HashIndex>>>;

/// A value's hash key for equi-join purposes, or `None` when the value can
/// never satisfy an equality predicate (`NULL` compares as `Unknown`; a
/// float `NaN` is incomparable even to itself), so indexing/probing with
/// it must produce no matches.
fn join_key(v: &Value) -> Option<Key> {
    match v {
        Value::Null => None,
        Value::Float(f) if f.is_nan() => None,
        // `Value::key()` normalizes integral floats to integer keys, so
        // key equality coincides exactly with `compare(..) == Equal` for
        // the remaining values.
        other => Some(other.key()),
    }
}

impl<'b> HashPlan<'b> {
    fn build_index(&self, rel: &Relation) -> HashIndex {
        let mut index: HashIndex = HashMap::with_capacity(rel.rows.len());
        'rows: for (i, row) in rel.rows.iter().enumerate() {
            let mut key = Vec::with_capacity(self.key_cols.len());
            for &c in &self.key_cols {
                match join_key(&row[c]) {
                    Some(k) => key.push(k),
                    None => continue 'rows,
                }
            }
            index.entry(key).or_default().push(i as u32);
        }
        index
    }

    fn probe_key(&self, ctx: &Ctx<'_>, env: &mut Env) -> Result<Option<Vec<Key>>> {
        let mut key = Vec::with_capacity(self.probe_exprs.len());
        for e in &self.probe_exprs {
            match join_key(&ctx.scalar(e, env)?) {
                Some(k) => key.push(k),
                None => return Ok(None),
            }
        }
        Ok(Some(key))
    }
}

/// One binding with a resolved source (and optional hash-join plan), in
/// enumeration order.
pub(crate) struct Ordered<'b> {
    var: Rc<str>,
    source: Src<'b>,
    hash_plan: Option<HashPlan<'b>>,
    /// The plan's index, memoized on first probe so the hot loop touches
    /// neither the [`Ctx`]-level cache nor its heap-allocated key again.
    index: std::cell::OnceCell<Rc<HashIndex>>,
}

/// The attribute schema an [`Ordered`] binding exposes to later probe
/// expressions (needed for plan-time validation of attribute references).
fn source_schema<'b>(src: &Src<'b>) -> &'b [String] {
    match src {
        Src::Rows(rel) => &rel.schema,
        Src::Nested(c) => &c.head.attrs,
        Src::External { ext, .. } => &ext.schema,
        Src::Abstract { def, .. } => &def.head.attrs,
    }
}

impl<'a> Ctx<'a> {
    /// Enumerate all binding environments of a quantifier, applying the
    /// filter predicates, and invoke `cb` for each survivor. `cb` returns
    /// `Ok(false)` to stop early (existential short-circuit).
    pub(crate) fn enumerate(
        &self,
        bindings: &[Binding],
        join: Option<&JoinTree>,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<()> {
        if let Some(tree) = join {
            if tree.has_outer() {
                return self.enumerate_join(bindings, tree, filters, env, cb);
            }
            // A pure-inner annotation is semantically the default join.
        }
        let order = self.order_bindings(bindings, filters, env)?;
        self.enumerate_rec(&order, 0, filters, env, cb).map(|_| ())
    }

    /// Build (or fetch from the per-query cache) the hash index for a plan
    /// over a relation. The cache key is the relation's address plus the
    /// key columns: relations are borrowed from the catalog or the
    /// `defined` map, both immutable for the lifetime of the [`Ctx`], so
    /// addresses are stable — and correlated scopes (one `enumerate` call
    /// per outer environment) reuse the index instead of rebuilding it per
    /// outer row.
    fn join_index(&self, plan: &HashPlan<'_>, rel: &Relation) -> Rc<HashIndex> {
        let key = (rel as *const Relation as usize, plan.key_cols.clone());
        if let Some(index) = self.join_indexes.borrow().get(&key) {
            return index.clone();
        }
        let index = Rc::new(plan.build_index(rel));
        self.join_indexes.borrow_mut().insert(key, index.clone());
        index
    }

    /// Recursive enumeration; returns false when stopped early. Each level
    /// either scans its source (nested loop) or probes a lazily built hash
    /// index (hash join) — the latter yields the same rows in the same
    /// order, minus those an equality filter would reject.
    fn enumerate_rec(
        &self,
        order: &[Ordered<'_>],
        i: usize,
        filters: &[&Predicate],
        env: &mut Env,
        cb: &mut dyn FnMut(&Ctx<'a>, &mut Env) -> Result<bool>,
    ) -> Result<bool> {
        if i == order.len() {
            // All bound: apply filters, then the callback.
            for p in filters {
                if !self.pred_truth(p, env)?.is_true() {
                    return Ok(true);
                }
            }
            return cb(self, env);
        }
        let ob = &order[i];
        match &ob.source {
            Src::Rows(rel) => {
                let attrs = Rc::new(rel.schema.clone());
                if let Some(plan) = &ob.hash_plan {
                    let Some(key) = plan.probe_key(self, env)? else {
                        return Ok(true); // NULL/NaN probe: no row can match
                    };
                    let index = ob.index.get_or_init(|| self.join_index(plan, rel));
                    if let Some(matches) = index.get(&key) {
                        for &ridx in matches {
                            let row = &rel.rows[ridx as usize];
                            env.push(ob.var.clone(), attrs.clone(), row.clone());
                            let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                            env.pop();
                            if !cont {
                                return Ok(false);
                            }
                        }
                    }
                    return Ok(true);
                }
                for row in &rel.rows {
                    env.push(ob.var.clone(), attrs.clone(), row.clone());
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::Nested(c) => {
                // Lateral: evaluate the nested collection per environment.
                let rel = self.collection_relation(c, env)?;
                let attrs = Rc::new(rel.schema.clone());
                for row in rel.rows {
                    env.push(ob.var.clone(), attrs.clone(), row);
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::External {
                ext,
                pattern,
                inputs,
            } => {
                let mut vals = Vec::with_capacity(inputs.len());
                let mut null_input = false;
                for e in inputs {
                    let v = self.scalar(e, env)?;
                    if v.is_null() {
                        null_input = true;
                        break;
                    }
                    vals.push(v);
                }
                if null_input {
                    return Ok(true); // no tuples relate to NULL operands
                }
                let attrs = Rc::new(ext.schema.clone());
                for tuple in (pattern.complete)(&vals) {
                    env.push(ob.var.clone(), attrs.clone(), tuple);
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Src::Abstract { def, inputs } => {
                // Determine the full candidate tuple, then check membership
                // by evaluating the abstract definition's body with the
                // head fixed (§2.13.2).
                let mut tuple = Vec::with_capacity(inputs.len());
                let mut null_input = false;
                for e in inputs {
                    let v = self.scalar(e, env)?;
                    if v.is_null() {
                        null_input = true;
                        break;
                    }
                    tuple.push(v);
                }
                if null_input {
                    return Ok(true);
                }
                let head_attrs = Rc::new(def.head.attrs.clone());
                let head_var: Rc<str> = Rc::from(def.head.relation.as_str());
                env.push(head_var, head_attrs.clone(), tuple.clone());
                let holds = self.formula_truth(&def.body, env)?;
                env.pop();
                if holds.is_true() {
                    env.push(ob.var.clone(), head_attrs, tuple);
                    let cont = self.enumerate_rec(order, i + 1, filters, env, cb)?;
                    env.pop();
                    if !cont {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
        }
    }

    /// Order bindings so that external/abstract relations come after the
    /// bindings that determine their inputs, and laterally-dependent nested
    /// collections after their referenced siblings. Under the hash-join
    /// strategy, also attach an equi-join [`HashPlan`] where one applies.
    fn order_bindings<'c>(
        &'c self,
        bindings: &'c [Binding],
        filters: &[&'c Predicate],
        env: &Env,
    ) -> Result<Vec<Ordered<'c>>> {
        let mut remaining: Vec<&Binding> = bindings.iter().collect();
        let mut available: Vec<String> = Vec::new();
        let mut out: Vec<Ordered<'c>> = Vec::with_capacity(bindings.len());

        // Equality predicates usable to determine external/abstract inputs
        // (and, under hash join, equi-join keys).
        let equalities: Vec<(&AttrRef, &Scalar)> =
            filters.iter().flat_map(|p| equality_pair(p)).collect();

        // A variable is usable by an input/probe/lateral expression only
        // once it is *placed*. A name declared by this quantifier but not
        // yet placed must NOT fall back to a same-named outer variable:
        // the local binding shadows it, and resolving through the outer
        // one would silently evaluate against the wrong tuple.
        let locals: std::collections::HashSet<&str> =
            bindings.iter().map(|b| b.var.as_str()).collect();
        let usable = |var: &str, available: &[String], env: &Env| -> bool {
            available.iter().any(|v| v == var) || (!locals.contains(var) && env.has_var(var))
        };
        let resolvable = |expr: &Scalar, available: &[String], env: &Env| -> bool {
            expr.attr_refs()
                .iter()
                .all(|r| usable(&r.var, available, env))
        };

        while !remaining.is_empty() {
            let mut placed = None;
            'scan: for (idx, b) in remaining.iter().enumerate() {
                match &b.source {
                    BindingSource::Named(name) => {
                        if let Some(rel) = self.defined.get(name) {
                            placed = Some((idx, Src::Rows(rel)));
                            break 'scan;
                        }
                        if let Some(rel) = self.catalog.relation(name) {
                            placed = Some((idx, Src::Rows(rel)));
                            break 'scan;
                        }
                        if let Some(def) = self.abstracts.get(name) {
                            // All attributes must be determined.
                            let mut inputs = Vec::with_capacity(def.head.attrs.len());
                            for attr in &def.head.attrs {
                                let found = equalities.iter().find(|(a, e)| {
                                    a.var == b.var
                                        && &a.attr == attr
                                        && resolvable(e, &available, env)
                                });
                                match found {
                                    Some((_, e)) => inputs.push((*e).clone()),
                                    None => continue 'scan,
                                }
                            }
                            placed = Some((idx, Src::Abstract { def, inputs }));
                            break 'scan;
                        }
                        if let Some(ext) = self.catalog.external(name) {
                            for pattern in &ext.patterns {
                                let mut inputs = Vec::with_capacity(pattern.bound.len());
                                let mut ok = true;
                                for &pos in &pattern.bound {
                                    let attr = &ext.schema[pos];
                                    let found = equalities.iter().find(|(a, e)| {
                                        a.var == b.var
                                            && &a.attr == attr
                                            && resolvable(e, &available, env)
                                    });
                                    match found {
                                        Some((_, e)) => inputs.push((*e).clone()),
                                        None => {
                                            ok = false;
                                            break;
                                        }
                                    }
                                }
                                if ok {
                                    placed = Some((
                                        idx,
                                        Src::External {
                                            ext,
                                            pattern,
                                            inputs,
                                        },
                                    ));
                                    break 'scan;
                                }
                            }
                            continue 'scan;
                        }
                        return Err(EvalError::UnknownRelation(name.clone()));
                    }
                    BindingSource::Collection(c) => {
                        // Nested collections may reference earlier siblings
                        // (lateral); place once free variables are bound.
                        let free = free_vars(c);
                        let ready = free.iter().all(|v| usable(v, &available, env));
                        if ready {
                            placed = Some((idx, Src::Nested(c)));
                            break 'scan;
                        }
                    }
                }
            }
            match placed {
                Some((idx, source)) => {
                    let b = remaining.remove(idx);
                    let hash_plan = match (&self.strategy, &source) {
                        (EvalStrategy::HashJoin, Src::Rows(rel)) => {
                            self.hash_plan(&b.var, rel, &equalities, &available, env, &usable, &out)
                        }
                        _ => None,
                    };
                    available.push(b.var.clone());
                    out.push(Ordered {
                        var: Rc::from(b.var.as_str()),
                        source,
                        hash_plan,
                        index: std::cell::OnceCell::new(),
                    });
                }
                None => {
                    // Report the most informative error.
                    let b = remaining[0];
                    return Err(match &b.source {
                        BindingSource::Named(name) if self.catalog.external(name).is_some() => {
                            EvalError::NoAccessPath {
                                relation: name.clone(),
                                var: b.var.clone(),
                            }
                        }
                        BindingSource::Named(name) if self.abstracts.contains_key(name) => {
                            EvalError::AbstractUnderdetermined {
                                relation: name.clone(),
                                var: b.var.clone(),
                            }
                        }
                        BindingSource::Named(name) => EvalError::UnknownRelation(name.clone()),
                        BindingSource::Collection(c) => EvalError::UnboundVariable(
                            free_vars(c).into_iter().next().unwrap_or_default(),
                        ),
                    });
                }
            }
        }
        Ok(out)
    }

    /// Find the equi-join key for `var` over `rel`: every equality filter
    /// `var.attr = expr` whose other side is computable from bindings
    /// placed *before* `var` (or an outer variable that no local binding
    /// shadows — see `usable` in `order_bindings`) and does not mention
    /// `var` itself contributes one key column.
    ///
    /// Probe expressions are additionally validated attribute-by-attribute
    /// against the schemas they will resolve to. Scalar evaluation errors
    /// are data-independent (`UnknownAttribute` is the only one reachable
    /// here), so rejecting an unresolvable expression *at plan time* keeps
    /// the strategies observably identical on error paths too: the nested
    /// loop surfaces such errors only if enumeration actually reaches the
    /// offending filter, and the fallback scan reproduces exactly that.
    #[allow(clippy::too_many_arguments)]
    fn hash_plan<'c>(
        &self,
        var: &str,
        rel: &Relation,
        equalities: &[(&'c AttrRef, &'c Scalar)],
        available: &[String],
        env: &Env,
        usable: &dyn Fn(&str, &[String], &Env) -> bool,
        placed: &[Ordered<'c>],
    ) -> Option<HashPlan<'c>> {
        // Plan-time attribute resolution, mirroring runtime lookup order:
        // placed bindings shadow the outer environment, innermost first.
        let attr_resolves = |r: &AttrRef| -> bool {
            for ob in placed.iter().rev() {
                if *ob.var == r.var {
                    return source_schema(&ob.source).contains(&r.attr);
                }
            }
            for f in env.frames.iter().rev() {
                if *f.var == r.var {
                    return f.attrs.contains(&r.attr);
                }
            }
            false
        };
        let mut key_cols = Vec::new();
        let mut probe_exprs = Vec::new();
        for (a, other) in equalities {
            if a.var != var {
                continue;
            }
            let Some(col) = rel.attr_index(&a.attr) else {
                continue;
            };
            // Aggregates cannot appear in filters (partitioning routes
            // them elsewhere), but guard anyway: probing must be a pure
            // per-tuple evaluation.
            if other.has_aggregate() {
                continue;
            }
            let refs = other.attr_refs();
            if refs.iter().any(|r| r.var == var) {
                continue;
            }
            if !refs
                .iter()
                .all(|r| usable(&r.var, available, env) && attr_resolves(r))
            {
                continue;
            }
            key_cols.push(col);
            probe_exprs.push(*other);
        }
        if key_cols.is_empty() {
            None
        } else {
            Some(HashPlan {
                key_cols,
                probe_exprs,
            })
        }
    }
}
