//! Scalar and predicate evaluation in tuple context: attribute lookup,
//! comparisons under the active null convention, and arithmetic.

use super::env::Env;
use super::Ctx;
use crate::error::{EvalError, Result};
use arc_core::ast::*;
use arc_core::conventions::NullLogic;
use arc_core::value::{cmp_truth, Truth, Value};

impl Ctx<'_> {
    /// Evaluate a scalar in tuple context (no aggregates).
    pub(crate) fn scalar(&self, s: &Scalar, env: &mut Env) -> Result<Value> {
        match s {
            Scalar::Attr(a) => env.lookup(&a.var, &a.attr),
            Scalar::Const(v) => Ok(v.clone()),
            Scalar::Agg(call) => Err(EvalError::AggregateOutsideGrouping(call.to_string())),
            Scalar::Arith { op, left, right } => {
                let l = self.scalar(left, env)?;
                let r = self.scalar(right, env)?;
                Ok(arith(*op, &l, &r))
            }
        }
    }

    /// Evaluate a predicate leaf to a truth value.
    pub(crate) fn pred_truth(&self, p: &Predicate, env: &mut Env) -> Result<Truth> {
        match p {
            Predicate::Cmp { left, op, right } => {
                let l = self.scalar(left, env)?;
                let r = self.scalar(right, env)?;
                Ok(self.compare(&l, *op, &r))
            }
            Predicate::IsNull { expr, negated } => {
                let v = self.scalar(expr, env)?;
                Ok(Truth::from_bool(v.is_null() != *negated))
            }
        }
    }

    /// Compare two values under the active null-logic convention: the
    /// shared three-valued table ([`arc_core::value::cmp_truth`], also the
    /// reference for the columnar kernels) followed by the convention's
    /// `Unknown` collapse.
    pub(crate) fn compare(&self, l: &Value, op: CmpOp, r: &Value) -> Truth {
        let t = cmp_truth(l, op, r);
        match self.conv.null_logic {
            NullLogic::ThreeValued => t,
            NullLogic::TwoValued => {
                if t == Truth::Unknown {
                    Truth::False
                } else {
                    t
                }
            }
        }
    }
}

/// Null-propagating arithmetic; integer ops stay integral, `Div` follows
/// SQL integer division for integer operands, division by zero yields
/// `NULL` (documented deviation: SQL raises an error; an error value would
/// poison whole-query evaluation for a single bad tuple).
pub(crate) fn arith(op: ArithOp, l: &Value, r: &Value) -> Value {
    if l.is_null() || r.is_null() {
        return Value::Null;
    }
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return match op {
            ArithOp::Add => Value::Int(a.wrapping_add(*b)),
            ArithOp::Sub => Value::Int(a.wrapping_sub(*b)),
            ArithOp::Mul => Value::Int(a.wrapping_mul(*b)),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_div(*b))
                }
            }
        };
    }
    match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => match op {
            ArithOp::Add => Value::Float(a + b),
            ArithOp::Sub => Value::Float(a - b),
            ArithOp::Mul => Value::Float(a * b),
            ArithOp::Div => {
                if b == 0.0 {
                    Value::Null
                } else {
                    Value::Float(a / b)
                }
            }
        },
        _ => Value::Null,
    }
}

/// Sum a slice of values: integral when all inputs are, float otherwise.
pub(crate) fn fold_sum(values: &[Value]) -> Value {
    let all_int = values.iter().all(|v| matches!(v, Value::Int(_)));
    if all_int {
        Value::Int(values.iter().filter_map(|v| v.as_i64()).sum())
    } else {
        match values
            .iter()
            .map(|v| v.as_f64())
            .collect::<Option<Vec<f64>>>()
        {
            Some(fs) => Value::Float(fs.iter().sum()),
            None => Value::Null,
        }
    }
}
