//! Decorrelated boolean scopes: set-level semi/anti-join execution.
//!
//! A boolean quantifier scope (`∃` in a conjunct, `¬∃` under negation —
//! the `semi-join ∃` / `anti-join ¬∃` roles in `EXPLAIN`) used to be
//! answered by re-entering the binding loop once per outer environment:
//! O(outer × inner) in the worst case, with the plan cache amortizing
//! only the *planning*. When the scope's correlation with the outer
//! environment is a **pure equi-join** (recognized by
//! [`arc_plan::plan_scope_boolean`]'s decorrelation pass), this module
//! instead:
//!
//! 1. evaluates the scope body **once** — the build pipeline, planned
//!    with the correlated filters masked and the outer environment
//!    hidden, so it is provably outer-row independent;
//! 2. keys a hash set on the scope-local sides of the correlated
//!    equalities (via [`join_key`], the workspace's single source of
//!    equi-join key semantics: `NULL`/`NaN` components never enter the
//!    set, because no equality can ever hold on them);
//! 3. answers every outer row by evaluating the outer sides and probing —
//!    O(1) per row, after the outer-only prelude filters run.
//!
//! ## Three-valued logic
//!
//! The probe reproduces the reference semantics exactly, including the
//! `NOT IN`-shaped corner: an outer key containing `NULL` makes every
//! correlated equality evaluate to `Unknown`, so no inner environment
//! survives — `∃` is *false* and `¬∃` (applied by the caller's negation)
//! is *true*, which is precisely what the nested path computes row by
//! row. Build-side `NULL` keys likewise match no probe. Bag semantics
//! needs no extra care: a boolean scope contributes a truth value, never
//! multiplicity (the §2.7 semijoin-multiplicity rule lives at the
//! emission spine, unchanged).
//!
//! ## Caching and sharing
//!
//! Built key sets live in [`SemiBuildCache`], keyed by the build plan's
//! `Arc` address (plans are cached per `Ctx` and never dropped before
//! it, and a statistics-epoch change produces a fresh plan `Arc`, so the
//! key can never serve a stale build). The cache itself sits behind an
//! `Arc<Mutex<…>>` shared with every worker context the parallel
//! executor forks — all workers probe the *same* build instead of each
//! re-building.
//!
//! ## Fallback
//!
//! If the build errors (say, an unknown attribute in a build-side leaf
//! filter), the error is *not* reported from here: the scope is marked
//! non-decorrelatable for this evaluation and the nested path re-runs it
//! per outer row — surfacing the error exactly when (and only when) the
//! reference enumeration would, early exits included.

use super::env::Env;
use super::partition::Parts;
use super::profile::ScopeTally;
use super::quantifier::EnvOuter;
use super::{Ctx, EvalStrategy};
use crate::error::Result;
use crate::metrics;
use crate::relation::join_key;
use arc_core::ast::{Quant, Scalar};
use arc_core::value::{Key, Truth};
use arc_plan::logical::eq_sides;
use arc_plan::ScopePlan;
use arc_trace::{OpId, OpStats};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// The correlated-key set of one build: every key the scope body can
/// produce (NULL/NaN-free by construction).
pub(crate) type KeySet = HashSet<Vec<Key>>;

/// One cached build. The entry **pins** the plan whose address keys it:
/// worker-planned `Arc`s are otherwise retained only by that worker's
/// plan snapshot and the (overwritable, cap-clearable) global cache, so
/// without the pin an address could be freed mid-evaluation and recycled
/// by a different scope's same-size plan allocation — and the probe
/// would serve the wrong key set. Holding the `Arc` makes address reuse
/// impossible for as long as the entry lives.
pub(crate) struct SemiEntry {
    _plan: Arc<ScopePlan>,
    /// `None` records a failed build: the scope falls back to the nested
    /// path for the rest of the evaluation (which reproduces any real
    /// error lazily) instead of re-attempting the build per outer row.
    set: Option<Arc<KeySet>>,
}

/// Build-once cache of decorrelated scopes, keyed by the (pinned, see
/// [`SemiEntry`]) build plan's `Arc` address.
#[derive(Clone, Default)]
pub(crate) struct SemiBuildCache(Arc<Mutex<HashMap<usize, SemiEntry>>>);

impl SemiBuildCache {
    /// Lock the cache, **recovering** from a poisoned mutex (a worker
    /// panicked mid-insert): the poison is cleared — so later locks take
    /// the fast path again — and the map is emptied, because a build
    /// interrupted by a panic may have published nothing or anything.
    /// Build-once is an optimization; dropping entries costs a rebuild,
    /// never correctness.
    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<usize, SemiEntry>> {
        self.0.lock().unwrap_or_else(|poisoned| {
            self.0.clear_poison();
            let mut map = poisoned.into_inner();
            map.clear();
            map
        })
    }
}

/// Total decorrelated-scope builds so far in this process — a read of
/// the `engine.semijoin.builds` registry counter (see
/// [`crate::metrics`]). `tests/semijoin_build.rs` asserts a correlated
/// scope builds once per evaluation — not once per outer row — the
/// execution-level companion of `arc_plan::planner_runs`.
pub fn semi_build_runs() -> u64 {
    metrics::semi_builds().get()
}

impl<'a> Ctx<'a> {
    /// Try to answer a boolean quantifier scope through the decorrelated
    /// set-level path. `Ok(None)` means "not decorrelatable here — run
    /// the nested loop"; the caller falls through with identical
    /// semantics.
    pub(crate) fn semijoin_truth(
        &self,
        q: &Quant,
        parts: &Parts<'_>,
        env: &mut Env,
    ) -> Result<Option<Truth>> {
        if !self.decorrelate || self.strategy != EvalStrategy::Planned {
            return Ok(None);
        }
        // Negative cache: a scope that already bailed (ineligible shape or
        // non-equi correlation) is re-entered once per outer row — skip
        // the shape check, resolution, and plan lookup after the first
        // bail. Keyed by scope identity only: the rare scope evaluated
        // under *differently-shaped* environments (an abstract definition
        // body used at two call sites) may then skip a decorrelation
        // opportunity at the second site, which costs performance, never
        // correctness — decorrelation is an optimization either way.
        let scope_key = q.bindings.as_ptr() as usize;
        if self.semi_bailed.borrow().contains(&scope_key) {
            return Ok(None);
        }
        let bail = || {
            self.semi_bailed.borrow_mut().insert(scope_key);
            Ok(None)
        };
        // Shape check (shared with `EXPLAIN`'s lowering): no grouping, no
        // outer-join annotation, no aggregates, and no boolean subformula
        // correlated with the outer environment.
        if !arc_plan::decorrelatable_shape(q, parts, &EnvOuter(env)) {
            return bail();
        }
        let resolved = self.resolve_bindings(&q.bindings)?;
        let plan = self.scope_plan(&q.bindings, &parts.filters, env, &resolved, true)?;
        let Some(dec) = &plan.decorrelation else {
            return bail();
        };
        // The outer-only prelude, per outer row — exactly the filters the
        // nested path would have checked before its first step. One
        // failing verdict empties the scope: `∃` is false.
        for &i in &dec.probe_filters {
            if !self.pred_truth(parts.filters[i], env)?.is_true() {
                return Ok(Some(Truth::False));
            }
        }
        let Some(set) = self.semi_build(q, parts, &resolved, &plan, env)? else {
            return Ok(None); // failed build: nested path reproduces it
        };
        // Probe: evaluate the outer side of every correlated equality. A
        // NULL/NaN component can satisfy no equality, so the scope is
        // empty for this row (NOT IN semantics fall out of this when the
        // caller negates).
        let mut key = Vec::with_capacity(dec.keys.len());
        let mut probeable = true;
        for k in &dec.keys {
            let (_, outer_expr) = eq_sides(parts.filters[k.filter], k.local_on_left);
            match join_key(&self.scalar(outer_expr, env)?) {
                Some(component) => key.push(component),
                None => {
                    probeable = false;
                    break;
                }
            }
        }
        let hit = probeable && set.contains(&key);
        metrics::semi_probes().inc();
        if hit {
            metrics::semi_hits().inc();
        }
        if let Some(sink) = &self.profile {
            // Probe-side actuals on the semi-join pseudo-step: one call
            // per probed outer row, one output row per hit.
            sink.merge_op(
                OpId::semi(scope_key),
                OpStats {
                    calls: 1,
                    rows_out: hit as u64,
                    ..OpStats::default()
                },
            );
        }
        Ok(Some(Truth::from_bool(hit)))
    }

    /// The build, through the shared cache: first caller (coordinator or
    /// any pool worker) builds, everyone else probes the same `Arc`. Two
    /// racing workers may both build; the first insert wins and the
    /// duplicate — identical by construction — is dropped.
    fn semi_build(
        &self,
        q: &Quant,
        parts: &Parts<'_>,
        resolved: &[super::quantifier::Resolved<'_>],
        plan: &Arc<ScopePlan>,
        env: &mut Env,
    ) -> Result<Option<Arc<KeySet>>> {
        let cache_key = Arc::as_ptr(plan) as usize;
        if let Some(entry) = self.semi_builds.lock().get(&cache_key) {
            return Ok(entry.set.clone());
        }
        // Admission: the key set, estimated from the largest source
        // relation. Denied → record a *failed* build, so the nested
        // per-outer-row path answers this scope for the rest of the
        // evaluation instead of re-attempting the build per outer row.
        let est_rows = resolved
            .iter()
            .map(|r| match r {
                super::quantifier::Resolved::Rel(rel) => rel.len(),
                _ => 0,
            })
            .max()
            .unwrap_or(0);
        let key_width = plan.decorrelation.as_ref().map_or(0, |d| d.keys.len());
        if !self.guard_admit(
            arc_guard::seam::SEMI_BUILD,
            est_rows * (48 + 24 * key_width),
        ) {
            self.semi_builds
                .lock()
                .entry(cache_key)
                .or_insert(SemiEntry {
                    _plan: plan.clone(),
                    set: None,
                });
            return Ok(None);
        }
        metrics::semi_builds().inc();
        let base = env.len();
        let start = self.trace.then(std::time::Instant::now);
        let span = self.spans.as_ref().and_then(|s| s.start(self.lane));
        let set = match self.run_build(q, parts, resolved, plan, env) {
            Ok(set) => Some(Arc::new(set)),
            Err(_) => {
                // Abandoned enumeration may leave local frames pushed;
                // restore the environment before the nested path reuses it.
                env.truncate(base);
                None
            }
        };
        let build_nanos = start.map_or(0, |s| s.elapsed().as_nanos() as u64);
        if build_nanos > 0 {
            metrics::semi_build_time().record_nanos(build_nanos);
        }
        if let (Some(sink), Some(t0)) = (&self.spans, span) {
            sink.complete(
                self.lane,
                arc_trace::SpanKind::SemiBuild,
                OpId::semi(q.bindings.as_ptr() as usize),
                t0,
            );
        }
        if let Some(sink) = &self.profile {
            // Build-side actuals on the semi-join pseudo-step: the key
            // set's cardinality (what `est=` on the semi-join line
            // estimated) and the build's wall time.
            sink.merge_op(
                OpId::semi(q.bindings.as_ptr() as usize),
                OpStats {
                    rows_in: set.as_ref().map_or(0, |s| s.len() as u64),
                    nanos: build_nanos,
                    ..OpStats::default()
                },
            );
        }
        let mut map = self.semi_builds.lock();
        Ok(map
            .entry(cache_key)
            .or_insert(SemiEntry {
                _plan: plan.clone(),
                set,
            })
            .set
            .clone())
    }

    /// Evaluate the build pipeline once, collecting the correlated-key
    /// set. The environment's outer frames are present but provably
    /// unread: every build-side expression resolves against scope locals
    /// (the decorrelation pass planned the build under `NoOuter`).
    fn run_build(
        &self,
        q: &Quant,
        parts: &Parts<'_>,
        resolved: &[super::quantifier::Resolved<'_>],
        plan: &Arc<ScopePlan>,
        env: &mut Env,
    ) -> Result<KeySet> {
        let dec = plan.decorrelation.as_ref().expect("decorrelated plan");
        let (order, prelude, leaf) =
            self.materialize_steps(&q.bindings, &parts.filters, resolved, plan)?;
        let mut set = KeySet::new();
        // The build prelude holds constant-only filters (every
        // outer-touching filter went to the probe side): one failing
        // verdict empties the build.
        for p in &prelude {
            if !self.pred_truth(p, env)?.is_true() {
                return Ok(set);
            }
        }
        let local_exprs: Vec<&Scalar> = dec
            .keys
            .iter()
            .map(|k| eq_sides(parts.filters[k.filter], k.local_on_left).0)
            .collect();
        // Columnar fast path: when the pipeline is a single un-probed
        // relation scan whose filters all vectorized, the key set builds
        // straight from the column chunks — no per-row environment push,
        // no per-row scalar dispatch, one buffer allocation per chunk.
        if let Some(set) = self.columnar_build(&order, &leaf, parts, &local_exprs) {
            return Ok(set);
        }
        // Row key assembled in a reused scratch buffer; the set allocates
        // only on a key's first occurrence (`Vec<Key>: Borrow<[Key]>`).
        // The build pipeline tallies under the scope's own operator ids
        // (`EXPLAIN ANALYZE` renders them on the `build (once)` subtree);
        // the columnar fast path above bypasses the row pipeline and
        // leaves those est-only.
        let tally = self
            .profile
            .as_ref()
            .map(|_| ScopeTally::new(q.bindings.as_ptr() as usize, order.len()));
        let mut scratch: Vec<Key> = Vec::with_capacity(local_exprs.len());
        let scope = q.bindings.as_ptr() as usize;
        self.run_steps(
            &order,
            &leaf,
            env,
            scope,
            tally.as_ref(),
            &mut |ctx, env| {
                // Outer-free boolean subformulas run per build environment,
                // exactly where the nested path evaluates them.
                for b in &parts.pre_bool {
                    if !ctx.formula_truth(b, env)?.is_true() {
                        return Ok(true);
                    }
                }
                scratch.clear();
                for e in &local_exprs {
                    match join_key(&ctx.scalar(e, env)?) {
                        Some(k) => scratch.push(k),
                        None => return Ok(true), // NULL/NaN: matches no probe
                    }
                }
                if !set.contains(scratch.as_slice()) {
                    set.insert(scratch.clone());
                }
                // A keyless build is a pure non-emptiness check: the first
                // surviving environment decides, so stop early — matching the
                // nested path's existential short-circuit.
                Ok(!local_exprs.is_empty())
            },
        )?;
        if let (Some(t), Some(sink)) = (&tally, &self.profile) {
            t.flush(sink, true);
        }
        Ok(set)
    }

    /// The columnar build, when the pipeline shape permits: a single
    /// un-probed relation scan, every pushed-down filter vectorized (no
    /// residual step filters), no leaf filters, no outer-free boolean
    /// subformulas, and every correlated-key expression a plain attribute
    /// of the scanned variable. Anything else returns `None` and the
    /// row-at-a-time build runs — which also keeps error behaviour
    /// untouched, because the shapes accepted here evaluate nothing that
    /// can error (attributes are resolved against the schema up front).
    fn columnar_build(
        &self,
        order: &[super::quantifier::Ordered<'_>],
        leaf: &[&arc_core::ast::Predicate],
        parts: &Parts<'_>,
        local_exprs: &[&Scalar],
    ) -> Option<KeySet> {
        if !self.vectorize {
            return None;
        }
        let [ob] = order else {
            return None;
        };
        if ob.hash_plan.is_some()
            || !ob.step_filters_empty()
            || !leaf.is_empty()
            || !parts.pre_bool.is_empty()
        {
            return None;
        }
        let super::quantifier::Src::Rows(rel) = &ob.source else {
            return None;
        };
        if rel.len() < super::vector::VECTOR_MIN_ROWS {
            return None;
        }
        let mut key_cols = Vec::with_capacity(local_exprs.len());
        for e in local_exprs {
            let Scalar::Attr(a) = e else {
                return None;
            };
            if a.var != ob.var() {
                return None;
            }
            key_cols.push(rel.schema.iter().position(|s| s == &a.attr)?);
        }
        let sel = match ob.uses_selection() {
            // A budget-denied selection bails the columnar fast path —
            // the row pipeline repeats the degradation decision per row.
            true => Some(self.scan_selection(rel, ob)?),
            false => None,
        };
        if key_cols.is_empty() {
            // Keyless build: a pure non-emptiness check over the
            // selection — the row path would stop at the first survivor.
            let mut set = KeySet::new();
            let any = sel.as_ref().map_or(!rel.rows.is_empty(), |s| !s.is_empty());
            if any {
                set.insert(Vec::new());
            }
            return Some(set);
        }
        // Admission for the column chunks the key extraction reads;
        // denied → the row-at-a-time build runs instead.
        if !self.guard_admit(
            arc_guard::seam::CHUNK_BUILD,
            rel.len() * rel.schema.len().max(1) * 24,
        ) {
            return None;
        }
        Some(super::vector::build_key_set(
            &rel.columns(),
            &key_cols,
            sel.as_deref().map(Vec::as_slice),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisoned_semi_build_cache_recovers_empty() {
        let cache = SemiBuildCache::default();
        let clone = cache.clone();
        std::thread::spawn(move || {
            let _guard = clone.0.lock().unwrap();
            panic!("worker panicked mid-insert");
        })
        .join()
        .unwrap_err();
        assert!(cache.0.is_poisoned());
        // Recovery empties the map (builds re-run — an optimization
        // loss, never a correctness one) and clears the poison bit.
        assert!(cache.lock().is_empty());
        assert!(!cache.0.is_poisoned(), "recovery clears the poison");
    }
}
