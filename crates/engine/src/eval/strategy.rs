//! The evaluation-strategy seam: per-operator planning by default, with
//! global force-overrides for the equivalence suite — plus the
//! `ARC_THREADS` parallelism knob for the partitioned executor.

use crate::error::EvalError;
use arc_guard::FaultPlan;
use arc_plan::PlanMode;
use std::time::Duration;

/// One registered on/off engine knob: its environment variable, its
/// default, extra affirmative tokens (`ARC_PLAN` also accepts
/// `planned`), and whether unknown values are tolerated as the default
/// (`ARC_STATS` is an *off*-switch: anything that isn't explicitly off
/// keeps statistics on) instead of surfacing a config error.
pub struct OnOffKnob {
    /// Environment variable name.
    pub var: &'static str,
    /// Value when the variable is unset or empty.
    pub default: bool,
    /// Extra tokens that read as `on` for this knob.
    pub extra_on: &'static [&'static str],
    /// `true`: unknown tokens fall back to the default instead of
    /// erroring.
    pub lenient: bool,
}

/// The single registry behind every on/off `ARC_*` knob — one grammar,
/// one normalization (`lowercase`, `_` → `-`), one error shape — instead
/// of the per-knob copies this module used to carry.
pub const ONOFF_KNOBS: &[OnOffKnob] = &[
    OnOffKnob {
        var: "ARC_PLAN",
        default: true,
        extra_on: &["planned"],
        lenient: false,
    },
    OnOffKnob {
        var: "ARC_STATS",
        default: true,
        extra_on: &[],
        lenient: true,
    },
    OnOffKnob {
        var: "ARC_DECORRELATE",
        default: true,
        extra_on: &[],
        lenient: false,
    },
    OnOffKnob {
        var: "ARC_VECTOR",
        default: true,
        extra_on: &[],
        lenient: false,
    },
    OnOffKnob {
        var: "ARC_INDEX",
        default: true,
        extra_on: &[],
        lenient: false,
    },
    OnOffKnob {
        var: "ARC_TRACE",
        default: false,
        extra_on: &[],
        lenient: false,
    },
    OnOffKnob {
        var: "ARC_SPANS",
        default: false,
        extra_on: &[],
        lenient: false,
    },
];

/// Interpret `value` for the registered knob `var`. Unset and empty mean
/// the knob's default; `on`/`1`/`true`/`auto` (plus any `extra_on`
/// token) affirm; `off`/`0`/`false`/`no` negate; anything else is a
/// descriptive error naming the variable (or the default, for lenient
/// knobs).
pub fn parse_onoff(var: &str, value: Option<&str>) -> Result<bool, String> {
    let knob = ONOFF_KNOBS
        .iter()
        .find(|k| k.var == var)
        .unwrap_or_else(|| panic!("`{var}` is not a registered on/off knob"));
    let Some(v) = value.map(|v| v.to_lowercase().replace('_', "-")) else {
        return Ok(knob.default);
    };
    match v.as_str() {
        "" => Ok(knob.default),
        "on" | "1" | "true" | "auto" => Ok(true),
        "off" | "0" | "false" | "no" => Ok(false),
        other if knob.extra_on.contains(&other) => Ok(true),
        _ if knob.lenient => Ok(knob.default),
        other => Err(format!("unknown {var} `{other}` (expected `on` or `off`)")),
    }
}

/// [`parse_onoff`] over the live environment, with the error deferred
/// into [`EvalError::Config`] like every other engine knob.
fn onoff_from_env(var: &str) -> Result<bool, EvalError> {
    parse_onoff(var, std::env::var(var).ok().as_deref()).map_err(EvalError::Config)
}

/// Parallelism for partitioned scope execution, from `ARC_THREADS`:
/// unset/empty means sequential, `auto` (or `0`) means the machine's
/// available parallelism, an integer pins the thread count. Every value
/// produces bag- and order-identical results (partitioned execution
/// merges morsels in scan order), so the whole test suite doubles as a
/// parallel-equivalence suite under `ARC_THREADS=4 cargo test`. Parsing
/// lives in [`arc_exec::threads`]; a malformed value surfaces as
/// [`EvalError::Config`] on first evaluation, exactly like a malformed
/// `ARC_EVAL_STRATEGY`.
pub fn threads_from_env() -> Result<usize, EvalError> {
    arc_exec::parse_threads(std::env::var("ARC_THREADS").ok().as_deref()).map_err(EvalError::Config)
}

/// Set-level decorrelation of boolean quantifier scopes, from
/// `ARC_DECORRELATE`: unset/`on` (the default) lets the planned engine
/// execute `∃`/`¬∃` scopes with pure equi-join correlation as build-once
/// semi/anti-joins; `off` pins the per-outer-row nested path everywhere
/// (mirroring the `ARC_PLAN`/`ARC_STATS` escape hatches). A malformed
/// value surfaces as [`EvalError::Config`] on the first evaluation.
pub fn decorrelate_from_env() -> Result<bool, EvalError> {
    onoff_from_env("ARC_DECORRELATE")
}

/// Pure core of [`decorrelate_from_env`] (unit-testable without touching
/// the process environment, which is racy under parallel tests).
pub fn parse_decorrelate(value: Option<&str>) -> Result<bool, String> {
    parse_onoff("ARC_DECORRELATE", value)
}

/// Automatic statistics collection, from `ARC_STATS` (see
/// [`arc_stats::stats_enabled`] for the subsystem semantics): the knob
/// is an off-switch, so unknown values keep statistics on and this
/// parse is infallible.
pub fn stats_from_env() -> bool {
    parse_onoff("ARC_STATS", std::env::var("ARC_STATS").ok().as_deref()).unwrap_or(true)
}

/// Execution tracing, from `ARC_TRACE`: unset/`off` (the **default** —
/// unlike the other knobs, tracing is opt-in) keeps evaluation free of
/// clock reads; `on` makes the engine time index/selection/semi-join
/// builds into the `arc-trace` registry histograms and stamps wall time
/// onto execution profiles (`EXPLAIN ANALYZE` gathers row/call actuals
/// either way — only the `time=`/`build=` annotations need the knob).
/// Parsing lives in [`arc_trace::parse_trace`]; a malformed value
/// surfaces as [`EvalError::Config`] on the first evaluation, exactly
/// like the other `ARC_*` variables.
pub fn trace_from_env() -> Result<bool, EvalError> {
    onoff_from_env("ARC_TRACE")
}

/// Hierarchical span recording, from `ARC_SPANS`: unset/`off` (the
/// default — like `ARC_TRACE`, spans are opt-in) keeps every span seam
/// to one `Option` check; `on` records begin/end events for query →
/// plan → scope → semi-join build → step → morsel regions into bounded
/// per-lane ring buffers (see [`arc_trace::span`]). Parsing lives in
/// [`arc_trace::parse_spans`]; a malformed value surfaces as
/// [`EvalError::Config`] on the first evaluation, exactly like the
/// other `ARC_*` variables.
pub fn spans_from_env() -> Result<bool, EvalError> {
    onoff_from_env("ARC_SPANS")
}

/// Query deadline, from `ARC_TIMEOUT_MS` (milliseconds): unset, empty,
/// and `0` mean no deadline. A malformed value surfaces as
/// [`EvalError::Config`] on the first evaluation, exactly like the
/// on/off knobs.
pub fn timeout_from_env() -> Result<Option<Duration>, EvalError> {
    parse_timeout(std::env::var("ARC_TIMEOUT_MS").ok().as_deref()).map_err(EvalError::Config)
}

/// Pure core of [`timeout_from_env`].
pub fn parse_timeout(value: Option<&str>) -> Result<Option<Duration>, String> {
    let Some(v) = value.map(str::trim) else {
        return Ok(None);
    };
    if v.is_empty() {
        return Ok(None);
    }
    let ms: u64 = v.parse().map_err(|_| {
        format!("unparseable ARC_TIMEOUT_MS `{v}` (expected milliseconds, e.g. `5000`)")
    })?;
    Ok((ms > 0).then(|| Duration::from_millis(ms)))
}

/// Per-query memory budget, from `ARC_MEM_BUDGET` (bytes, with optional
/// `k`/`m`/`g` suffix): unset, empty, and `0` mean no budget. Builds
/// that would exceed the budget degrade to streaming paths; only hard
/// exhaustion aborts with `EvalError::MemoryBudget`. Parsing lives in
/// [`arc_guard::parse_mem_budget`]; a malformed value surfaces as
/// [`EvalError::Config`] on the first evaluation.
pub fn mem_budget_from_env() -> Result<Option<usize>, EvalError> {
    parse_mem_budget(std::env::var("ARC_MEM_BUDGET").ok().as_deref()).map_err(EvalError::Config)
}

/// Pure core of [`mem_budget_from_env`].
pub fn parse_mem_budget(value: Option<&str>) -> Result<Option<usize>, String> {
    match value {
        None => Ok(None),
        Some(v) => {
            arc_guard::parse_mem_budget(v).map_err(|e| format!("unparseable ARC_MEM_BUDGET: {e}"))
        }
    }
}

/// Deterministic fault injection, from `ARC_FAULT=seam:N[:kind]` (see
/// [`arc_guard::FaultPlan`]): fire a panic, budget denial, or
/// cancellation at the Nth visit of a named guard seam. Test/CI
/// machinery — unset means no fault; a malformed spec surfaces as
/// [`EvalError::Config`] on the first evaluation.
pub fn fault_from_env() -> Result<Option<FaultPlan>, EvalError> {
    parse_fault(std::env::var("ARC_FAULT").ok().as_deref()).map_err(EvalError::Config)
}

/// Pure core of [`fault_from_env`].
pub fn parse_fault(value: Option<&str>) -> Result<Option<FaultPlan>, String> {
    match value {
        None => Ok(None),
        Some(v) => FaultPlan::parse(v).map_err(|e| format!("unparseable ARC_FAULT: {e}")),
    }
}

/// Vectorized columnar execution, from `ARC_VECTOR`: unset/`on` (the
/// default) lets scans, hash-index builds, and semi-join key extraction
/// run over [column chunks](arc_core::column) with per-chunk kernels;
/// `off` forces the row-at-a-time path everywhere — the escape hatch for
/// bisecting a columnar regression (and the baseline leg of the
/// `ablation_columnar` bench series). Both paths are row-identical by
/// construction (invariant 12). A malformed value surfaces as
/// [`EvalError::Config`] on the first evaluation, exactly like
/// `ARC_PLAN`/`ARC_DECORRELATE`.
pub fn vectorize_from_env() -> Result<bool, EvalError> {
    onoff_from_env("ARC_VECTOR")
}

/// Pure core of [`vectorize_from_env`] (unit-testable without touching
/// the process environment, which is racy under parallel tests).
pub fn parse_vectorize(value: Option<&str>) -> Result<bool, String> {
    parse_onoff("ARC_VECTOR", value)
}

/// Ordered secondary indexes, from `ARC_INDEX`: unset/`on` (the default)
/// lets the planner choose the index-range access path for selective
/// constant range predicates — a lazily built, cached sorted permutation
/// answers the bound prefix by binary search; `off` pins the scan/probe
/// paths everywhere — the escape hatch for bisecting an index regression
/// (and the baseline leg of the `ablation_index` bench series). Both
/// paths are row-identical by construction (invariant 13). A malformed
/// value surfaces as [`EvalError::Config`] on the first evaluation,
/// exactly like `ARC_PLAN`/`ARC_DECORRELATE`/`ARC_VECTOR`.
pub fn indexes_from_env() -> Result<bool, EvalError> {
    onoff_from_env("ARC_INDEX")
}

/// Pure core of [`indexes_from_env`] (unit-testable without touching the
/// process environment, which is racy under parallel tests).
pub fn parse_indexes(value: Option<&str>) -> Result<bool, String> {
    parse_onoff("ARC_INDEX", value)
}

/// How quantifier scopes are planned and enumerated.
///
/// [`EvalStrategy::Planned`] (the default) routes every scope through
/// `arc-plan`: greedy join ordering by estimated cardinality, per-join
/// hash/scan choice, predicate pushdown. Its results are **bag-identical**
/// to the reference (join reordering changes enumeration order, never the
/// multiset of rows).
///
/// The two force modes pin declaration order and leaf-only filters, so
/// they produce the same result rows *in the same order* as each other:
/// the hash-join strategy only skips environments that the equi-join
/// filter predicates would reject anyway, and it re-checks every filter
/// before emitting. The engine test suite is run under both
/// (`ARC_EVAL_STRATEGY=hash-join cargo test`), and
/// `crates/bench/benches/ablation.rs` measures the gap between all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalStrategy {
    /// Per-operator plan choice through `arc-plan` (the default).
    #[default]
    Planned,
    /// Force the paper's conceptual strategy everywhere (§2.3): enumerate
    /// the cross product of all bindings in declaration order and filter
    /// at the leaf. The reference semantics — kept simple enough to *read
    /// as* the paper's definition.
    NestedLoop,
    /// Force a hash probe on every relation binding reachable through
    /// equality predicates from already-bound variables, keeping
    /// declaration order. Equi-join workloads drop from O(n·m) to O(n+m);
    /// everything else transparently falls back to the nested loop.
    HashJoin,
}

impl EvalStrategy {
    /// The workspace-wide default, overridable via two environment
    /// variables:
    ///
    /// * `ARC_EVAL_STRATEGY` = `planned` | `nested-loop` | `hash-join` —
    ///   force one strategy everywhere. This is how the entire existing
    ///   test suite doubles as a strategy-equivalence suite.
    /// * `ARC_PLAN` = `on` | `off` — escape hatch: `off` disables the
    ///   planner (falling back to the nested-loop reference) without
    ///   forcing a strategy explicitly. An explicit `ARC_EVAL_STRATEGY`
    ///   wins over `ARC_PLAN`.
    ///
    /// An unrecognized value is a descriptive [`EvalError::Config`] — a
    /// typo in the variable should fail as a normal engine error when
    /// evaluation starts, not silently benchmark the wrong engine (and
    /// not panic mid-run either).
    pub fn from_env() -> Result<Self, EvalError> {
        Self::parse(
            std::env::var("ARC_EVAL_STRATEGY").ok().as_deref(),
            std::env::var("ARC_PLAN").ok().as_deref(),
        )
        .map_err(EvalError::Config)
    }

    /// Pure core of [`EvalStrategy::from_env`]: interpret the two
    /// environment values (unit-testable without touching process
    /// environment, which is racy under parallel tests).
    pub fn parse(strategy: Option<&str>, plan: Option<&str>) -> Result<Self, String> {
        let planner_on = parse_onoff("ARC_PLAN", plan)?;
        match strategy.map(|v| v.to_lowercase().replace('_', "-")) {
            None => Ok(if planner_on {
                EvalStrategy::Planned
            } else {
                EvalStrategy::NestedLoop
            }),
            Some(v) => match v.as_str() {
                // An explicit strategy wins over ARC_PLAN.
                "" | "planned" | "auto" => Ok(EvalStrategy::Planned),
                "nested-loop" | "nestedloop" => Ok(EvalStrategy::NestedLoop),
                "hash-join" | "hashjoin" => Ok(EvalStrategy::HashJoin),
                other => Err(format!(
                    "unknown ARC_EVAL_STRATEGY `{other}` (expected `planned`, `nested-loop`, or `hash-join`)"
                )),
            },
        }
    }

    /// The planner mode this strategy maps onto.
    pub fn plan_mode(self) -> PlanMode {
        match self {
            EvalStrategy::Planned => PlanMode::Auto,
            EvalStrategy::NestedLoop => PlanMode::ForceNestedLoop,
            EvalStrategy::HashJoin => PlanMode::ForceHashJoin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_planned() {
        assert_eq!(EvalStrategy::parse(None, None), Ok(EvalStrategy::Planned));
        assert_eq!(EvalStrategy::default(), EvalStrategy::Planned);
    }

    #[test]
    fn forces_parse() {
        assert_eq!(
            EvalStrategy::parse(Some("hash-join"), None),
            Ok(EvalStrategy::HashJoin)
        );
        assert_eq!(
            EvalStrategy::parse(Some("HASH_JOIN"), None),
            Ok(EvalStrategy::HashJoin)
        );
        assert_eq!(
            EvalStrategy::parse(Some("nested-loop"), None),
            Ok(EvalStrategy::NestedLoop)
        );
        assert_eq!(
            EvalStrategy::parse(Some("planned"), None),
            Ok(EvalStrategy::Planned)
        );
    }

    #[test]
    fn plan_off_is_the_reference_escape_hatch() {
        assert_eq!(
            EvalStrategy::parse(None, Some("off")),
            Ok(EvalStrategy::NestedLoop)
        );
        // An explicit strategy wins over ARC_PLAN.
        assert_eq!(
            EvalStrategy::parse(Some("hash-join"), Some("off")),
            Ok(EvalStrategy::HashJoin)
        );
    }

    #[test]
    fn typos_are_descriptive_errors_not_panics() {
        let err = EvalStrategy::parse(Some("hash-jion"), None).unwrap_err();
        assert!(err.contains("hash-jion"), "{err}");
        assert!(err.contains("ARC_EVAL_STRATEGY"), "{err}");
        let err = EvalStrategy::parse(None, Some("offf")).unwrap_err();
        assert!(err.contains("offf"), "{err}");
        assert!(err.contains("ARC_PLAN"), "{err}");
    }

    #[test]
    fn vectorize_parses_like_the_other_escape_hatches() {
        assert_eq!(parse_vectorize(None), Ok(true));
        assert_eq!(parse_vectorize(Some("on")), Ok(true));
        assert_eq!(parse_vectorize(Some("1")), Ok(true));
        assert_eq!(parse_vectorize(Some("OFF")), Ok(false));
        assert_eq!(parse_vectorize(Some("0")), Ok(false));
        let err = parse_vectorize(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_VECTOR"), "{err}");
    }

    #[test]
    fn indexes_parse_like_the_other_escape_hatches() {
        assert_eq!(parse_indexes(None), Ok(true));
        assert_eq!(parse_indexes(Some("on")), Ok(true));
        assert_eq!(parse_indexes(Some("1")), Ok(true));
        assert_eq!(parse_indexes(Some("OFF")), Ok(false));
        assert_eq!(parse_indexes(Some("0")), Ok(false));
        let err = parse_indexes(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_INDEX"), "{err}");
    }

    #[test]
    fn trace_defaults_off_unlike_the_other_knobs() {
        assert_eq!(arc_trace::parse_trace(None), Ok(false));
        assert_eq!(arc_trace::parse_trace(Some("on")), Ok(true));
        assert_eq!(arc_trace::parse_trace(Some("OFF")), Ok(false));
        let err = arc_trace::parse_trace(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_TRACE"), "{err}");
    }

    #[test]
    fn decorrelate_parses_like_the_other_escape_hatches() {
        assert_eq!(parse_decorrelate(None), Ok(true));
        assert_eq!(parse_decorrelate(Some("on")), Ok(true));
        assert_eq!(parse_decorrelate(Some("1")), Ok(true));
        assert_eq!(parse_decorrelate(Some("OFF")), Ok(false));
        assert_eq!(parse_decorrelate(Some("0")), Ok(false));
        let err = parse_decorrelate(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_DECORRELATE"), "{err}");
    }

    /// The consolidation contract: every registered knob — the seven
    /// on/off switches and the three guard knobs — accepts its
    /// affirmative and negative forms and reports garbage as a
    /// descriptive error naming the variable (except the deliberately
    /// lenient `ARC_STATS` off-switch, which keeps its subsystem on).
    #[test]
    fn every_knob_parses_on_off_and_garbage() {
        for knob in ONOFF_KNOBS {
            assert_eq!(
                parse_onoff(knob.var, None),
                Ok(knob.default),
                "{}",
                knob.var
            );
            assert_eq!(
                parse_onoff(knob.var, Some("")),
                Ok(knob.default),
                "{}",
                knob.var
            );
            assert_eq!(parse_onoff(knob.var, Some("on")), Ok(true), "{}", knob.var);
            assert_eq!(
                parse_onoff(knob.var, Some("TRUE")),
                Ok(true),
                "{}",
                knob.var
            );
            assert_eq!(
                parse_onoff(knob.var, Some("off")),
                Ok(false),
                "{}",
                knob.var
            );
            assert_eq!(parse_onoff(knob.var, Some("0")), Ok(false), "{}", knob.var);
            for tok in knob.extra_on {
                assert_eq!(parse_onoff(knob.var, Some(tok)), Ok(true), "{}", knob.var);
            }
            let garbage = parse_onoff(knob.var, Some("garbage"));
            if knob.lenient {
                assert_eq!(garbage, Ok(knob.default), "{} is lenient", knob.var);
            } else {
                let err = garbage.unwrap_err();
                assert!(err.contains(knob.var), "{err}");
                assert!(err.contains("garbage"), "{err}");
            }
        }
        // ARC_STATS keeps arc-stats' off-switch semantics exactly.
        assert_eq!(parse_onoff("ARC_STATS", Some("anything")), Ok(true));
        assert!(!arc_stats::stats_enabled(Some("off")));

        // Guard knobs: on (a valid value), off (unset/empty), garbage.
        assert_eq!(parse_timeout(None), Ok(None));
        assert_eq!(parse_timeout(Some("")), Ok(None));
        assert_eq!(parse_timeout(Some("0")), Ok(None));
        assert_eq!(
            parse_timeout(Some("250")),
            Ok(Some(Duration::from_millis(250)))
        );
        let err = parse_timeout(Some("soon")).unwrap_err();
        assert!(err.contains("ARC_TIMEOUT_MS"), "{err}");

        assert_eq!(parse_mem_budget(None), Ok(None));
        assert_eq!(parse_mem_budget(Some("")), Ok(None));
        assert_eq!(parse_mem_budget(Some("64m")), Ok(Some(64 << 20)));
        let err = parse_mem_budget(Some("lots")).unwrap_err();
        assert!(err.contains("ARC_MEM_BUDGET"), "{err}");

        assert_eq!(parse_fault(None), Ok(None));
        assert_eq!(parse_fault(Some("")), Ok(None));
        let plan = parse_fault(Some("hash-build:2:budget")).unwrap().unwrap();
        assert_eq!(plan.seam, arc_guard::seam::HASH_BUILD);
        let err = parse_fault(Some("nowhere:1")).unwrap_err();
        assert!(err.contains("ARC_FAULT"), "{err}");
    }

    /// The trace/spans knobs keep their opt-in default through the
    /// consolidated table, byte-identical to the arc-trace parsers they
    /// used to delegate to.
    #[test]
    fn consolidated_trace_knobs_match_the_arc_trace_parsers() {
        for v in [
            None,
            Some(""),
            Some("on"),
            Some("OFF"),
            Some("1"),
            Some("no"),
        ] {
            assert_eq!(
                parse_onoff("ARC_TRACE", v),
                arc_trace::parse_trace(v),
                "{v:?}"
            );
            assert_eq!(
                parse_onoff("ARC_SPANS", v),
                arc_trace::parse_spans(v),
                "{v:?}"
            );
        }
        assert!(parse_onoff("ARC_TRACE", Some("nope")).is_err());
    }
}
