//! The pluggable evaluation-strategy seam.

/// How the binding loop enumerates quantifier environments.
///
/// Both strategies implement the **same semantics** and, by construction,
/// produce the same result rows *in the same order*: the hash-join
/// strategy only skips environments that the equi-join filter predicates
/// would reject anyway, and it re-checks every filter before emitting.
/// The engine test suite is run under both (`ARC_EVAL_STRATEGY=hash-join
/// cargo test -p arc-engine`), and `crates/bench/benches/ablation.rs`
/// measures the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalStrategy {
    /// The paper's conceptual strategy (§2.3): enumerate the cross product
    /// of all bindings and filter. The reference semantics — kept simple
    /// enough to *read as* the paper's definition.
    #[default]
    NestedLoop,
    /// Build a hash index over each relation binding that is reachable
    /// through equality predicates from already-bound variables, and probe
    /// instead of scanning. Equi-join workloads drop from O(n·m) to
    /// O(n+m); everything else transparently falls back to the nested
    /// loop.
    HashJoin,
}

impl EvalStrategy {
    /// The workspace-wide default, overridable via the `ARC_EVAL_STRATEGY`
    /// environment variable (`nested-loop` | `hash-join`). This is how the
    /// entire existing test suite doubles as a strategy-equivalence suite.
    ///
    /// # Panics
    /// Panics on an unrecognized value — a typo in the variable should
    /// fail loudly, not silently benchmark the wrong engine.
    pub fn from_env() -> Self {
        match std::env::var("ARC_EVAL_STRATEGY") {
            Err(_) => EvalStrategy::NestedLoop,
            Ok(v) => match v.to_lowercase().replace('_', "-").as_str() {
                "" | "nested-loop" | "nestedloop" => EvalStrategy::NestedLoop,
                "hash-join" | "hashjoin" => EvalStrategy::HashJoin,
                other => panic!(
                    "unknown ARC_EVAL_STRATEGY `{other}` (expected `nested-loop` or `hash-join`)"
                ),
            },
        }
    }
}
