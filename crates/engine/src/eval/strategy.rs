//! The evaluation-strategy seam: per-operator planning by default, with
//! global force-overrides for the equivalence suite — plus the
//! `ARC_THREADS` parallelism knob for the partitioned executor.

use crate::error::EvalError;
use arc_plan::PlanMode;

/// Parallelism for partitioned scope execution, from `ARC_THREADS`:
/// unset/empty means sequential, `auto` (or `0`) means the machine's
/// available parallelism, an integer pins the thread count. Every value
/// produces bag- and order-identical results (partitioned execution
/// merges morsels in scan order), so the whole test suite doubles as a
/// parallel-equivalence suite under `ARC_THREADS=4 cargo test`. Parsing
/// lives in [`arc_exec::threads`]; a malformed value surfaces as
/// [`EvalError::Config`] on first evaluation, exactly like a malformed
/// `ARC_EVAL_STRATEGY`.
pub fn threads_from_env() -> Result<usize, EvalError> {
    arc_exec::parse_threads(std::env::var("ARC_THREADS").ok().as_deref()).map_err(EvalError::Config)
}

/// Set-level decorrelation of boolean quantifier scopes, from
/// `ARC_DECORRELATE`: unset/`on` (the default) lets the planned engine
/// execute `∃`/`¬∃` scopes with pure equi-join correlation as build-once
/// semi/anti-joins; `off` pins the per-outer-row nested path everywhere
/// (mirroring the `ARC_PLAN`/`ARC_STATS` escape hatches). A malformed
/// value surfaces as [`EvalError::Config`] on the first evaluation.
pub fn decorrelate_from_env() -> Result<bool, EvalError> {
    parse_decorrelate(std::env::var("ARC_DECORRELATE").ok().as_deref()).map_err(EvalError::Config)
}

/// Pure core of [`decorrelate_from_env`] (unit-testable without touching
/// the process environment, which is racy under parallel tests).
pub fn parse_decorrelate(value: Option<&str>) -> Result<bool, String> {
    match value.map(|v| v.to_lowercase().replace('_', "-")) {
        None => Ok(true),
        Some(v) => match v.as_str() {
            "" | "on" | "1" | "true" | "auto" => Ok(true),
            "off" | "0" | "false" | "no" => Ok(false),
            other => Err(format!(
                "unknown ARC_DECORRELATE `{other}` (expected `on` or `off`)"
            )),
        },
    }
}

/// Execution tracing, from `ARC_TRACE`: unset/`off` (the **default** —
/// unlike the other knobs, tracing is opt-in) keeps evaluation free of
/// clock reads; `on` makes the engine time index/selection/semi-join
/// builds into the `arc-trace` registry histograms and stamps wall time
/// onto execution profiles (`EXPLAIN ANALYZE` gathers row/call actuals
/// either way — only the `time=`/`build=` annotations need the knob).
/// Parsing lives in [`arc_trace::parse_trace`]; a malformed value
/// surfaces as [`EvalError::Config`] on the first evaluation, exactly
/// like the other `ARC_*` variables.
pub fn trace_from_env() -> Result<bool, EvalError> {
    arc_trace::trace_env().map_err(EvalError::Config)
}

/// Hierarchical span recording, from `ARC_SPANS`: unset/`off` (the
/// default — like `ARC_TRACE`, spans are opt-in) keeps every span seam
/// to one `Option` check; `on` records begin/end events for query →
/// plan → scope → semi-join build → step → morsel regions into bounded
/// per-lane ring buffers (see [`arc_trace::span`]). Parsing lives in
/// [`arc_trace::parse_spans`]; a malformed value surfaces as
/// [`EvalError::Config`] on the first evaluation, exactly like the
/// other `ARC_*` variables.
pub fn spans_from_env() -> Result<bool, EvalError> {
    arc_trace::spans_env().map_err(EvalError::Config)
}

/// Vectorized columnar execution, from `ARC_VECTOR`: unset/`on` (the
/// default) lets scans, hash-index builds, and semi-join key extraction
/// run over [column chunks](arc_core::column) with per-chunk kernels;
/// `off` forces the row-at-a-time path everywhere — the escape hatch for
/// bisecting a columnar regression (and the baseline leg of the
/// `ablation_columnar` bench series). Both paths are row-identical by
/// construction (invariant 12). A malformed value surfaces as
/// [`EvalError::Config`] on the first evaluation, exactly like
/// `ARC_PLAN`/`ARC_DECORRELATE`.
pub fn vectorize_from_env() -> Result<bool, EvalError> {
    parse_vectorize(std::env::var("ARC_VECTOR").ok().as_deref()).map_err(EvalError::Config)
}

/// Pure core of [`vectorize_from_env`] (unit-testable without touching
/// the process environment, which is racy under parallel tests).
pub fn parse_vectorize(value: Option<&str>) -> Result<bool, String> {
    match value.map(|v| v.to_lowercase().replace('_', "-")) {
        None => Ok(true),
        Some(v) => match v.as_str() {
            "" | "on" | "1" | "true" | "auto" => Ok(true),
            "off" | "0" | "false" | "no" => Ok(false),
            other => Err(format!(
                "unknown ARC_VECTOR `{other}` (expected `on` or `off`)"
            )),
        },
    }
}

/// Ordered secondary indexes, from `ARC_INDEX`: unset/`on` (the default)
/// lets the planner choose the index-range access path for selective
/// constant range predicates — a lazily built, cached sorted permutation
/// answers the bound prefix by binary search; `off` pins the scan/probe
/// paths everywhere — the escape hatch for bisecting an index regression
/// (and the baseline leg of the `ablation_index` bench series). Both
/// paths are row-identical by construction (invariant 13). A malformed
/// value surfaces as [`EvalError::Config`] on the first evaluation,
/// exactly like `ARC_PLAN`/`ARC_DECORRELATE`/`ARC_VECTOR`.
pub fn indexes_from_env() -> Result<bool, EvalError> {
    parse_indexes(std::env::var("ARC_INDEX").ok().as_deref()).map_err(EvalError::Config)
}

/// Pure core of [`indexes_from_env`] (unit-testable without touching the
/// process environment, which is racy under parallel tests).
pub fn parse_indexes(value: Option<&str>) -> Result<bool, String> {
    match value.map(|v| v.to_lowercase().replace('_', "-")) {
        None => Ok(true),
        Some(v) => match v.as_str() {
            "" | "on" | "1" | "true" | "auto" => Ok(true),
            "off" | "0" | "false" | "no" => Ok(false),
            other => Err(format!(
                "unknown ARC_INDEX `{other}` (expected `on` or `off`)"
            )),
        },
    }
}

/// How quantifier scopes are planned and enumerated.
///
/// [`EvalStrategy::Planned`] (the default) routes every scope through
/// `arc-plan`: greedy join ordering by estimated cardinality, per-join
/// hash/scan choice, predicate pushdown. Its results are **bag-identical**
/// to the reference (join reordering changes enumeration order, never the
/// multiset of rows).
///
/// The two force modes pin declaration order and leaf-only filters, so
/// they produce the same result rows *in the same order* as each other:
/// the hash-join strategy only skips environments that the equi-join
/// filter predicates would reject anyway, and it re-checks every filter
/// before emitting. The engine test suite is run under both
/// (`ARC_EVAL_STRATEGY=hash-join cargo test`), and
/// `crates/bench/benches/ablation.rs` measures the gap between all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EvalStrategy {
    /// Per-operator plan choice through `arc-plan` (the default).
    #[default]
    Planned,
    /// Force the paper's conceptual strategy everywhere (§2.3): enumerate
    /// the cross product of all bindings in declaration order and filter
    /// at the leaf. The reference semantics — kept simple enough to *read
    /// as* the paper's definition.
    NestedLoop,
    /// Force a hash probe on every relation binding reachable through
    /// equality predicates from already-bound variables, keeping
    /// declaration order. Equi-join workloads drop from O(n·m) to O(n+m);
    /// everything else transparently falls back to the nested loop.
    HashJoin,
}

impl EvalStrategy {
    /// The workspace-wide default, overridable via two environment
    /// variables:
    ///
    /// * `ARC_EVAL_STRATEGY` = `planned` | `nested-loop` | `hash-join` —
    ///   force one strategy everywhere. This is how the entire existing
    ///   test suite doubles as a strategy-equivalence suite.
    /// * `ARC_PLAN` = `on` | `off` — escape hatch: `off` disables the
    ///   planner (falling back to the nested-loop reference) without
    ///   forcing a strategy explicitly. An explicit `ARC_EVAL_STRATEGY`
    ///   wins over `ARC_PLAN`.
    ///
    /// An unrecognized value is a descriptive [`EvalError::Config`] — a
    /// typo in the variable should fail as a normal engine error when
    /// evaluation starts, not silently benchmark the wrong engine (and
    /// not panic mid-run either).
    pub fn from_env() -> Result<Self, EvalError> {
        Self::parse(
            std::env::var("ARC_EVAL_STRATEGY").ok().as_deref(),
            std::env::var("ARC_PLAN").ok().as_deref(),
        )
        .map_err(EvalError::Config)
    }

    /// Pure core of [`EvalStrategy::from_env`]: interpret the two
    /// environment values (unit-testable without touching process
    /// environment, which is racy under parallel tests).
    pub fn parse(strategy: Option<&str>, plan: Option<&str>) -> Result<Self, String> {
        let planner_on = match plan.map(|v| v.to_lowercase().replace('_', "-")) {
            None => true,
            Some(v) => match v.as_str() {
                "" | "on" | "1" | "true" | "auto" | "planned" => true,
                "off" | "0" | "false" | "no" => false,
                other => {
                    return Err(format!(
                        "unknown ARC_PLAN `{other}` (expected `on` or `off`)"
                    ))
                }
            },
        };
        match strategy.map(|v| v.to_lowercase().replace('_', "-")) {
            None => Ok(if planner_on {
                EvalStrategy::Planned
            } else {
                EvalStrategy::NestedLoop
            }),
            Some(v) => match v.as_str() {
                // An explicit strategy wins over ARC_PLAN.
                "" | "planned" | "auto" => Ok(EvalStrategy::Planned),
                "nested-loop" | "nestedloop" => Ok(EvalStrategy::NestedLoop),
                "hash-join" | "hashjoin" => Ok(EvalStrategy::HashJoin),
                other => Err(format!(
                    "unknown ARC_EVAL_STRATEGY `{other}` (expected `planned`, `nested-loop`, or `hash-join`)"
                )),
            },
        }
    }

    /// The planner mode this strategy maps onto.
    pub fn plan_mode(self) -> PlanMode {
        match self {
            EvalStrategy::Planned => PlanMode::Auto,
            EvalStrategy::NestedLoop => PlanMode::ForceNestedLoop,
            EvalStrategy::HashJoin => PlanMode::ForceHashJoin,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_planned() {
        assert_eq!(EvalStrategy::parse(None, None), Ok(EvalStrategy::Planned));
        assert_eq!(EvalStrategy::default(), EvalStrategy::Planned);
    }

    #[test]
    fn forces_parse() {
        assert_eq!(
            EvalStrategy::parse(Some("hash-join"), None),
            Ok(EvalStrategy::HashJoin)
        );
        assert_eq!(
            EvalStrategy::parse(Some("HASH_JOIN"), None),
            Ok(EvalStrategy::HashJoin)
        );
        assert_eq!(
            EvalStrategy::parse(Some("nested-loop"), None),
            Ok(EvalStrategy::NestedLoop)
        );
        assert_eq!(
            EvalStrategy::parse(Some("planned"), None),
            Ok(EvalStrategy::Planned)
        );
    }

    #[test]
    fn plan_off_is_the_reference_escape_hatch() {
        assert_eq!(
            EvalStrategy::parse(None, Some("off")),
            Ok(EvalStrategy::NestedLoop)
        );
        // An explicit strategy wins over ARC_PLAN.
        assert_eq!(
            EvalStrategy::parse(Some("hash-join"), Some("off")),
            Ok(EvalStrategy::HashJoin)
        );
    }

    #[test]
    fn typos_are_descriptive_errors_not_panics() {
        let err = EvalStrategy::parse(Some("hash-jion"), None).unwrap_err();
        assert!(err.contains("hash-jion"), "{err}");
        assert!(err.contains("ARC_EVAL_STRATEGY"), "{err}");
        let err = EvalStrategy::parse(None, Some("offf")).unwrap_err();
        assert!(err.contains("offf"), "{err}");
        assert!(err.contains("ARC_PLAN"), "{err}");
    }

    #[test]
    fn vectorize_parses_like_the_other_escape_hatches() {
        assert_eq!(parse_vectorize(None), Ok(true));
        assert_eq!(parse_vectorize(Some("on")), Ok(true));
        assert_eq!(parse_vectorize(Some("1")), Ok(true));
        assert_eq!(parse_vectorize(Some("OFF")), Ok(false));
        assert_eq!(parse_vectorize(Some("0")), Ok(false));
        let err = parse_vectorize(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_VECTOR"), "{err}");
    }

    #[test]
    fn indexes_parse_like_the_other_escape_hatches() {
        assert_eq!(parse_indexes(None), Ok(true));
        assert_eq!(parse_indexes(Some("on")), Ok(true));
        assert_eq!(parse_indexes(Some("1")), Ok(true));
        assert_eq!(parse_indexes(Some("OFF")), Ok(false));
        assert_eq!(parse_indexes(Some("0")), Ok(false));
        let err = parse_indexes(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_INDEX"), "{err}");
    }

    #[test]
    fn trace_defaults_off_unlike_the_other_knobs() {
        assert_eq!(arc_trace::parse_trace(None), Ok(false));
        assert_eq!(arc_trace::parse_trace(Some("on")), Ok(true));
        assert_eq!(arc_trace::parse_trace(Some("OFF")), Ok(false));
        let err = arc_trace::parse_trace(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_TRACE"), "{err}");
    }

    #[test]
    fn decorrelate_parses_like_the_other_escape_hatches() {
        assert_eq!(parse_decorrelate(None), Ok(true));
        assert_eq!(parse_decorrelate(Some("on")), Ok(true));
        assert_eq!(parse_decorrelate(Some("1")), Ok(true));
        assert_eq!(parse_decorrelate(Some("OFF")), Ok(false));
        assert_eq!(parse_decorrelate(Some("0")), Ok(false));
        let err = parse_decorrelate(Some("nope")).unwrap_err();
        assert!(err.contains("nope"), "{err}");
        assert!(err.contains("ARC_DECORRELATE"), "{err}");
    }
}
