//! Vectorized scan execution: which pushed-down filters can run as
//! columnar kernels, selection-vector computation over a relation's
//! [column chunks](arc_core::column), and the columnar hash-index build.
//!
//! ## What vectorizes — and why only a *prefix*
//!
//! A pushed-down step filter is vectorizable when it compares an
//! attribute of the scanned variable against a constant (either side),
//! or null-tests such an attribute — exactly the shapes
//! [`ColumnChunk`](arc_core::column::ColumnChunk) has kernels for. Such
//! filters can never raise an evaluation error (the attribute is
//! verified against the schema at classification time; constants don't
//! error), so hoisting them out of the per-row loop cannot suppress an
//! error the row path would have reported. That guarantee only holds for
//! the *leading run* of vectorizable filters: a non-vectorizable filter
//! may error, and the row path evaluates filters strictly in order, so a
//! vectorizable filter *after* it must stay on the row path — otherwise
//! it could filter away the very row whose earlier filter would have
//! errored. [`classify`] is therefore applied to a prefix only (see
//! `Ctx::materialize_steps`).
//!
//! Selection vectors keep ascending row order, so a vectorized scan
//! emits exactly the environments the row path would, in the same order
//! — invariant 12 (and, through morsel concatenation, invariant 9).

use super::quantifier::HashIndex;
use arc_core::ast::{AttrRef, CmpOp, Predicate, Scalar};
use arc_core::column::{ColumnSet, Mask};
use arc_core::value::{Key, Value};
use std::collections::{HashMap, HashSet};

/// Scans below this row count stay on the row path: the encode/selection
/// bookkeeping would cost more than the per-row dispatch it saves.
/// Deliberately equal to the executor's partition threshold so the two
/// size gates tell one story.
pub(crate) const VECTOR_MIN_ROWS: usize = 16;

/// One vectorizable filter, resolved to a column of the scanned relation.
pub(crate) enum VecFilter {
    /// `var.col op const` (a constant on the left arrives pre-flipped).
    Cmp {
        /// Column index into the scanned relation's schema.
        col: usize,
        /// The comparison, normalized to attribute-on-the-left.
        op: CmpOp,
        /// The constant side.
        value: Value,
    },
    /// `var.col IS [NOT] NULL`.
    IsNull {
        /// Column index into the scanned relation's schema.
        col: usize,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
}

fn col_of(a: &AttrRef, var: &str, schema: &[String]) -> Option<usize> {
    if a.var != var {
        return None;
    }
    schema.iter().position(|s| s == &a.attr)
}

/// Classify one pushed-down filter of a scan over `var` (schema
/// `schema`): `Some` when it can run as a columnar kernel, `None` when it
/// must stay on the row path (outer references, arithmetic, aggregates,
/// or an attribute that does not resolve — the row path owns reporting
/// that error).
pub(crate) fn classify(p: &Predicate, var: &str, schema: &[String]) -> Option<VecFilter> {
    match p {
        Predicate::Cmp {
            left: Scalar::Attr(a),
            op,
            right: Scalar::Const(v),
        } => Some(VecFilter::Cmp {
            col: col_of(a, var, schema)?,
            op: *op,
            value: v.clone(),
        }),
        Predicate::Cmp {
            left: Scalar::Const(v),
            op,
            right: Scalar::Attr(a),
        } => Some(VecFilter::Cmp {
            col: col_of(a, var, schema)?,
            op: op.flipped(),
            value: v.clone(),
        }),
        Predicate::IsNull {
            expr: Scalar::Attr(a),
            negated,
        } => Some(VecFilter::IsNull {
            col: col_of(a, var, schema)?,
            negated: *negated,
        }),
        _ => None,
    }
}

/// Evaluate a conjunction of vectorized filters over all chunks,
/// returning the selected row indices in ascending order.
pub(crate) fn selection(cols: &ColumnSet, filters: &[VecFilter]) -> Vec<u32> {
    let mut out = Vec::new();
    for chunk in cols.chunks() {
        let mut mask = Mask::all_true(chunk.len());
        for f in filters {
            match f {
                VecFilter::Cmp { col, op, value } => chunk.col(*col).and_cmp(*op, value, &mut mask),
                VecFilter::IsNull { col, negated } => {
                    chunk.col(*col).and_is_null(*negated, &mut mask)
                }
            }
            if !mask.any() {
                break;
            }
        }
        mask.indices_into(chunk.base() as u32, &mut out);
    }
    out
}

/// Row-at-a-time check of a vectorized-filter conjunction, with exactly
/// the kernels' semantics (`cmp_truth` / null-test). The index-range
/// path uses this to run the demoted constant filters over the (few)
/// index survivors instead of paying a whole-column kernel pass — same
/// rows selected either way.
pub(crate) fn row_passes(row: &[Value], filters: &[VecFilter]) -> bool {
    filters.iter().all(|f| match f {
        VecFilter::Cmp { col, op, value } => {
            arc_core::value::cmp_truth(&row[*col], *op, value).is_true()
        }
        VecFilter::IsNull { col, negated } => row[*col].is_null() != *negated,
    })
}

/// Columnar hash-index build: per-chunk [`join_keys_into`]
/// (arc_core::column::ColumnChunk::join_keys_into) passes fill reusable
/// per-key-column buffers (one allocation per chunk, amortized to zero
/// across chunks), and the assembled row key allocates only on its first
/// occurrence — the scratch probe via `Vec<Key>: Borrow<[Key]>`. Row ids
/// are appended in ascending order, matching the row path's index
/// exactly (which is what keeps forced hash-join probes order-identical
/// to the nested loop).
pub(crate) fn build_index(cols: &ColumnSet, key_cols: &[usize]) -> HashIndex {
    let mut index: HashIndex = HashMap::with_capacity(cols.rows());
    let mut key_bufs: Vec<Vec<Option<Key>>> = vec![Vec::new(); key_cols.len()];
    let mut scratch: Vec<Key> = Vec::with_capacity(key_cols.len());
    for chunk in cols.chunks() {
        for (buf, &c) in key_bufs.iter_mut().zip(key_cols) {
            chunk.col(c).join_keys_into(buf);
        }
        'row: for i in 0..chunk.len() {
            scratch.clear();
            for buf in &key_bufs {
                match &buf[i] {
                    Some(k) => scratch.push(k.clone()),
                    None => continue 'row, // NULL/NaN keys never match
                }
            }
            let rid = (chunk.base() + i) as u32;
            match index.get_mut(scratch.as_slice()) {
                Some(rows) => rows.push(rid),
                None => {
                    index.insert(scratch.clone(), vec![rid]);
                }
            }
        }
    }
    index
}

/// Columnar semi-join build: assemble the correlated-key set straight
/// from the scan's column chunks. Per-chunk [`join_keys_into`]
/// (arc_core::column::ColumnChunk::join_keys_into) passes fill reusable
/// buffers — one allocation per chunk per key column, amortized to zero
/// across chunks — and the assembled row key allocates only on its first
/// occurrence in the set (scratch probe via `Vec<Key>: Borrow<[Key]>`).
/// `sel` optionally restricts the scan to a selection vector (ascending
/// row ids, as [`selection`] produces); chunks with no selected rows
/// skip key decoding entirely. A `None` key component (NULL/NaN) drops
/// the row, matching `join_key` row semantics exactly.
pub(crate) fn build_key_set(
    cols: &ColumnSet,
    key_cols: &[usize],
    sel: Option<&[u32]>,
) -> HashSet<Vec<Key>> {
    fn visit(
        i: usize,
        key_bufs: &[Vec<Option<Key>>],
        scratch: &mut Vec<Key>,
        set: &mut HashSet<Vec<Key>>,
    ) {
        scratch.clear();
        for buf in key_bufs {
            match &buf[i] {
                Some(k) => scratch.push(k.clone()),
                None => return, // NULL/NaN component: matches no probe
            }
        }
        if !set.contains(scratch.as_slice()) {
            set.insert(scratch.clone());
        }
    }
    let mut set: HashSet<Vec<Key>> = HashSet::new();
    let mut key_bufs: Vec<Vec<Option<Key>>> = vec![Vec::new(); key_cols.len()];
    let mut scratch: Vec<Key> = Vec::with_capacity(key_cols.len());
    let mut sel_from = 0usize;
    for chunk in cols.chunks() {
        let base = chunk.base();
        let end = base + chunk.len();
        if let Some(sel) = sel {
            let lo = sel_from;
            while sel_from < sel.len() && (sel[sel_from] as usize) < end {
                sel_from += 1;
            }
            if lo == sel_from {
                continue; // nothing selected here: skip the key decode
            }
            for (buf, &c) in key_bufs.iter_mut().zip(key_cols) {
                chunk.col(c).join_keys_into(buf);
            }
            for &rid in &sel[lo..sel_from] {
                visit(rid as usize - base, &key_bufs, &mut scratch, &mut set);
            }
        } else {
            for (buf, &c) in key_bufs.iter_mut().zip(key_cols) {
                chunk.col(c).join_keys_into(buf);
            }
            for i in 0..chunk.len() {
                visit(i, &key_bufs, &mut scratch, &mut set);
            }
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;

    fn pred_cmp(left: Scalar, op: CmpOp, right: Scalar) -> Predicate {
        Predicate::Cmp { left, op, right }
    }

    fn attr(var: &str, a: &str) -> Scalar {
        Scalar::Attr(AttrRef::new(var, a))
    }

    #[test]
    fn classify_accepts_const_filters_both_ways() {
        let schema = vec!["A".to_string(), "B".to_string()];
        let p = pred_cmp(attr("r", "B"), CmpOp::Lt, Scalar::Const(Value::Int(5)));
        match classify(&p, "r", &schema) {
            Some(VecFilter::Cmp {
                col: 1,
                op: CmpOp::Lt,
                ..
            }) => {}
            _ => panic!("attr-left const filter must classify"),
        }
        let p = pred_cmp(Scalar::Const(Value::Int(5)), CmpOp::Lt, attr("r", "B"));
        match classify(&p, "r", &schema) {
            // 5 < r.B ⇔ r.B > 5
            Some(VecFilter::Cmp {
                col: 1,
                op: CmpOp::Gt,
                ..
            }) => {}
            _ => panic!("const-left filter must classify flipped"),
        }
    }

    #[test]
    fn classify_rejects_other_vars_unknown_attrs_and_non_consts() {
        let schema = vec!["A".to_string()];
        let other_var = pred_cmp(attr("s", "A"), CmpOp::Eq, Scalar::Const(Value::Int(1)));
        assert!(classify(&other_var, "r", &schema).is_none());
        let unknown = pred_cmp(attr("r", "Z"), CmpOp::Eq, Scalar::Const(Value::Int(1)));
        assert!(
            classify(&unknown, "r", &schema).is_none(),
            "unresolvable attrs stay on the row path, which owns the error"
        );
        let join = pred_cmp(attr("r", "A"), CmpOp::Eq, attr("s", "A"));
        assert!(classify(&join, "r", &schema).is_none());
    }

    #[test]
    fn selection_matches_row_filtering() {
        let rel = Relation::from_rows(
            "R",
            &["A", "B"],
            (0..3000i64)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        if i % 7 == 0 {
                            Value::Null
                        } else {
                            Value::Int(i % 10)
                        },
                    ]
                })
                .collect(),
        );
        let filters = vec![
            VecFilter::Cmp {
                col: 1,
                op: CmpOp::Ge,
                value: Value::Int(8),
            },
            VecFilter::IsNull {
                col: 1,
                negated: true,
            },
        ];
        let sel = selection(&rel.columns(), &filters);
        let want: Vec<u32> = rel
            .rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                arc_core::value::cmp_truth(&row[1], CmpOp::Ge, &Value::Int(8)).is_true()
                    && !row[1].is_null()
            })
            .map(|(i, _)| i as u32)
            .collect();
        assert_eq!(sel, want);
        assert!(sel.windows(2).all(|w| w[0] < w[1]), "ascending order");
    }

    #[test]
    fn columnar_key_set_matches_row_built_set() {
        let rel = Relation::from_rows(
            "R",
            &["A", "B"],
            (0..2600i64)
                .map(|i| {
                    vec![
                        match i % 6 {
                            0 => Value::Null,
                            1 => Value::Float(f64::NAN),
                            2 => Value::Float((i % 40) as f64), // integral: keys as Int
                            _ => Value::Int(i % 40),
                        },
                        Value::Int(i % 9),
                    ]
                })
                .collect(),
        );
        let key_cols = [0usize, 1];
        let row_set = |rows: &[usize]| -> HashSet<Vec<Key>> {
            rows.iter()
                .filter_map(|&i| Relation::key_for(&rel.rows[i], &key_cols))
                .collect()
        };
        // Unselective (full scan) build.
        let all: Vec<usize> = (0..rel.rows.len()).collect();
        assert_eq!(
            build_key_set(&rel.columns(), &key_cols, None),
            row_set(&all)
        );
        // Selection-restricted build, with whole chunks filtered out.
        let filters = [VecFilter::Cmp {
            col: 1,
            op: CmpOp::Eq,
            value: Value::Int(4),
        }];
        let sel = selection(&rel.columns(), &filters);
        let picked: Vec<usize> = sel.iter().map(|&r| r as usize).collect();
        assert_eq!(
            build_key_set(&rel.columns(), &key_cols, Some(&sel)),
            row_set(&picked)
        );
        // Empty selection builds an empty set without touching key data.
        assert!(build_key_set(&rel.columns(), &key_cols, Some(&[])).is_empty());
    }

    #[test]
    fn columnar_index_matches_row_index() {
        let rel = Relation::from_rows(
            "R",
            &["A", "B"],
            (0..2500i64)
                .map(|i| {
                    vec![
                        match i % 5 {
                            0 => Value::Null,
                            1 => Value::Float(f64::NAN),
                            2 => Value::Float(i as f64), // integral: joins with Int
                            _ => Value::Int(i),
                        },
                        Value::Int(i % 3),
                    ]
                })
                .collect(),
        );
        let cols = [0usize, 1];
        let got = build_index(&rel.columns(), &cols);
        let mut want: HashIndex = HashMap::new();
        for (i, row) in rel.rows.iter().enumerate() {
            if let Some(key) = Relation::key_for(row, &cols) {
                want.entry(key).or_default().push(i as u32);
            }
        }
        assert_eq!(got, want);
    }
}
