//! `EXPLAIN`: render the plan a query would execute under this engine.
//!
//! The engine resolves names against its catalog (and, for programs, the
//! program's own definitions — classified into intensional vs. abstract by
//! the binder, exactly as evaluation does) and hands `arc-plan` the same
//! statistics the evaluator would use, minus live row counts for
//! not-yet-materialized definitions. The output is the textual rendering
//! of the [`arc_plan::PlanNode`] tree; a diagram backend can walk the same
//! tree instead.

use crate::catalog::Catalog;
use crate::error::{EvalError, Result};
use crate::eval::Engine;
use arc_core::ast::{Collection, Program};
use arc_core::binder::Binder;
use arc_plan::{LowerError, ResolvedSource, SourceKind, SourceResolver};
use std::collections::HashMap;

/// Resolver over the engine's catalog plus a program's definitions,
/// mirroring the evaluator's shadowing order exactly (see
/// `Ctx::plan_bindings`): materialized definitions shadow catalog
/// relations, which shadow abstract definitions, which shadow externals.
struct CatalogResolver<'c> {
    catalog: &'c Catalog,
    defined: HashMap<String, Vec<String>>,
    abstracts: HashMap<String, Vec<String>>,
}

impl SourceResolver for CatalogResolver<'_> {
    fn resolve(&self, name: &str) -> Option<ResolvedSource> {
        if let Some(attrs) = self.defined.get(name) {
            return Some(ResolvedSource {
                kind: SourceKind::Defined,
                schema: attrs.clone(),
                rows: None,
                patterns: Vec::new(),
                stats: None,
            });
        }
        if let Some(rel) = self.catalog.relation(name) {
            return Some(ResolvedSource {
                kind: SourceKind::Base,
                schema: rel.schema.clone(),
                rows: Some(rel.rows.len()),
                patterns: Vec::new(),
                // ANALYZE sketches, when present: EXPLAIN's `est=N` then
                // matches what the evaluator's planner would estimate.
                stats: self.catalog.stats(name).cloned(),
            });
        }
        if let Some(attrs) = self.abstracts.get(name) {
            return Some(ResolvedSource {
                kind: SourceKind::Abstract,
                schema: attrs.clone(),
                rows: None,
                patterns: Vec::new(),
                stats: None,
            });
        }
        if let Some(ext) = self.catalog.external(name) {
            return Some(ResolvedSource {
                kind: SourceKind::External,
                schema: ext.schema.clone(),
                rows: None,
                patterns: ext.patterns.iter().map(|p| p.bound.clone()).collect(),
                stats: None,
            });
        }
        None
    }
}

fn lower_err(e: LowerError) -> EvalError {
    match e {
        LowerError::UnknownRelation(n) => EvalError::UnknownRelation(n),
        LowerError::Unplaceable { var } => EvalError::Unplannable { var },
    }
}

impl Engine<'_> {
    /// Render the physical plan of a standalone collection as text. An
    /// engine running parallel (`ARC_THREADS > 1` /
    /// [`Engine::with_threads`]) renders the `partition(n)` operator on
    /// each scope's partition-axis step.
    pub fn explain_collection(&self, c: &Collection) -> Result<String> {
        let mode = self.strategy()?.plan_mode();
        let threads = self.threads()?;
        let decorrelate = self.decorrelate()?;
        let indexes = self.indexes()?;
        let resolver = CatalogResolver {
            catalog: self.catalog,
            defined: HashMap::new(),
            abstracts: HashMap::new(),
        };
        let plan = arc_plan::lower_collection_opts(c, &resolver, mode, decorrelate, indexes)
            .map_err(lower_err)?;
        Ok(arc_plan::render_with_threads(&plan, threads))
    }

    /// Render the physical plan of a whole program as text: definitions in
    /// declaration order (mutually recursive groups fused into `fixpoint`
    /// nodes), then the query.
    pub fn explain_program(&self, p: &Program) -> Result<String> {
        let mode = self.strategy()?.plan_mode();
        let threads = self.threads()?;
        let decorrelate = self.decorrelate()?;
        let indexes = self.indexes()?;
        // Classify abstract definitions via the binder, mirroring
        // `materialize_definitions`.
        let bound = Binder::new().bind_program(p);
        let is_abstract =
            |name: &str| -> bool { bound.abstract_collections.iter().any(|n| n == name) };
        let abstracts: HashMap<String, Vec<String>> = p
            .definitions
            .iter()
            .filter(|d| is_abstract(d.name()))
            .map(|d| (d.name().to_string(), d.collection.head.attrs.clone()))
            .collect();
        // Non-abstract definitions materialize, so they shadow same-named
        // catalog relations during evaluation — the resolver must agree.
        let defined: HashMap<String, Vec<String>> = p
            .definitions
            .iter()
            .filter(|d| !is_abstract(d.name()))
            .map(|d| (d.name().to_string(), d.collection.head.attrs.clone()))
            .collect();
        let resolver = CatalogResolver {
            catalog: self.catalog,
            defined,
            abstracts,
        };
        let plan = arc_plan::lower_program_opts(p, &resolver, mode, decorrelate, indexes)
            .map_err(lower_err)?;
        Ok(arc_plan::render_with_threads(&plan, threads))
    }
}
