//! `EXPLAIN` and `EXPLAIN ANALYZE`: render the plan a query would
//! execute under this engine, optionally annotated with measured actuals.
//!
//! The engine resolves names against its catalog (and, for programs, the
//! program's own definitions — classified into intensional vs. abstract by
//! the binder, exactly as evaluation does) and hands `arc-plan` the same
//! statistics the evaluator would use, minus live row counts for
//! not-yet-materialized definitions. The output is the textual rendering
//! of the [`arc_plan::PlanNode`] tree; a diagram backend can walk the same
//! tree instead.
//!
//! The `*_analyze` variants actually **run** the query first (via
//! [`Engine::profile_collection`]/[`Engine::profile_program`]), then join
//! the recorded [`arc_trace::QueryProfile`] back onto the plan tree by
//! operator id: each quantifier scope's id is the address of its binding
//! list in the AST, stamped at lowering time and recorded again at
//! evaluation time — both walk the *same* AST the caller holds, so the
//! join needs no name matching. Annotated operators render
//! `act=N (est=N, q=X.X)` per step — `q` is the
//! [q-error](arc_plan::q_error) of the planner's estimate — plus wall
//! time when the trace knob ([`Engine::with_trace`] / `ARC_TRACE`)
//! enables clock reads.

use crate::catalog::Catalog;
use crate::error::{EvalError, Result};
use crate::eval::Engine;
use crate::fixpoint::ProgramOutput;
use crate::relation::Relation;
use arc_core::ast::{Collection, Program};
use arc_core::binder::Binder;
use arc_plan::{LowerError, PlanNode, ResolvedSource, SourceKind, SourceResolver};
use arc_trace::{ProfileSink, QueryProfile};
use std::collections::HashMap;

/// Resolver over the engine's catalog plus a program's definitions,
/// mirroring the evaluator's shadowing order exactly (see
/// `Ctx::plan_bindings`): materialized definitions shadow catalog
/// relations, which shadow abstract definitions, which shadow externals.
struct CatalogResolver<'c> {
    catalog: &'c Catalog,
    defined: HashMap<String, Vec<String>>,
    abstracts: HashMap<String, Vec<String>>,
}

impl SourceResolver for CatalogResolver<'_> {
    fn resolve(&self, name: &str) -> Option<ResolvedSource> {
        if let Some(attrs) = self.defined.get(name) {
            return Some(ResolvedSource {
                kind: SourceKind::Defined,
                schema: attrs.clone(),
                rows: None,
                patterns: Vec::new(),
                stats: None,
            });
        }
        if let Some(rel) = self.catalog.relation(name) {
            return Some(ResolvedSource {
                kind: SourceKind::Base,
                schema: rel.schema.clone(),
                rows: Some(rel.rows.len()),
                patterns: Vec::new(),
                // ANALYZE sketches, when present: EXPLAIN's `est=N` then
                // matches what the evaluator's planner would estimate.
                stats: self.catalog.stats(name).cloned(),
            });
        }
        if let Some(attrs) = self.abstracts.get(name) {
            return Some(ResolvedSource {
                kind: SourceKind::Abstract,
                schema: attrs.clone(),
                rows: None,
                patterns: Vec::new(),
                stats: None,
            });
        }
        if let Some(ext) = self.catalog.external(name) {
            return Some(ResolvedSource {
                kind: SourceKind::External,
                schema: ext.schema.clone(),
                rows: None,
                patterns: ext.patterns.iter().map(|p| p.bound.clone()).collect(),
                stats: None,
            });
        }
        None
    }
}

/// Serialize a recorded span trace against its lowered plan: the
/// process track is named by the plan's first rendered line, and span
/// names resolve through [`arc_plan::span_names`] (plan spans prefixed
/// `plan `, everything unnamed falls back to the kind default).
fn chrome_trace_with_plan(
    trace: &arc_trace::SpanTrace,
    plan_text: &str,
    plan: &PlanNode,
) -> arc_core::json::Json {
    let names = arc_plan::span_names(plan);
    let label = plan_text.lines().next().unwrap_or("query").to_string();
    arc_trace::chrome_trace(trace, &label, &move |kind, op| match kind {
        arc_trace::SpanKind::Plan => names.get(&op).map(|n| format!("plan {n}")),
        arc_trace::SpanKind::Morsel => names.get(&op).map(|n| format!("morsel {n}")),
        _ => names.get(&op).cloned(),
    })
}

fn lower_err(e: LowerError) -> EvalError {
    match e {
        LowerError::UnknownRelation(n) => EvalError::UnknownRelation(n),
        LowerError::Unplaceable { var } => EvalError::Unplannable { var },
    }
}

impl Engine<'_> {
    /// Render the physical plan of a standalone collection as text. An
    /// engine running parallel (`ARC_THREADS > 1` /
    /// [`Engine::with_threads`]) renders the `partition(n)` operator on
    /// each scope's partition-axis step.
    /// An engine running under a memory budget (`ARC_MEM_BUDGET` /
    /// [`Engine::with_mem_budget`]) appends a `governance:` note: the
    /// build-side operators above it may degrade to streaming fallbacks
    /// at run time.
    pub fn explain_collection(&self, c: &Collection) -> Result<String> {
        let (plan, threads) = self.lowered_collection(c)?;
        Ok(arc_plan::render_governed(
            &plan,
            threads,
            self.mem_budget()?,
        ))
    }

    /// Lower a standalone collection exactly as [`Self::explain_collection`]
    /// would, returning the plan tree plus the resolved thread count.
    fn lowered_collection(&self, c: &Collection) -> Result<(PlanNode, usize)> {
        let mode = self.strategy()?.plan_mode();
        let threads = self.threads()?;
        let decorrelate = self.decorrelate()?;
        let indexes = self.indexes()?;
        let resolver = CatalogResolver {
            catalog: self.catalog,
            defined: HashMap::new(),
            abstracts: HashMap::new(),
        };
        let plan = arc_plan::lower_collection_opts(c, &resolver, mode, decorrelate, indexes)
            .map_err(lower_err)?;
        Ok((plan, threads))
    }

    /// Render the physical plan of a whole program as text: definitions in
    /// declaration order (mutually recursive groups fused into `fixpoint`
    /// nodes), then the query.
    /// Like [`Engine::explain_collection`], a memory budget appends the
    /// `governance:` degradation note.
    pub fn explain_program(&self, p: &Program) -> Result<String> {
        let (plan, threads) = self.lowered_program(p)?;
        Ok(arc_plan::render_governed(
            &plan,
            threads,
            self.mem_budget()?,
        ))
    }

    /// Lower a whole program exactly as [`Self::explain_program`] would,
    /// returning the plan tree plus the resolved thread count.
    fn lowered_program(&self, p: &Program) -> Result<(PlanNode, usize)> {
        let mode = self.strategy()?.plan_mode();
        let threads = self.threads()?;
        let decorrelate = self.decorrelate()?;
        let indexes = self.indexes()?;
        // Classify abstract definitions via the binder, mirroring
        // `materialize_definitions`.
        let bound = Binder::new().bind_program(p);
        let is_abstract =
            |name: &str| -> bool { bound.abstract_collections.iter().any(|n| n == name) };
        let abstracts: HashMap<String, Vec<String>> = p
            .definitions
            .iter()
            .filter(|d| is_abstract(d.name()))
            .map(|d| (d.name().to_string(), d.collection.head.attrs.clone()))
            .collect();
        // Non-abstract definitions materialize, so they shadow same-named
        // catalog relations during evaluation — the resolver must agree.
        let defined: HashMap<String, Vec<String>> = p
            .definitions
            .iter()
            .filter(|d| !is_abstract(d.name()))
            .map(|d| (d.name().to_string(), d.collection.head.attrs.clone()))
            .collect();
        let resolver = CatalogResolver {
            catalog: self.catalog,
            defined,
            abstracts,
        };
        let plan = arc_plan::lower_program_opts(p, &resolver, mode, decorrelate, indexes)
            .map_err(lower_err)?;
        Ok((plan, threads))
    }

    /// Evaluate a standalone collection while recording a per-operator
    /// execution profile, returning both the result and the profile.
    ///
    /// Actual row/call counts are gathered regardless of the trace knob
    /// (the profile sink is attached only for this call — ordinary
    /// [`Engine::eval_collection`] never profiles); per-operator wall
    /// times additionally require [`Engine::with_trace`] / `ARC_TRACE=on`
    /// to enable clock reads.
    pub fn profile_collection(&self, c: &Collection) -> Result<(Relation, QueryProfile)> {
        let sink = ProfileSink::new();
        let rel = self.with_sink(sink.clone()).eval_collection(c)?;
        Ok((rel, sink.finish()))
    }

    /// Evaluate a whole program while recording a per-operator execution
    /// profile; the profile aggregates over every definition the program
    /// materializes (fixpoint iterations included) plus the query. See
    /// [`Engine::profile_collection`] for what the trace knob adds.
    pub fn profile_program(&self, p: &Program) -> Result<(ProgramOutput, QueryProfile)> {
        let sink = ProfileSink::new();
        let out = self.with_sink(sink.clone()).eval_program(p)?;
        Ok((out, sink.finish()))
    }

    /// Evaluate a standalone collection while recording hierarchical
    /// spans, returning the result plus the timeline as a Chrome Trace
    /// Event Format JSON value — load it at <https://ui.perfetto.dev> (or
    /// `chrome://tracing`) to see the query → plan → scope → step →
    /// morsel nesting per worker lane.
    ///
    /// The sink is attached only for this call and sized to the engine's
    /// thread count; span names come from [`arc_plan::span_names`] over
    /// the same lowered plan `EXPLAIN` renders, so timeline blocks are
    /// joinable back to `EXPLAIN ANALYZE` lines by name and by the
    /// `args.op` operator key.
    pub fn span_trace_collection(
        &self,
        c: &Collection,
    ) -> Result<(Relation, arc_core::json::Json)> {
        let sink = arc_trace::SpanSink::with_lanes(self.threads()?);
        let rel = self.with_span_sink(sink.clone()).eval_collection(c)?;
        let (plan, _) = self.lowered_collection(c)?;
        let trace = sink.finish();
        let json = chrome_trace_with_plan(&trace, &arc_plan::render(&plan), &plan);
        Ok((rel, json))
    }

    /// [`Engine::span_trace_collection`] for a whole program: one
    /// timeline covering every definition the program materializes
    /// (fixpoint iterations included) plus the query, under a single
    /// enclosing `query` span.
    pub fn span_trace_program(&self, p: &Program) -> Result<(ProgramOutput, arc_core::json::Json)> {
        let sink = arc_trace::SpanSink::with_lanes(self.threads()?);
        let out = self.with_span_sink(sink.clone()).eval_program(p)?;
        let (plan, _) = self.lowered_program(p)?;
        let trace = sink.finish();
        let json = chrome_trace_with_plan(&trace, &arc_plan::render(&plan), &plan);
        Ok((out, json))
    }

    /// `EXPLAIN ANALYZE` for a standalone collection: run it with
    /// profiling ([`Engine::profile_collection`]), then render the plan
    /// with each operator annotated by its measured actuals —
    /// `act=N (est=N, q=X.X)` per step (q-error of the planner's
    /// estimate), probe/hit counts on semi-joins, and wall time when the
    /// trace knob enables clock reads.
    pub fn explain_analyze_collection(&self, c: &Collection) -> Result<String> {
        let (_, profile) = self.profile_collection(c)?;
        let (plan, threads) = self.lowered_collection(c)?;
        Ok(arc_plan::render_analyze(&plan, threads, &|id| {
            profile.op(id).copied()
        }))
    }

    /// `EXPLAIN ANALYZE` for a whole program: evaluate it with profiling,
    /// then render definitions and query annotated with measured actuals.
    /// Scopes evaluated more than once (fixpoint iterations, correlated
    /// re-entry) report summed counts across all invocations — the
    /// renderer's per-call normalization divides by `calls`.
    pub fn explain_analyze_program(&self, p: &Program) -> Result<String> {
        let (_, profile) = self.profile_program(p)?;
        let (plan, threads) = self.lowered_program(p)?;
        Ok(arc_plan::render_analyze(&plan, threads, &|id| {
            profile.op(id).copied()
        }))
    }
}
