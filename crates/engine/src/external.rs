//! **External relations** (paper §2.13.1): relations whose semantics come
//! from outside the relational core — arithmetic, comparisons, string
//! operators — with possibly infinite extensions, accessed through
//! **access patterns** (Guagliardo et al., cited as [35] in the paper).
//!
//! An access pattern names the attribute positions that must be *bound*
//! before the relation can be enumerated; the pattern's function then
//! returns the finitely many completing tuples. `Add(2, x, 5)` is the
//! paper's example: with positions 0 and 2 bound, the pattern returns
//! `x = 3`. The evaluator picks a viable pattern based on which attributes
//! are determined by equality predicates in the enclosing scope
//! ([`crate::eval`]).

use crate::relation::Tuple;
use arc_core::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// The completing function of an access pattern: given the values of the
/// pattern's bound positions (in [`AccessPattern::bound`] order), return
/// every completing full tuple (schema order). Boolean externals return
/// zero or one empty-completion tuples.
pub type PatternFn = Arc<dyn Fn(&[Value]) -> Vec<Tuple> + Send + Sync>;

/// One access pattern of an external relation.
#[derive(Clone)]
pub struct AccessPattern {
    /// Attribute indices that must be bound (inputs).
    pub bound: Vec<usize>,
    /// Completion function producing full tuples.
    pub complete: PatternFn,
}

impl fmt::Debug for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AccessPattern")
            .field("bound", &self.bound)
            .finish_non_exhaustive()
    }
}

/// An external relation: name, schema, and its access patterns.
#[derive(Clone, Debug)]
pub struct ExternalRelation {
    /// Relation name, e.g. `Minus`, `*`, `Bigger`.
    pub name: String,
    /// Attribute names.
    pub schema: Vec<String>,
    /// Access patterns, tried in declaration order.
    pub patterns: Vec<AccessPattern>,
}

impl ExternalRelation {
    /// Create an external relation with no patterns yet.
    pub fn new(name: impl Into<String>, schema: &[&str]) -> Self {
        ExternalRelation {
            name: name.into(),
            schema: schema.iter().map(|s| s.to_string()).collect(),
            patterns: Vec::new(),
        }
    }

    /// Add an access pattern (builder style).
    pub fn with_pattern(
        mut self,
        bound: &[usize],
        complete: impl Fn(&[Value]) -> Vec<Tuple> + Send + Sync + 'static,
    ) -> Self {
        self.patterns.push(AccessPattern {
            bound: bound.to_vec(),
            complete: Arc::new(complete),
        });
        self
    }

    /// The first pattern whose bound positions are all contained in
    /// `available` (indices of attributes determinable from the scope).
    pub fn viable_pattern(&self, available: &[usize]) -> Option<&AccessPattern> {
        self.patterns
            .iter()
            .find(|p| p.bound.iter().all(|b| available.contains(b)))
    }
}

// Externals cross worker threads with the scope pipeline that references
// them — [`PatternFn`] requires `Send + Sync` for exactly this reason.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<AccessPattern>();
    assert_send_sync::<ExternalRelation>();
};

/// A binary numeric total function lifted to a ternary external relation
/// `(left, right, out)` with the forward pattern `(b, b, f)`.
fn ternary_numeric(
    name: &str,
    attrs: &[&str],
    forward: impl Fn(f64, f64) -> Option<f64> + Send + Sync + Copy + 'static,
) -> ExternalRelation {
    ExternalRelation::new(name, attrs).with_pattern(&[0, 1], move |inputs| {
        numeric_binop(&inputs[0], &inputs[1], forward)
            .map(|out| vec![vec![inputs[0].clone(), inputs[1].clone(), out]])
            .unwrap_or_default()
    })
}

/// Apply a float-level op while preserving integer typing when both inputs
/// are integers and the result is integral.
fn numeric_binop(a: &Value, b: &Value, f: impl Fn(f64, f64) -> Option<f64>) -> Option<Value> {
    let (x, y) = (a.as_f64()?, b.as_f64()?);
    let out = f(x, y)?;
    let both_int = matches!((a, b), (Value::Int(_), Value::Int(_)));
    if both_int && out.fract() == 0.0 && out.is_finite() {
        Some(Value::Int(out as i64))
    } else {
        Some(Value::Float(out))
    }
}

/// The standard library of external relations used by the paper's examples:
///
/// * `Minus(left, right, out)` — Example 1 / Eq (20), with the extra
///   *backward* pattern `(b, f, b)` so that `Minus(5, x, 2)` solves `x = 3`
///   (the access-pattern flexibility of §2.13.1, discussion point 3);
/// * `Add(left, right, out)` — with backward patterns on either operand;
/// * `*`(`$1`, `$2`, `out`) — multiplication, the Fig 20 matrix-multiply
///   external;
/// * `Div(left, right, out)`;
/// * `Bigger(left, right)` — the reified `>` of Eq (21) (boolean);
/// * `>`(`left`, `right`) — alias used in Fig 15;
/// * `Concat(left, right, out)` — string concatenation (shows non-numeric
///   externals are nothing special).
pub fn standard_externals() -> HashMap<String, ExternalRelation> {
    let mut m = HashMap::new();

    let minus = ternary_numeric("Minus", &["left", "right", "out"], |a, b| Some(a - b))
        // Backward: left - x = out  =>  x = left - out.
        .with_pattern(&[0, 2], |inputs| {
            numeric_binop(&inputs[0], &inputs[1], |l, o| Some(l - o))
                .map(|right| vec![vec![inputs[0].clone(), right, inputs[1].clone()]])
                .unwrap_or_default()
        });
    m.insert(minus.name.clone(), minus);

    let add = ternary_numeric("Add", &["left", "right", "out"], |a, b| Some(a + b))
        // Add(x, b, out): x = out - right.
        .with_pattern(&[1, 2], |inputs| {
            numeric_binop(&inputs[1], &inputs[0], |o, r| Some(o - r))
                .map(|left| vec![vec![left, inputs[0].clone(), inputs[1].clone()]])
                .unwrap_or_default()
        })
        // Add(a, x, out): x = out - left.
        .with_pattern(&[0, 2], |inputs| {
            numeric_binop(&inputs[1], &inputs[0], |o, l| Some(o - l))
                .map(|right| vec![vec![inputs[0].clone(), right, inputs[1].clone()]])
                .unwrap_or_default()
        });
    m.insert(add.name.clone(), add);

    let mul = ternary_numeric("*", &["$1", "$2", "out"], |a, b| Some(a * b));
    m.insert(mul.name.clone(), mul);

    let div = ternary_numeric("Div", &["left", "right", "out"], |a, b| {
        if b == 0.0 {
            None
        } else {
            Some(a / b)
        }
    });
    m.insert(div.name.clone(), div);

    for name in ["Bigger", ">"] {
        let bigger = ExternalRelation::new(name, &["left", "right"]).with_pattern(
            &[0, 1],
            |inputs: &[Value]| match inputs[0].compare(&inputs[1]) {
                Some(std::cmp::Ordering::Greater) => {
                    vec![vec![inputs[0].clone(), inputs[1].clone()]]
                }
                _ => Vec::new(),
            },
        );
        m.insert(bigger.name.clone(), bigger);
    }

    let concat = ExternalRelation::new("Concat", &["left", "right", "out"]).with_pattern(
        &[0, 1],
        |inputs: &[Value]| match (&inputs[0], &inputs[1]) {
            (Value::Str(a), Value::Str(b)) => vec![vec![
                inputs[0].clone(),
                inputs[1].clone(),
                Value::str(format!("{a}{b}")),
            ]],
            _ => Vec::new(),
        },
    );
    m.insert(concat.name.clone(), concat);

    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minus_forward_pattern() {
        let ext = &standard_externals()["Minus"];
        let p = ext.viable_pattern(&[0, 1]).unwrap();
        let out = (p.complete)(&[Value::Int(5), Value::Int(3)]);
        assert_eq!(out, vec![vec![Value::Int(5), Value::Int(3), Value::Int(2)]]);
    }

    #[test]
    fn minus_backward_pattern_solves_operand() {
        // Minus(5, x, 2) => x = 3 (paper's Add(2, x, 5) flavour).
        let ext = &standard_externals()["Minus"];
        let p = ext.viable_pattern(&[0, 2]).unwrap();
        let out = (p.complete)(&[Value::Int(5), Value::Int(2)]);
        assert_eq!(out, vec![vec![Value::Int(5), Value::Int(3), Value::Int(2)]]);
    }

    #[test]
    fn bigger_is_boolean() {
        let ext = &standard_externals()["Bigger"];
        let p = ext.viable_pattern(&[0, 1]).unwrap();
        assert_eq!((p.complete)(&[Value::Int(5), Value::Int(3)]).len(), 1);
        assert_eq!((p.complete)(&[Value::Int(3), Value::Int(5)]).len(), 0);
        assert_eq!((p.complete)(&[Value::Null, Value::Int(5)]).len(), 0);
    }

    #[test]
    fn viable_pattern_requires_all_bound() {
        let ext = &standard_externals()["*"];
        assert!(ext.viable_pattern(&[0]).is_none());
        assert!(ext.viable_pattern(&[0, 1, 2]).is_some());
    }

    #[test]
    fn integer_typing_preserved() {
        let ext = &standard_externals()["*"];
        let p = ext.viable_pattern(&[0, 1]).unwrap();
        let out = (p.complete)(&[Value::Int(4), Value::Int(2)]);
        assert_eq!(out[0][2], Value::Int(8));
        let out = (p.complete)(&[Value::Float(2.5), Value::Int(2)]);
        assert_eq!(out[0][2], Value::Float(5.0));
    }

    #[test]
    fn div_by_zero_yields_no_tuple() {
        let ext = &standard_externals()["Div"];
        let p = ext.viable_pattern(&[0, 1]).unwrap();
        assert!((p.complete)(&[Value::Int(1), Value::Int(0)]).is_empty());
    }

    #[test]
    fn concat_strings() {
        let ext = &standard_externals()["Concat"];
        let p = ext.viable_pattern(&[0, 1]).unwrap();
        let out = (p.complete)(&[Value::str("a"), Value::str("b")]);
        assert_eq!(out[0][2], Value::str("ab"));
    }
}
