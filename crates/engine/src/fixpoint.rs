//! Program evaluation: definitions, stratification, and least-fixed-point
//! recursion (paper §2.9).
//!
//! ARC expresses recursion as a single definition whose disjuncts reference
//! the defined relation itself (Eq (16)). The engine:
//!
//! 1. classifies definitions into *intensional* (safe — materialized) and
//!    *abstract* (§2.13.2 — checked in context, never materialized);
//! 2. builds the dependency graph and its strongly connected components;
//! 3. evaluates SCCs in topological order; recursive SCCs are solved with a
//!    least fixed point — either **naive** iteration or **semi-naive**
//!    differentiation (one delta-substituted variant per recursive binding
//!    occurrence), selectable for the ablation benchmark;
//! 4. rejects non-stratifiable programs (recursion through negation or
//!    aggregation) and recursion under bag semantics.

use crate::error::{EvalError, Result};
use crate::eval::Engine;
use crate::relation::Relation;
use arc_core::ast::*;
use arc_core::binder::Binder;
use arc_core::conventions::Semantics;
use arc_guard::{seam, QueryGuard};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Fixpoint iteration cap (each iteration must add at least one tuple, so
/// this bounds derivable-set growth, not wall-clock time).
const MAX_ITERATIONS: usize = 1_000_000;

/// How recursive SCCs are iterated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FixpointStrategy {
    /// Re-derive everything each round (the textbook definition).
    Naive,
    /// Differentiate on the per-round delta (one variant per recursive
    /// binding occurrence); asymptotically avoids re-deriving old facts.
    #[default]
    SemiNaive,
}

/// The result of evaluating a [`Program`].
#[derive(Debug, Clone)]
pub struct ProgramOutput {
    /// Materialized intensional relations, by name.
    pub defined: BTreeMap<String, Relation>,
    /// The query result, when the program has a query.
    pub query: Option<Relation>,
}

impl Engine<'_> {
    /// Evaluate a program with the default (semi-naive) strategy.
    pub fn eval_program(&self, p: &Program) -> Result<ProgramOutput> {
        self.eval_program_with(p, FixpointStrategy::default())
    }

    /// Evaluate a program with an explicit fixpoint strategy.
    pub fn eval_program_with(
        &self,
        p: &Program,
        strategy: FixpointStrategy,
    ) -> Result<ProgramOutput> {
        // One latency sample — and, when a span sink is attached, one
        // enclosing `query` span — for the whole program: definitions,
        // fixpoints, and the final query count as a single engine entry.
        // The guard is likewise program-scoped: one deadline and one
        // budget cover every stratum and fixpoint round.
        self.contained(|| {
            let guard = self.make_guard()?;
            let timer = crate::eval::QueryTimer::start(self.span_sink.as_ref());
            let out = (|| {
                let (defined, abstracts) =
                    self.materialize_definitions(p, strategy, guard.as_ref())?;
                let query = match &p.query {
                    Some(q) => Some(self.eval_with(q, &defined, &abstracts, guard.as_ref())?),
                    None => None,
                };
                Ok(ProgramOutput {
                    defined: defined.into_iter().collect(),
                    query,
                })
            })();
            timer.finish(self.span_sink.as_ref());
            out
        })
    }

    /// Evaluate a boolean sentence in the context of a program's
    /// definitions.
    pub fn eval_sentence_in(&self, p: &Program, f: &Formula) -> Result<arc_core::value::Truth> {
        self.contained(|| {
            let guard = self.make_guard()?;
            let (defined, abstracts) =
                self.materialize_definitions(p, FixpointStrategy::default(), guard.as_ref())?;
            self.eval_sentence_with(f, &defined, &abstracts, guard.as_ref())
        })
    }

    fn materialize_definitions(
        &self,
        p: &Program,
        strategy: FixpointStrategy,
        guard: Option<&Arc<QueryGuard>>,
    ) -> Result<(HashMap<String, Relation>, HashMap<String, Collection>)> {
        // Classify abstract definitions via the binder (open world: the
        // catalog may hold relations the binder does not know about).
        let bound = Binder::new().bind_program(p);
        let abstract_names: HashSet<&str> = bound
            .abstract_collections
            .iter()
            .map(|s| s.as_str())
            .collect();

        let mut abstracts: HashMap<String, Collection> = HashMap::new();
        let mut safe: Vec<&Definition> = Vec::new();
        for def in &p.definitions {
            if abstract_names.contains(def.name()) {
                abstracts.insert(def.name().to_string(), def.collection.clone());
            } else {
                safe.push(def);
            }
        }

        // Dependency graph over safe definitions. References routed through
        // abstract relations inherit the abstract body's own references.
        let def_index: HashMap<&str, usize> = safe
            .iter()
            .enumerate()
            .map(|(i, d)| (d.name(), i))
            .collect();
        let mut deps: Vec<HashSet<usize>> = vec![HashSet::new(); safe.len()];
        for (i, def) in safe.iter().enumerate() {
            let mut names = Vec::new();
            collect_sources(&def.collection, &mut names);
            let mut seen_abstract: HashSet<String> = HashSet::new();
            let mut queue = names;
            while let Some(name) = queue.pop() {
                if let Some(&j) = def_index.get(name.as_str()) {
                    deps[i].insert(j);
                } else if let Some(a) = abstracts.get(&name) {
                    if seen_abstract.insert(name) {
                        collect_sources(a, &mut queue);
                    }
                }
            }
        }

        // Strongly connected components (Tarjan), emitted in reverse
        // topological order, then processed in topological order.
        let sccs = tarjan(&deps);

        let mut defined: HashMap<String, Relation> = HashMap::new();
        for scc in sccs.into_iter().rev() {
            let recursive = scc.len() > 1 || (scc.len() == 1 && deps[scc[0]].contains(&scc[0]));
            if !recursive {
                let def = safe[scc[0]];
                let rel = self.eval_with(&def.collection, &defined, &abstracts, guard)?;
                defined.insert(def.name().to_string(), rel);
                continue;
            }
            self.solve_recursive_scc(&scc, &safe, &mut defined, &abstracts, strategy, guard)?;
        }
        Ok((defined, abstracts))
    }

    fn solve_recursive_scc(
        &self,
        scc: &[usize],
        safe: &[&Definition],
        defined: &mut HashMap<String, Relation>,
        abstracts: &HashMap<String, Collection>,
        strategy: FixpointStrategy,
        guard: Option<&Arc<QueryGuard>>,
    ) -> Result<()> {
        let member_names: HashSet<String> =
            scc.iter().map(|&i| safe[i].name().to_string()).collect();
        let first_name = safe[scc[0]].name().to_string();

        if self.conventions.semantics == Semantics::Bag {
            return Err(EvalError::RecursionUnderBag {
                relation: first_name,
            });
        }
        for &i in scc {
            if uses_nonmonotonically(&safe[i].collection, &member_names) {
                return Err(EvalError::NotStratifiable {
                    relation: safe[i].name().to_string(),
                });
            }
        }

        // Seed every member with an empty relation of the right schema.
        for &i in scc {
            let def = safe[i];
            let mut rel = Relation::new(def.name().to_string(), &[]);
            rel.schema = def.collection.head.attrs.clone();
            defined.insert(def.name().to_string(), rel);
        }

        match strategy {
            FixpointStrategy::Naive => {
                for iteration in 0.. {
                    // Guard seam: one cooperative check (and fault
                    // window) per fixpoint round, so a runaway recursion
                    // observes its deadline/cancellation between rounds.
                    crate::eval::guard_check_at(guard, seam::FIXPOINT_ROUND)?;
                    if iteration >= MAX_ITERATIONS {
                        return Err(EvalError::FixpointLimit {
                            relation: first_name,
                            iterations: MAX_ITERATIONS,
                        });
                    }
                    let mut changed = false;
                    for &i in scc {
                        let def = safe[i];
                        let new = self
                            .eval_with(&def.collection, defined, abstracts, guard)?
                            .union(&defined[def.name()])
                            .deduped();
                        let grown = new.len().saturating_sub(defined[def.name()].len());
                        if grown > 0 {
                            changed = true;
                            // Derived-set growth has no streaming
                            // fallback: hard-charge it, trip on denial.
                            crate::eval::guard_reserve_hard(
                                guard,
                                grown * new.schema.len().max(1) * 24,
                            )?;
                        }
                        defined.insert(def.name().to_string(), new);
                    }
                    if !changed {
                        break;
                    }
                }
            }
            FixpointStrategy::SemiNaive => {
                // Round 0: full rules against empty members seed the totals.
                let mut deltas: HashMap<String, Relation> = HashMap::new();
                for &i in scc {
                    let def = safe[i];
                    let seed = self
                        .eval_with(&def.collection, defined, abstracts, guard)?
                        .deduped();
                    deltas.insert(def.name().to_string(), seed.clone());
                    defined.insert(def.name().to_string(), seed);
                }
                // Delta-variant collections: one per recursive occurrence.
                let variants: HashMap<usize, Vec<Collection>> = scc
                    .iter()
                    .map(|&i| (i, delta_variants(&safe[i].collection, &member_names)))
                    .collect();

                for iteration in 0.. {
                    // Guard seam: one cooperative check (and fault
                    // window) per semi-naive round.
                    crate::eval::guard_check_at(guard, seam::FIXPOINT_ROUND)?;
                    if iteration >= MAX_ITERATIONS {
                        return Err(EvalError::FixpointLimit {
                            relation: first_name,
                            iterations: MAX_ITERATIONS,
                        });
                    }
                    if deltas.values().all(|d| d.is_empty()) {
                        break;
                    }
                    // Expose deltas under their reserved names.
                    for (name, delta) in &deltas {
                        defined.insert(delta_name(name), delta.clone());
                    }
                    let mut new_deltas: HashMap<String, Relation> = HashMap::new();
                    for &i in scc {
                        let def = safe[i];
                        let mut fresh = Relation::new(def.name().to_string(), &[]);
                        fresh.schema = def.collection.head.attrs.clone();
                        for variant in &variants[&i] {
                            let rows = self.eval_with(variant, defined, abstracts, guard)?;
                            fresh = fresh.union(&rows);
                        }
                        let fresh = fresh.deduped().minus_set(&defined[def.name()]);
                        // Delta growth has no streaming fallback:
                        // hard-charge it, trip on denial.
                        crate::eval::guard_reserve_hard(
                            guard,
                            fresh.len() * fresh.schema.len().max(1) * 24,
                        )?;
                        new_deltas.insert(def.name().to_string(), fresh);
                    }
                    for (name, delta) in &new_deltas {
                        let total = defined[name].union(delta);
                        defined.insert(name.clone(), total);
                    }
                    deltas = new_deltas;
                }
                for name in &member_names {
                    defined.remove(&delta_name(name));
                }
            }
        }
        Ok(())
    }
}

/// Reserved delta-relation name (cannot collide with user names, which are
/// parsed identifiers).
fn delta_name(name: &str) -> String {
    format!("@delta:{name}")
}

/// All named binding sources of a collection, recursively.
fn collect_sources(c: &Collection, out: &mut Vec<String>) {
    fn walk(f: &Formula, out: &mut Vec<String>) {
        match f {
            Formula::Quant(q) => {
                for b in &q.bindings {
                    match &b.source {
                        BindingSource::Named(n) => out.push(n.clone()),
                        BindingSource::Collection(c) => collect_sources(c, out),
                    }
                }
                walk(&q.body, out);
            }
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|s| walk(s, out)),
            Formula::Not(inner) => walk(inner, out),
            Formula::Pred(_) => {}
        }
    }
    walk(&c.body, out);
}

/// Does the collection reference any of `names` under negation or inside a
/// grouping scope (non-monotonic use → not stratifiable)?
fn uses_nonmonotonically(c: &Collection, names: &HashSet<String>) -> bool {
    fn walk(f: &Formula, names: &HashSet<String>, neg: bool, grouped: bool) -> bool {
        match f {
            Formula::Quant(q) => {
                let grouped = grouped || q.grouping.is_some();
                for b in &q.bindings {
                    match &b.source {
                        BindingSource::Named(n) => {
                            if names.contains(n) && (neg || grouped) {
                                return true;
                            }
                        }
                        BindingSource::Collection(c) => {
                            if walk(&c.body, names, neg, grouped) {
                                return true;
                            }
                        }
                    }
                }
                walk(&q.body, names, neg, grouped)
            }
            Formula::And(fs) | Formula::Or(fs) => fs.iter().any(|s| walk(s, names, neg, grouped)),
            Formula::Not(inner) => walk(inner, names, true, grouped),
            Formula::Pred(_) => false,
        }
    }
    walk(&c.body, names, false, false)
}

/// Build the semi-naive delta variants of a collection: one clone per
/// binding occurrence whose source is a recursive relation, with that
/// occurrence's source renamed to its delta relation.
fn delta_variants(c: &Collection, names: &HashSet<String>) -> Vec<Collection> {
    let total = count_occurrences(c, names);
    (0..total)
        .map(|target| {
            let mut clone = c.clone();
            let mut counter = 0usize;
            substitute(&mut clone, names, target, &mut counter);
            clone
        })
        .collect()
}

fn count_occurrences(c: &Collection, names: &HashSet<String>) -> usize {
    fn walk(f: &Formula, names: &HashSet<String>) -> usize {
        match f {
            Formula::Quant(q) => {
                let mut n = 0;
                for b in &q.bindings {
                    match &b.source {
                        BindingSource::Named(name) if names.contains(name) => n += 1,
                        BindingSource::Collection(c) => n += count_occurrences(c, names),
                        _ => {}
                    }
                }
                n + walk(&q.body, names)
            }
            Formula::And(fs) | Formula::Or(fs) => fs.iter().map(|s| walk(s, names)).sum(),
            Formula::Not(inner) => walk(inner, names),
            Formula::Pred(_) => 0,
        }
    }
    walk(&c.body, names)
}

fn substitute(c: &mut Collection, names: &HashSet<String>, target: usize, counter: &mut usize) {
    fn walk(f: &mut Formula, names: &HashSet<String>, target: usize, counter: &mut usize) {
        match f {
            Formula::Quant(q) => {
                for b in &mut q.bindings {
                    match &mut b.source {
                        BindingSource::Named(name) if names.contains(name.as_str()) => {
                            if *counter == target {
                                *name = delta_name(name);
                            }
                            *counter += 1;
                        }
                        BindingSource::Collection(c) => substitute(c, names, target, counter),
                        _ => {}
                    }
                }
                walk(&mut q.body, names, target, counter);
            }
            Formula::And(fs) | Formula::Or(fs) => {
                for sub in fs {
                    walk(sub, names, target, counter);
                }
            }
            Formula::Not(inner) => walk(inner, names, target, counter),
            Formula::Pred(_) => {}
        }
    }
    walk(&mut c.body, names, target, counter);
}

/// Tarjan's strongly connected components; returns SCCs in reverse
/// topological order (standard Tarjan emission order).
fn tarjan(deps: &[HashSet<usize>]) -> Vec<Vec<usize>> {
    struct State<'d> {
        deps: &'d [HashSet<usize>],
        index: Vec<Option<usize>>,
        low: Vec<usize>,
        on_stack: Vec<bool>,
        stack: Vec<usize>,
        next: usize,
        out: Vec<Vec<usize>>,
    }
    fn strongconnect(s: &mut State<'_>, v: usize) {
        s.index[v] = Some(s.next);
        s.low[v] = s.next;
        s.next += 1;
        s.stack.push(v);
        s.on_stack[v] = true;
        let succ: Vec<usize> = s.deps[v].iter().copied().collect();
        for w in succ {
            if s.index[w].is_none() {
                strongconnect(s, w);
                s.low[v] = s.low[v].min(s.low[w]);
            } else if s.on_stack[w] {
                s.low[v] = s.low[v].min(s.index[w].expect("indexed"));
            }
        }
        if s.low[v] == s.index[v].expect("indexed") {
            let mut scc = Vec::new();
            loop {
                let w = s.stack.pop().expect("stack non-empty");
                s.on_stack[w] = false;
                scc.push(w);
                if w == v {
                    break;
                }
            }
            s.out.push(scc);
        }
    }
    let n = deps.len();
    let mut s = State {
        deps,
        index: vec![None; n],
        low: vec![0; n],
        on_stack: vec![false; n],
        stack: Vec::new(),
        next: 0,
        out: Vec::new(),
    };
    for v in 0..n {
        if s.index[v].is_none() {
            strongconnect(&mut s, v);
        }
    }
    s.out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tarjan_orders_components() {
        // 0 → 1 → 2, 2 → 1 (cycle {1,2}).
        let deps = vec![HashSet::from([1]), HashSet::from([2]), HashSet::from([1])];
        let sccs = tarjan(&deps);
        assert_eq!(sccs.len(), 2);
        // Reverse topological: {1,2} first, then {0}.
        let mut first = sccs[0].clone();
        first.sort_unstable();
        assert_eq!(first, vec![1, 2]);
        assert_eq!(sccs[1], vec![0]);
    }

    #[test]
    fn delta_name_is_reserved() {
        assert_eq!(delta_name("A"), "@delta:A");
    }
}
