//! # arc-engine — an executable semantics for ARC
//!
//! An in-memory relational engine that evaluates Abstract Relational
//! Calculus (ARC) queries under switchable **conventions** (set vs. bag
//! semantics, null logic, empty-aggregate initialization — paper §2.6/§2.7).
//!
//! The engine exists to make every figure of the paper *checkable*: the
//! count bug (Fig 21) really returns different rows for version 1 and
//! version 2; the lateral rewrite of a scalar subquery (Fig 13) really is
//! equivalent under bag semantics while the LEFT JOIN + GROUP BY rewrite
//! is not; Soufflé's `sum ∅ = 0` convention really flips Eq (15)'s result.
//!
//! The **reference strategy** is the paper's conceptual evaluation
//! (nested loops, §2.3): ARC is positioned as a reference language "in the
//! opposite direction" of IRs, so fidelity beats speed. Faster execution
//! plugs in *behind* that semantics through the `arc-plan` layer: by
//! default ([`eval::EvalStrategy::Planned`]) every quantifier scope is
//! planned — greedy join ordering by estimated cardinality, per-join
//! hash/scan choice, predicate pushdown — and equi-join workloads drop
//! from O(n·m) to O(n+m) with no configuration. The
//! `ARC_EVAL_STRATEGY=nested-loop|hash-join` force-overrides pin one
//! strategy everywhere (the whole test suite runs under all three), and
//! `Engine::explain_collection`/`Engine::explain_program` render the plan.
//! Recursion gets the same treatment on the fixpoint axis
//! ([`fixpoint::FixpointStrategy`]: naive vs. semi-naive); the benchmark
//! suite ablates both axes.
//!
//! ```
//! use arc_core::dsl::*;
//! use arc_core::Conventions;
//! use arc_engine::{Catalog, Engine, Relation};
//!
//! // Paper Eq (3): grouped sum over R(A,B), the FIO pattern.
//! let q = collection(
//!     "Q",
//!     &["A", "sm"],
//!     quant(
//!         &[bind("r", "R")],
//!         group(&[("r", "A")]),
//!         None,
//!         and([
//!             assign("Q", "A", col("r", "A")),
//!             assign_agg("Q", "sm", sum(col("r", "B"))),
//!         ]),
//!     ),
//! );
//! let catalog = Catalog::new().with(Relation::from_ints(
//!     "R",
//!     &["A", "B"],
//!     &[&[1, 10], &[1, 20], &[2, 5]],
//! ));
//! let out = Engine::new(&catalog, Conventions::sql()).eval_collection(&q).unwrap();
//! assert_eq!(out.len(), 2); // (1, 30) and (2, 5)
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod error;
pub mod eval;
pub mod explain;
pub mod external;
pub mod fixpoint;
pub mod metrics;
pub mod relation;

pub use catalog::Catalog;
pub use error::{EvalError, Result};
pub use eval::semijoin::semi_build_runs;
pub use eval::{Engine, EvalStrategy};
// Guard vocabulary callers need to drive `Engine::with_fault` /
// `Engine::cancel_handle` without depending on `arc-guard` directly.
pub use arc_guard::{seam, CancelHandle, FaultKind, FaultPlan};
pub use external::{AccessPattern, ExternalRelation};
pub use fixpoint::{FixpointStrategy, ProgramOutput};
pub use relation::{Relation, Tuple};

#[cfg(test)]
mod tests;
