//! The engine's registry metrics: one accessor per named counter or
//! histogram, each a process-global `arc-trace` handle cached in a
//! `OnceLock` so the hot path pays one relaxed atomic load — never a
//! registry lookup.
//!
//! Counters are **always on** (a relaxed `fetch_add` at build/cache
//! sites, which run once per query, not once per row); histograms record
//! only when the engine's trace knob (`ARC_TRACE` /
//! [`Engine::with_trace`](crate::eval::Engine::with_trace)) enables the
//! clock reads that feed them. The full catalog, including the
//! `plan.*`/`exec.*` metrics registered by `arc-plan`/`arc-exec`, is
//! documented in the workspace README's Observability section.

use arc_trace::{Counter, Histogram, QuantileHistogram};
use std::sync::OnceLock;

macro_rules! counter_fn {
    ($(#[$doc:meta])* $name:ident, $key:literal) => {
        $(#[$doc])*
        pub fn $name() -> Counter {
            static C: OnceLock<Counter> = OnceLock::new();
            *C.get_or_init(|| arc_trace::counter($key))
        }
    };
}

macro_rules! histogram_fn {
    ($(#[$doc:meta])* $name:ident, $key:literal) => {
        $(#[$doc])*
        pub fn $name() -> Histogram {
            static H: OnceLock<Histogram> = OnceLock::new();
            *H.get_or_init(|| arc_trace::histogram($key))
        }
    };
}

counter_fn!(
    /// `engine.index.hash.builds`: equi-join hash indexes built (cache
    /// misses of the per-query index cache).
    hash_builds,
    "engine.index.hash.builds"
);
counter_fn!(
    /// `engine.index.ordered.builds`: ordered secondary indexes built
    /// (cache misses of the per-relation index cache).
    ordered_builds,
    "engine.index.ordered.builds"
);
counter_fn!(
    /// `engine.index.range.rows`: rows surviving index-range binary
    /// searches (before demoted post-filters).
    index_range_rows,
    "engine.index.range.rows"
);
counter_fn!(
    /// `engine.index.range.dropped`: index-range survivors then dropped
    /// by the demoted constant filters.
    index_range_dropped,
    "engine.index.range.dropped"
);
counter_fn!(
    /// `engine.column.chunk_builds`: columnar chunk views encoded (cache
    /// misses of the per-relation column cache).
    chunk_builds,
    "engine.column.chunk_builds"
);
counter_fn!(
    /// `engine.selection.builds`: selection vectors computed (vectorized
    /// constant-filter prefixes and/or index-range probes).
    selection_builds,
    "engine.selection.builds"
);
counter_fn!(
    /// `engine.selection.cache_hits`: selection vectors served from the
    /// per-query cache (correlated scopes re-entering a scan).
    selection_cache_hits,
    "engine.selection.cache_hits"
);
counter_fn!(
    /// `engine.semijoin.builds`: decorrelated semi/anti-join key sets
    /// built (once per evaluation, not once per outer row).
    semi_builds,
    "engine.semijoin.builds"
);
counter_fn!(
    /// `engine.semijoin.probes`: outer rows answered by probing a built
    /// key set.
    semi_probes,
    "engine.semijoin.probes"
);
counter_fn!(
    /// `engine.semijoin.hits`: semi-join probes that found their key.
    semi_hits,
    "engine.semijoin.hits"
);
counter_fn!(
    /// `guard.degradations`: builds denied by the memory budget that
    /// fell back to their streaming/nested path instead of failing.
    guard_degradations,
    "guard.degradations"
);
counter_fn!(
    /// `guard.faults`: injected faults fired (`ARC_FAULT` /
    /// [`Engine::with_fault`](crate::eval::Engine::with_fault)).
    guard_faults,
    "guard.faults"
);
counter_fn!(
    /// `engine.query.cancelled`: evaluations that surfaced
    /// `EvalError::Cancelled` at the engine boundary.
    query_cancelled,
    "engine.query.cancelled"
);
counter_fn!(
    /// `engine.query.timeout`: evaluations that surfaced
    /// `EvalError::DeadlineExceeded` at the engine boundary.
    query_timeout,
    "engine.query.timeout"
);

histogram_fn!(
    /// `engine.index.hash.build`: wall time of hash-index builds.
    hash_build_time,
    "engine.index.hash.build"
);
histogram_fn!(
    /// `engine.index.ordered.build`: wall time of ordered-index builds.
    ordered_build_time,
    "engine.index.ordered.build"
);
histogram_fn!(
    /// `engine.column.encode`: wall time of columnar chunk encoding.
    chunk_encode_time,
    "engine.column.encode"
);
histogram_fn!(
    /// `engine.selection.build`: wall time of selection-vector builds.
    selection_build_time,
    "engine.selection.build"
);
histogram_fn!(
    /// `engine.semijoin.build`: wall time of semi-join key-set builds.
    semi_build_time,
    "engine.semijoin.build"
);

/// `engine.query.latency`: always-on latency quantile histogram sampled
/// once per engine entry point (`eval_collection` / `eval_sentence` /
/// `eval_program`) — the p50/p95/p99 surface `metrics_text()` exposes.
pub fn query_latency() -> QuantileHistogram {
    static Q: OnceLock<QuantileHistogram> = OnceLock::new();
    *Q.get_or_init(|| arc_trace::quantile_histogram("engine.query.latency"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_registered() {
        // Same handle on every call (the OnceLock), and the snapshot
        // carries the registered name once touched.
        hash_builds().add(0);
        semi_build_time();
        let snap = arc_trace::snapshot();
        assert!(snap.counters.contains_key("engine.index.hash.builds"));
        assert!(snap.histograms.contains_key("engine.semijoin.build"));
    }
}
