//! In-memory relations: named schemas over bags of tuples, with a lazily
//! encoded columnar view.
//!
//! A [`Relation`] is always a *bag*; whether it is interpreted as a set is
//! a [convention](arc_core::conventions) applied by the engine at
//! collection boundaries, never baked into the data structure — mirroring
//! the paper's §2.7. Storage is two-layered: the row view
//! ([`Relation::rows`], a `Vec` of tuples) remains the mutation and
//! compatibility API that frontends, the binder, and tests program
//! against, while [`Relation::columns`] exposes the same rows as typed
//! [column chunks](arc_core::column) — encoded on first use and cached —
//! which is what the vectorized filter/join kernels and `ANALYZE` consume.

use arc_core::column::ColumnSet;
use arc_core::value::{Key, Value};
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A tuple: values aligned with the owning relation's schema.
pub type Tuple = Vec<Value>;

/// A named relation: schema (attribute names, in order) + rows, plus a
/// lazily encoded columnar view of those rows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    /// Relation name (display only; the catalog key is authoritative).
    pub name: String,
    /// Attribute names in column order.
    pub schema: Vec<String>,
    /// The rows, as a bag (the compatibility/mutation view; the engine's
    /// hot paths read [`Relation::columns`] instead).
    pub rows: Vec<Tuple>,
    /// Cached columnar encoding (see [`Relation::columns`]).
    columns: ColCache,
    /// Cached ordered secondary indexes (see [`Relation::ordered_index`]).
    indexes: IndexCache,
}

/// The lazily built columnar view of a relation's rows. Identity-free by
/// design: cloning resets it (the clone re-encodes on first use) and it
/// never participates in equality, hashing, or `Debug` noise — it is a
/// cache of `rows`, not state of its own.
struct ColCache(Mutex<Option<Arc<ColumnSet>>>);

impl ColCache {
    fn empty() -> ColCache {
        ColCache(Mutex::new(None))
    }

    /// Lock the cache, **recovering** from a poisoned mutex (a worker
    /// panicked while this relation was encoding): the poison is cleared
    /// — so later locks take the fast path again — and the cached view
    /// dropped, because a panic mid-encode may have published a partial
    /// one. Re-encoding on demand is always safe.
    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Arc<ColumnSet>>> {
        self.0.lock().unwrap_or_else(|poisoned| {
            self.0.clear_poison();
            let mut cached = poisoned.into_inner();
            *cached = None;
            cached
        })
    }
}

impl Clone for ColCache {
    fn clone(&self) -> ColCache {
        // Deliberately not cloned: the owning Relation's rows are pub and
        // independently mutable after the clone, so sharing the encoding
        // could serve stale columns. Re-encoding on demand is always safe.
        ColCache::empty()
    }
}

impl PartialEq for ColCache {
    fn eq(&self, _: &ColCache) -> bool {
        true // caches never affect relation equality
    }
}
impl Eq for ColCache {}

impl fmt::Debug for ColCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("ColCache")
    }
}

/// Lazily built ordered secondary indexes, keyed by the indexed column
/// list. Same identity-free contract as [`ColCache`]: cloning resets it,
/// it never participates in equality or `Debug`, and a cached index is
/// served only while the relation's row count still matches its
/// build-time count (the only mutation the engine performs after a
/// relation becomes visible to evaluation is appending rows).
struct IndexCache(Mutex<HashMap<Vec<usize>, Arc<crate::eval::index::OrderedIndex>>>);

impl IndexCache {
    fn empty() -> IndexCache {
        IndexCache(Mutex::new(HashMap::new()))
    }

    /// Lock the cache, recovering from a poisoned mutex the same way
    /// [`ColCache::lock`] does: clear the poison, drop the cached
    /// indexes, rebuild on demand.
    #[allow(clippy::type_complexity)]
    fn lock(
        &self,
    ) -> std::sync::MutexGuard<'_, HashMap<Vec<usize>, Arc<crate::eval::index::OrderedIndex>>> {
        self.0.lock().unwrap_or_else(|poisoned| {
            self.0.clear_poison();
            let mut cached = poisoned.into_inner();
            cached.clear();
            cached
        })
    }
}

impl Clone for IndexCache {
    fn clone(&self) -> IndexCache {
        // Deliberately not cloned, for the same reason as ColCache: the
        // clone's rows are independently mutable.
        IndexCache::empty()
    }
}

impl PartialEq for IndexCache {
    fn eq(&self, _: &IndexCache) -> bool {
        true // caches never affect relation equality
    }
}
impl Eq for IndexCache {}

impl fmt::Debug for IndexCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("IndexCache")
    }
}

impl Relation {
    /// An empty relation with the given name and schema.
    pub fn new(name: impl Into<String>, schema: &[&str]) -> Self {
        Relation {
            name: name.into(),
            schema: schema.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            columns: ColCache::empty(),
            indexes: IndexCache::empty(),
        }
    }

    /// The columnar view of this relation: rows encoded into typed
    /// [chunks](arc_core::column) of [`arc_core::column::CHUNK_ROWS`],
    /// built on first use and cached.
    ///
    /// The cache invalidates on row-*count* changes (the only mutation the
    /// engine performs after a relation becomes visible to evaluation);
    /// code that overwrites rows in place at constant cardinality must not
    /// hold on to a previously obtained view.
    pub fn columns(&self) -> Arc<ColumnSet> {
        let mut cached = self.columns.lock();
        if let Some(set) = cached.as_ref() {
            if set.rows() == self.rows.len() {
                return Arc::clone(set);
            }
        }
        let start = arc_trace::maybe_now();
        let set = Arc::new(ColumnSet::encode(self.schema.len(), &self.rows));
        crate::metrics::chunk_builds().inc();
        arc_trace::record_since(crate::metrics::chunk_encode_time(), start);
        *cached = Some(Arc::clone(&set));
        set
    }

    /// The ordered secondary index over `cols`, built on first use and
    /// cached on the relation — so repeated queries against the same
    /// catalog pay the O(n log n) sort once and every index-range scan
    /// after that is O(log n + k). Shared via `Arc`: the parallel
    /// executor's workers and the coordinator read the same index. The
    /// cache invalidates on row-count changes, exactly like
    /// [`Relation::columns`].
    pub(crate) fn ordered_index(&self, cols: &[usize]) -> Arc<crate::eval::index::OrderedIndex> {
        let mut cached = self.indexes.lock();
        if let Some(idx) = cached.get(cols) {
            if idx.rows() == self.rows.len() {
                return Arc::clone(idx);
            }
        }
        let start = arc_trace::maybe_now();
        let idx = Arc::new(crate::eval::index::OrderedIndex::build(&self.rows, cols));
        crate::metrics::ordered_builds().inc();
        arc_trace::record_since(crate::metrics::ordered_build_time(), start);
        cached.insert(cols.to_vec(), Arc::clone(&idx));
        idx
    }

    /// Build a relation from rows of values convertible to [`Value`].
    ///
    /// ```
    /// use arc_engine::relation::Relation;
    /// let r = Relation::from_rows("R", &["A", "B"], vec![vec![1.into(), 2.into()]]);
    /// assert_eq!(r.len(), 1);
    /// ```
    pub fn from_rows(name: impl Into<String>, schema: &[&str], rows: Vec<Tuple>) -> Self {
        let mut rel = Relation::new(name, schema);
        for row in rows {
            rel.push(row);
        }
        rel
    }

    /// Convenience constructor from integer rows (most paper instances).
    pub fn from_ints(name: impl Into<String>, schema: &[&str], rows: &[&[i64]]) -> Self {
        let mut rel = Relation::new(name, schema);
        for row in rows {
            rel.push(row.iter().map(|v| Value::Int(*v)).collect());
        }
        rel
    }

    /// Number of rows (bag cardinality).
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Column arity.
    pub fn arity(&self) -> usize {
        self.schema.len()
    }

    /// Append one row, checking arity.
    ///
    /// # Panics
    /// Panics when the row arity does not match the schema; tuples are
    /// produced by the engine, so a mismatch is an internal logic error.
    pub fn push(&mut self, row: Tuple) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "arity mismatch inserting into {}",
            self.name
        );
        self.rows.push(row);
    }

    /// Index of an attribute.
    pub fn attr_index(&self, attr: &str) -> Option<usize> {
        self.schema.iter().position(|a| a == attr)
    }

    /// Canonical key view of a row (for hashing/grouping/sorting).
    pub fn row_key(row: &[Value]) -> Vec<Key> {
        row.iter().map(Value::key).collect()
    }

    /// [`Relation::row_key`] into a reusable scratch buffer: the hot
    /// dedup/bag loops probe with `&out[..]` (via `Vec<Key>: Borrow<[Key]>`)
    /// and clone only on first occurrence, instead of allocating a fresh
    /// key vector per row.
    pub fn row_key_into(row: &[Value], out: &mut Vec<Key>) {
        out.clear();
        out.extend(row.iter().map(Value::key));
    }

    /// [`Relation::key_for`] into a reusable scratch buffer; returns
    /// `false` (leaving `out` in an unspecified state) when the row has no
    /// join key on `cols`.
    pub fn key_for_into(row: &[Value], cols: &[usize], out: &mut Vec<Key>) -> bool {
        out.clear();
        for &c in cols {
            match row[c].join_key() {
                Some(k) => out.push(k),
                None => return false,
            }
        }
        true
    }

    /// Equi-join key of a row over `cols`, or `None` when any selected
    /// value can never satisfy an equality predicate (`NULL` compares as
    /// `Unknown`; a float `NaN` is incomparable even to itself), so
    /// indexing/probing with it must produce no matches.
    ///
    /// This is the **one** place join-key semantics live: the hash-join
    /// executor builds its indexes with it and the planner's cardinality
    /// estimator ([`Relation::distinct_estimate`]) counts with it, so the
    /// two can never disagree on what "equal" means.
    pub fn key_for(row: &[Value], cols: &[usize]) -> Option<Vec<Key>> {
        let mut key = Vec::with_capacity(cols.len());
        for &c in cols {
            key.push(join_key(&row[c])?);
        }
        Some(key)
    }

    /// Estimated number of distinct equi-join keys on `cols`, from a
    /// prefix sample of up to `sample` rows (linearly extrapolated when
    /// the relation is larger). Feeds the planner's greedy join ordering;
    /// a crude estimate is fine — it only has to rank join candidates.
    pub fn distinct_estimate(&self, cols: &[usize], sample: usize) -> usize {
        let n = self.rows.len();
        if n == 0 {
            return 0;
        }
        let take = n.min(sample.max(1));
        let mut seen: std::collections::HashSet<Vec<Key>> =
            std::collections::HashSet::with_capacity(take);
        let mut scratch = Vec::with_capacity(cols.len());
        for row in self.rows.iter().take(take) {
            if Relation::key_for_into(row, cols, &mut scratch) && !seen.contains(scratch.as_slice())
            {
                seen.insert(scratch.clone());
            }
        }
        let distinct = seen.len().max(1);
        if take == n {
            distinct
        } else {
            // Linear extrapolation: assumes key frequencies in the sample
            // are representative.
            (distinct * n / take).max(distinct)
        }
    }

    /// Deduplicated copy (first occurrence order preserved).
    pub fn deduped(&self) -> Relation {
        let mut seen: std::collections::HashSet<Vec<Key>> =
            std::collections::HashSet::with_capacity(self.rows.len());
        let mut out = Relation::new(self.name.clone(), &[]);
        out.schema = self.schema.clone();
        let mut scratch = Vec::with_capacity(self.arity());
        for row in &self.rows {
            Relation::row_key_into(row, &mut scratch);
            if !seen.contains(scratch.as_slice()) {
                seen.insert(scratch.clone());
                out.rows.push(row.clone());
            }
        }
        out
    }

    /// Rows sorted by canonical key (deterministic output order; the key
    /// is computed once per row, not once per comparison).
    pub fn sorted_rows(&self) -> Vec<Tuple> {
        let mut rows = self.rows.clone();
        rows.sort_by_cached_key(|r| Relation::row_key(r));
        rows
    }

    /// Multiset of rows as key → multiplicity (one key allocation per
    /// *distinct* row; repeats only bump the count through the scratch
    /// probe).
    pub fn bag(&self) -> HashMap<Vec<Key>, usize> {
        let mut m: HashMap<Vec<Key>, usize> = HashMap::with_capacity(self.rows.len());
        let mut scratch = Vec::with_capacity(self.arity());
        for row in &self.rows {
            Relation::row_key_into(row, &mut scratch);
            match m.get_mut(scratch.as_slice()) {
                Some(n) => *n += 1,
                None => {
                    m.insert(scratch.clone(), 1);
                }
            }
        }
        m
    }

    /// Bag equality: same rows with same multiplicities (order-insensitive).
    pub fn bag_eq(&self, other: &Relation) -> bool {
        self.rows.len() == other.rows.len() && self.bag() == other.bag()
    }

    /// Set equality: same distinct rows (multiplicities ignored).
    pub fn set_eq(&self, other: &Relation) -> bool {
        self.key_set() == other.key_set()
    }

    /// Distinct row keys (scratch-probed: one allocation per distinct row).
    fn key_set(&self) -> std::collections::HashSet<Vec<Key>> {
        let mut set: std::collections::HashSet<Vec<Key>> =
            std::collections::HashSet::with_capacity(self.rows.len());
        let mut scratch = Vec::with_capacity(self.arity());
        for row in &self.rows {
            Relation::row_key_into(row, &mut scratch);
            if !set.contains(scratch.as_slice()) {
                set.insert(scratch.clone());
            }
        }
        set
    }

    /// Bag union (concatenation).
    pub fn union(&self, other: &Relation) -> Relation {
        let mut out = self.clone();
        out.rows.extend(other.rows.iter().cloned());
        out
    }

    /// Rows of `self` not present in `other` (set difference by key).
    pub fn minus_set(&self, other: &Relation) -> Relation {
        let other_keys = other.key_set();
        let mut out = Relation::new(self.name.clone(), &[]);
        out.schema = self.schema.clone();
        let mut scratch = Vec::with_capacity(self.arity());
        for row in &self.rows {
            Relation::row_key_into(row, &mut scratch);
            if !other_keys.contains(scratch.as_slice()) {
                out.rows.push(row.clone());
            }
        }
        out
    }
}

/// A value's hash key for equi-join purposes, or `None` when the value can
/// never satisfy an equality predicate. `Value::key()` normalizes integral
/// floats to integer keys, so key equality coincides exactly with
/// `compare(..) == Equal` for the remaining values. Delegates to
/// [`Value::join_key`] — the semantics live in `arc-core` so the
/// statistics subsystem counts with the same rule.
pub fn join_key(v: &Value) -> Option<Key> {
    v.join_key()
}

// The parallel executor shares relations (and the keys inside hash
// indexes) read-only across pool workers; keep that a compile-time fact
// so a future field can't silently break `ARC_THREADS > 1`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Relation>();
    assert_send_sync::<Tuple>();
    assert_send_sync::<Value>();
    assert_send_sync::<Key>();
};

impl fmt::Display for Relation {
    /// Render as an aligned text table (used by examples and EXPERIMENTS.md).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.schema.iter().map(|s| s.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .sorted_rows()
            .iter()
            .map(|row| row.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        writeln!(f, "{}:", self.name)?;
        let header: Vec<String> = self
            .schema
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{s:width$}", width = widths[i]))
            .collect();
        writeln!(f, "  {}", header.join(" | "))?;
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        writeln!(f, "  {}", rule.join("-+-"))?;
        for row in &rendered {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:width$}", width = widths[i]))
                .collect();
            writeln!(f, "  {}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(rows: &[&[i64]]) -> Relation {
        Relation::from_ints("R", &["A", "B"], rows)
    }

    #[test]
    fn dedup_preserves_first_occurrence_order() {
        let rel = r(&[&[1, 2], &[3, 4], &[1, 2]]);
        let d = rel.deduped();
        assert_eq!(d.len(), 2);
        assert_eq!(d.rows[0], vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn bag_and_set_equality_differ() {
        let a = r(&[&[1, 2], &[1, 2]]);
        let b = r(&[&[1, 2]]);
        assert!(!a.bag_eq(&b));
        assert!(a.set_eq(&b));
    }

    #[test]
    fn nulls_group_in_keys() {
        let mut rel = Relation::new("R", &["A"]);
        rel.push(vec![Value::Null]);
        rel.push(vec![Value::Null]);
        assert_eq!(rel.deduped().len(), 1);
    }

    #[test]
    fn minus_set_removes_matches() {
        let a = r(&[&[1, 2], &[3, 4]]);
        let b = r(&[&[1, 2]]);
        let d = a.minus_set(&b);
        assert_eq!(d.len(), 1);
        assert_eq!(d.rows[0], vec![Value::Int(3), Value::Int(4)]);
    }

    #[test]
    fn display_renders_table() {
        let rel = r(&[&[1, 2]]);
        let s = rel.to_string();
        assert!(s.contains("A | B"));
        assert!(s.contains("1 | 2"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut rel = Relation::new("R", &["A", "B"]);
        rel.push(vec![Value::Int(1)]);
    }

    #[test]
    fn columns_cache_rebuilds_after_growth() {
        let mut rel = r(&[&[1, 2], &[3, 4]]);
        let first = rel.columns();
        assert_eq!(first.rows(), 2);
        assert!(
            Arc::ptr_eq(&first, &rel.columns()),
            "stable while unchanged"
        );
        rel.push(vec![Value::Int(5), Value::Int(6)]);
        let second = rel.columns();
        assert_eq!(second.rows(), 3);
        assert_eq!(second.value(2, 0), Value::Int(5));
    }

    #[test]
    fn poisoned_column_cache_recovers_by_re_encoding() {
        let rel = Arc::new(r(&[&[1, 2], &[3, 4]]));
        let _ = rel.columns();
        let clone = Arc::clone(&rel);
        std::thread::spawn(move || {
            let _guard = clone.columns.0.lock().unwrap();
            panic!("worker panicked mid-encode");
        })
        .join()
        .unwrap_err();
        assert!(rel.columns.0.is_poisoned());
        // Recovery drops the possibly-partial view and re-encodes.
        let cols = rel.columns();
        assert_eq!(cols.rows(), 2);
        assert_eq!(cols.value(1, 0), Value::Int(3));
        assert!(!rel.columns.0.is_poisoned(), "recovery clears the poison");
    }

    #[test]
    fn poisoned_index_cache_recovers_by_rebuilding() {
        let rel = Arc::new(r(&[&[2, 20], &[1, 10]]));
        let before = rel.ordered_index(&[0]);
        let clone = Arc::clone(&rel);
        std::thread::spawn(move || {
            let _guard = clone.indexes.0.lock().unwrap();
            panic!("worker panicked mid-build");
        })
        .join()
        .unwrap_err();
        assert!(rel.indexes.0.is_poisoned());
        let after = rel.ordered_index(&[0]);
        assert!(
            !Arc::ptr_eq(&before, &after),
            "poisoned entries are evicted, not reused"
        );
        assert_eq!(after.rows(), before.rows());
        assert!(!rel.indexes.0.is_poisoned(), "recovery clears the poison");
    }

    #[test]
    fn clone_re_encodes_columns_independently() {
        let rel = r(&[&[1, 2]]);
        let before = rel.columns();
        let cloned = rel.clone();
        assert!(!Arc::ptr_eq(&before, &cloned.columns()));
        assert_eq!(rel, cloned, "cache never affects equality");
    }

    #[test]
    fn sorted_rows_are_deterministic() {
        let a = r(&[&[3, 4], &[1, 2]]);
        let b = r(&[&[1, 2], &[3, 4]]);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }
}
