//! Engine unit tests: every semantic claim of the paper, checked on the
//! paper's own instances (larger randomized checks live in the
//! workspace-level integration tests and `arc-analysis`).

use crate::{Catalog, Engine, EvalError, FixpointStrategy, Relation};
use arc_core::conventions::Conventions;
use arc_core::dsl::*;
use arc_core::value::{Truth, Value};
use arc_core::{Collection, Program};

fn ints(name: &str, schema: &[&str], rows: &[&[i64]]) -> Relation {
    Relation::from_ints(name, schema, rows)
}

fn sorted(rel: &Relation) -> Vec<Vec<Value>> {
    rel.sorted_rows()
}

fn row(vals: &[i64]) -> Vec<Value> {
    vals.iter().map(|v| Value::Int(*v)).collect()
}

// ---------------------------------------------------------------------------
// §2.1 — Eq (1): the running TRC example
// ---------------------------------------------------------------------------

fn eq1() -> Collection {
    collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R"), bind("s", "S")],
            and([
                assign("Q", "A", col("r", "A")),
                eq(col("r", "B"), col("s", "B")),
                eq(col("s", "C"), int(0)),
            ]),
        ),
    )
}

#[test]
fn eq1_join_and_selection() {
    let catalog = Catalog::new()
        .with(ints("R", &["A", "B"], &[&[1, 10], &[2, 20], &[3, 30]]))
        .with(ints("S", &["B", "C"], &[&[10, 0], &[20, 1], &[30, 0]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&eq1())
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1]), row(&[3])]);
}

#[test]
fn constant_singleton_collection() {
    // A "virtual unary table" (§2.11): {L(v) | L.v = 11}.
    let c = collection("L", &["v"], assign("L", "v", int(11)));
    let catalog = Catalog::new();
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&c)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[11])]);
}

// ---------------------------------------------------------------------------
// §2.4 — Eq (2): orthogonal nesting = lateral join
// ---------------------------------------------------------------------------

#[test]
fn eq2_lateral_nesting() {
    // {Q(A,B) | ∃x∈X, z∈{Z(B) | ∃y∈Y[Z.B=y.A ∧ x.A<y.A]} [Q.A=x.A ∧ Q.B=z.B]}
    let inner = collection(
        "Z",
        &["B"],
        exists(
            &[bind("y", "Y")],
            and([
                assign("Z", "B", col("y", "A")),
                lt(col("x", "A"), col("y", "A")),
            ]),
        ),
    );
    let q = collection(
        "Q",
        &["A", "B"],
        exists(
            &[bind("x", "X"), bind_coll("z", inner)],
            and([
                assign("Q", "A", col("x", "A")),
                assign("Q", "B", col("z", "B")),
            ]),
        ),
    );
    let catalog = Catalog::new()
        .with(ints("X", &["A"], &[&[1], &[2]]))
        .with(ints("Y", &["A"], &[&[2], &[3]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1, 2]), row(&[1, 3]), row(&[2, 3])]);
}

#[test]
fn lateral_sibling_reference_in_same_quantifier() {
    // Fig 5c shape: the nested collection references a sibling binding.
    let q = foi_query();
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[&[1, 10], &[1, 20], &[2, 5]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1, 30]), row(&[2, 5])]);
}

// ---------------------------------------------------------------------------
// §2.5 — grouping and aggregates: FIO (Eq 3) vs FOI (Eq 7)
// ---------------------------------------------------------------------------

fn fio_query() -> Collection {
    // Eq (3): {Q(A,sm) | ∃r∈R, γ r.A [Q.A=r.A ∧ Q.sm=sum(r.B)]}
    collection(
        "Q",
        &["A", "sm"],
        quant(
            &[bind("r", "R")],
            group(&[("r", "A")]),
            None,
            and([
                assign("Q", "A", col("r", "A")),
                assign_agg("Q", "sm", sum(col("r", "B"))),
            ]),
        ),
    )
}

fn foi_query() -> Collection {
    // Eq (7): {Q(A,sm) | ∃r∈R, x∈{X(sm) | ∃r2∈R, γ∅ [r2.A=r.A ∧ X.sm=sum(r2.B)]}
    //                     [Q.A=r.A ∧ Q.sm=x.sm]}
    let x = collection(
        "X",
        &["sm"],
        quant(
            &[bind("r2", "R")],
            group_all(),
            None,
            and([
                eq(col("r2", "A"), col("r", "A")),
                assign_agg("X", "sm", sum(col("r2", "B"))),
            ]),
        ),
    );
    collection(
        "Q",
        &["A", "sm"],
        exists(
            &[bind("r", "R"), bind_coll("x", x)],
            and([
                assign("Q", "A", col("r", "A")),
                assign("Q", "sm", col("x", "sm")),
            ]),
        ),
    )
}

#[test]
fn fio_grouped_sum() {
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[&[1, 10], &[1, 20], &[2, 5]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&fio_query())
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1, 30]), row(&[2, 5])]);
}

#[test]
fn fio_and_foi_agree_on_sets() {
    // Fig 5's point: the FOI pattern computes the same answer as FIO
    // (under set semantics / DISTINCT).
    let catalog = Catalog::new().with(ints(
        "R",
        &["A", "B"],
        &[&[1, 10], &[1, 20], &[2, 5], &[3, 7], &[3, 8]],
    ));
    let engine = Engine::new(&catalog, Conventions::set());
    let fio = engine.eval_collection(&fio_query()).unwrap();
    let foi = engine.eval_collection(&foi_query()).unwrap();
    assert!(fio.set_eq(&foi));
}

#[test]
fn empty_gamma_produces_one_group_over_empty_join() {
    // SQL: SELECT count(*) FROM empty → one row with 0. γ∅ likewise (§2.5).
    let q = collection(
        "Q",
        &["c"],
        quant(
            &[bind("r", "R")],
            group_all(),
            None,
            and([assign_agg("Q", "c", count(col("r", "A")))]),
        ),
    );
    let catalog = Catalog::new().with(ints("R", &["A"], &[]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[0])]);
}

#[test]
fn keyed_grouping_over_empty_input_produces_no_groups() {
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&fio_query())
        .unwrap();
    assert!(out.is_empty());
}

#[test]
fn multiple_aggregates_share_one_scope() {
    // Fig 6 / Eq (8): average salary per department paying total > 100.
    let x = collection(
        "X",
        &["dept", "av", "sm"],
        quant(
            &[bind("r", "R"), bind("s", "S")],
            group(&[("r", "dept")]),
            None,
            and([
                eq(col("r", "empl"), col("s", "empl")),
                assign("X", "dept", col("r", "dept")),
                assign_agg("X", "av", avg(col("s", "sal"))),
                assign_agg("X", "sm", sum(col("s", "sal"))),
            ]),
        ),
    );
    let q = collection(
        "Q",
        &["dept", "av"],
        exists(
            &[bind_coll("x", x)],
            and([
                assign("Q", "dept", col("x", "dept")),
                assign("Q", "av", col("x", "av")),
                gt(col("x", "sm"), int(100)),
            ]),
        ),
    );
    // d1: empl 1 (50) + empl 2 (60) → sum 110 > 100, avg 55.
    // d2: empl 3 (40) → sum 40, filtered by HAVING.
    let catalog = Catalog::new()
        .with(ints("R", &["empl", "dept"], &[&[1, 1], &[2, 1], &[3, 2]]))
        .with(ints("S", &["empl", "sal"], &[&[1, 50], &[2, 60], &[3, 40]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(1));
    assert_eq!(out.rows[0][1], Value::Float(55.0));
}

#[test]
fn hella_pattern_eq10_same_answer() {
    // Eq (10): per-aggregate scopes (Klug/Hella), FOI — same rows as Eq (8).
    let x = collection(
        "X",
        &["av"],
        quant(
            &[bind("r1", "R"), bind("s1", "S")],
            group(&[("r1", "dept")]),
            None,
            and([
                eq(col("r1", "dept"), col("r3", "dept")),
                eq(col("r1", "empl"), col("s1", "empl")),
                assign_agg("X", "av", avg(col("s1", "sal"))),
            ]),
        ),
    );
    let y = collection(
        "Y",
        &["sm"],
        quant(
            &[bind("r2", "R"), bind("s2", "S")],
            group(&[("r2", "dept")]),
            None,
            and([
                eq(col("r2", "dept"), col("r3", "dept")),
                eq(col("r2", "empl"), col("s2", "empl")),
                assign_agg("Y", "sm", sum(col("s2", "sal"))),
            ]),
        ),
    );
    let q = collection(
        "Q",
        &["dept", "av"],
        exists(
            &[
                bind("r3", "R"),
                bind("s3", "S"),
                bind_coll("x", x),
                bind_coll("y", y),
            ],
            and([
                assign("Q", "dept", col("r3", "dept")),
                assign("Q", "av", col("x", "av")),
                eq(col("r3", "empl"), col("s3", "empl")),
                gt(col("y", "sm"), int(100)),
            ]),
        ),
    );
    let catalog = Catalog::new()
        .with(ints("R", &["empl", "dept"], &[&[1, 1], &[2, 1], &[3, 2]]))
        .with(ints("S", &["empl", "sal"], &[&[1, 50], &[2, 60], &[3, 40]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::Int(1));
    assert_eq!(out.rows[0][1], Value::Float(55.0));
}

#[test]
fn distinct_aggregate_deduplicates_inputs() {
    let q = collection(
        "Q",
        &["c", "cd"],
        quant(
            &[bind("r", "R")],
            group_all(),
            None,
            and([
                assign_agg("Q", "c", count(col("r", "B"))),
                assign_agg(
                    "Q",
                    "cd",
                    agg_distinct(arc_core::ast::AggFunc::Count, col("r", "B")),
                ),
            ]),
        ),
    );
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[&[1, 7], &[2, 7], &[3, 8]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[3, 2])]);
}

#[test]
fn min_max_and_avg() {
    let q = collection(
        "Q",
        &["mn", "mx", "av"],
        quant(
            &[bind("r", "R")],
            group_all(),
            None,
            and([
                assign_agg("Q", "mn", min(col("r", "A"))),
                assign_agg("Q", "mx", max(col("r", "A"))),
                assign_agg("Q", "av", avg(col("r", "A"))),
            ]),
        ),
    );
    let catalog = Catalog::new().with(ints("R", &["A"], &[&[2], &[4], &[9]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(out.rows[0][0], Value::Int(2));
    assert_eq!(out.rows[0][1], Value::Int(9));
    assert_eq!(out.rows[0][2], Value::Float(5.0));
}

#[test]
fn aggregates_skip_nulls() {
    // SQL semantics: NULL inputs are ignored; count(*) counts rows.
    let q = collection(
        "Q",
        &["c", "cs", "sm"],
        quant(
            &[bind("r", "R")],
            group_all(),
            None,
            and([
                assign_agg("Q", "c", count(col("r", "A"))),
                assign_agg("Q", "cs", count_star()),
                assign_agg("Q", "sm", sum(col("r", "A"))),
            ]),
        ),
    );
    let mut r = Relation::new("R", &["A"]);
    r.push(vec![Value::Int(5)]);
    r.push(vec![Value::Null]);
    let catalog = Catalog::new().with(r);
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1, 2, 5])]);
}

// ---------------------------------------------------------------------------
// §2.6 — conventions: Eq (15), sum over empty
// ---------------------------------------------------------------------------

fn eq15_query() -> Collection {
    // Soufflé: Q(ak, sm) :- R(ak, _), sm = sum b : {S(a, b), a < ak}.
    let x = collection(
        "X",
        &["sm"],
        quant(
            &[bind("s", "S")],
            group_all(),
            None,
            and([
                lt(col("s", "A"), col("r", "A")),
                assign_agg("X", "sm", sum(col("s", "B"))),
            ]),
        ),
    );
    collection(
        "Q",
        &["ak", "sm"],
        exists(
            &[bind("r", "R"), bind_coll("x", x)],
            and([
                assign("Q", "ak", col("r", "A")),
                assign("Q", "sm", col("x", "sm")),
            ]),
        ),
    )
}

#[test]
fn eq15_souffle_derives_zero_sql_derives_null() {
    let catalog = Catalog::new()
        .with(ints("R", &["A", "B"], &[&[1, 2]]))
        .with(ints("S", &["A", "B"], &[]));

    let souffle = Engine::new(&catalog, Conventions::souffle())
        .eval_collection(&eq15_query())
        .unwrap();
    assert_eq!(sorted(&souffle), vec![row(&[1, 0])]);

    let sql = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&eq15_query())
        .unwrap();
    assert_eq!(sql.len(), 1);
    assert_eq!(sql.rows[0][0], Value::Int(1));
    assert_eq!(sql.rows[0][1], Value::Null);
}

// ---------------------------------------------------------------------------
// §2.7 — set vs. bag: nesting/unnesting, deduplication
// ---------------------------------------------------------------------------

fn nested_semijoin() -> Collection {
    collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R")],
            and([exists(
                &[bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            )]),
        ),
    )
}

fn unnested_join() -> Collection {
    collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R"), bind("s", "S")],
            and([
                assign("Q", "A", col("r", "A")),
                eq(col("r", "B"), col("s", "B")),
            ]),
        ),
    )
}

#[test]
fn unnesting_valid_under_set_semantics() {
    let catalog = Catalog::new()
        .with(ints("R", &["A", "B"], &[&[1, 7]]))
        .with(ints("S", &["B"], &[&[7], &[7]]));
    let engine = Engine::new(&catalog, Conventions::set());
    let nested = engine.eval_collection(&nested_semijoin()).unwrap();
    let unnested = engine.eval_collection(&unnested_join()).unwrap();
    assert!(nested.bag_eq(&unnested));
    assert_eq!(nested.len(), 1);
}

#[test]
fn unnesting_invalid_under_bag_semantics() {
    // The nested form is a semijoin (once per r); the unnested form
    // multiplies by matching S rows (§2.7).
    let catalog = Catalog::new()
        .with(ints("R", &["A", "B"], &[&[1, 7]]))
        .with(ints("S", &["B"], &[&[7], &[7]]));
    let engine = Engine::new(&catalog, Conventions::sql());
    let nested = engine.eval_collection(&nested_semijoin()).unwrap();
    let unnested = engine.eval_collection(&unnested_join()).unwrap();
    assert_eq!(nested.len(), 1);
    assert_eq!(unnested.len(), 2);
}

#[test]
fn deduplication_is_grouping_on_all_attrs() {
    // {Q(A,B) | ∃r∈R, γ r.A,r.B [Q.A=r.A ∧ Q.B=r.B]} = DISTINCT (§2.7).
    let q = collection(
        "Q",
        &["A", "B"],
        quant(
            &[bind("r", "R")],
            group(&[("r", "A"), ("r", "B")]),
            None,
            and([
                assign("Q", "A", col("r", "A")),
                assign("Q", "B", col("r", "B")),
            ]),
        ),
    );
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[&[1, 2], &[1, 2], &[3, 4]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1, 2]), row(&[3, 4])]);
}

// ---------------------------------------------------------------------------
// §2.8/§2.9 — disjunction, union, recursion
// ---------------------------------------------------------------------------

fn ancestor_program() -> Program {
    // Eq (16).
    let anc = collection(
        "A",
        &["s", "t"],
        or([
            exists(
                &[bind("p", "P")],
                and([
                    assign("A", "s", col("p", "s")),
                    assign("A", "t", col("p", "t")),
                ]),
            ),
            exists(
                &[bind("p", "P"), bind("a2", "A")],
                and([
                    assign("A", "s", col("p", "s")),
                    eq(col("p", "t"), col("a2", "s")),
                    assign("A", "t", col("a2", "t")),
                ]),
            ),
        ]),
    );
    Program::default().with_definition(define(anc))
}

#[test]
fn recursion_transitive_closure() {
    // Chain 1→2→3→4.
    let catalog = Catalog::new().with(ints("P", &["s", "t"], &[&[1, 2], &[2, 3], &[3, 4]]));
    let engine = Engine::new(&catalog, Conventions::set());
    let out = engine.eval_program(&ancestor_program()).unwrap();
    let anc = &out.defined["A"];
    assert_eq!(anc.len(), 6); // (1,2)(1,3)(1,4)(2,3)(2,4)(3,4)
}

#[test]
fn naive_and_semi_naive_agree() {
    let mut rows: Vec<Vec<i64>> = Vec::new();
    for i in 0..30 {
        rows.push(vec![i, i + 1]);
    }
    rows.push(vec![5, 0]); // introduce a cycle
    let rows_ref: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
    let catalog = Catalog::new().with(ints("P", &["s", "t"], &rows_ref));
    let engine = Engine::new(&catalog, Conventions::set());
    let naive = engine
        .eval_program_with(&ancestor_program(), FixpointStrategy::Naive)
        .unwrap();
    let semi = engine
        .eval_program_with(&ancestor_program(), FixpointStrategy::SemiNaive)
        .unwrap();
    assert!(naive.defined["A"].set_eq(&semi.defined["A"]));
    assert!(!naive.defined["A"].is_empty());
}

#[test]
fn recursion_under_bag_rejected() {
    let catalog = Catalog::new().with(ints("P", &["s", "t"], &[&[1, 2]]));
    let engine = Engine::new(&catalog, Conventions::sql());
    let err = engine.eval_program(&ancestor_program()).unwrap_err();
    assert!(matches!(err, EvalError::RecursionUnderBag { .. }));
}

#[test]
fn recursion_through_negation_rejected() {
    // A(s,t) :- P(s,t), ¬A(t,s) — not stratifiable.
    let bad = collection(
        "A",
        &["s", "t"],
        exists(
            &[bind("p", "P")],
            and([
                assign("A", "s", col("p", "s")),
                assign("A", "t", col("p", "t")),
                not(exists(
                    &[bind("a2", "A")],
                    and([
                        eq(col("a2", "s"), col("p", "t")),
                        eq(col("a2", "t"), col("p", "s")),
                    ]),
                )),
            ]),
        ),
    );
    let catalog = Catalog::new().with(ints("P", &["s", "t"], &[&[1, 2]]));
    let engine = Engine::new(&catalog, Conventions::set());
    let err = engine
        .eval_program(&Program::default().with_definition(define(bad)))
        .unwrap_err();
    assert!(matches!(err, EvalError::NotStratifiable { .. }));
}

#[test]
fn stratified_negation_through_definitions_works() {
    // D1 = P; query uses ¬D1 — different stratum, fine.
    let d1 = collection(
        "D",
        &["s"],
        exists(&[bind("p", "P")], and([assign("D", "s", col("p", "s"))])),
    );
    let q = collection(
        "Q",
        &["s"],
        exists(
            &[bind("u", "U")],
            and([
                assign("Q", "s", col("u", "s")),
                not(exists(
                    &[bind("d", "D")],
                    and([eq(col("d", "s"), col("u", "s"))]),
                )),
            ]),
        ),
    );
    let catalog = Catalog::new()
        .with(ints("P", &["s", "t"], &[&[1, 2]]))
        .with(ints("U", &["s"], &[&[1], &[9]]));
    let mut p = Program::default().with_definition(define(d1));
    p.query = Some(q);
    let out = Engine::new(&catalog, Conventions::set())
        .eval_program(&p)
        .unwrap();
    assert_eq!(sorted(out.query.as_ref().unwrap()), vec![row(&[9])]);
}

// ---------------------------------------------------------------------------
// §2.10 — null values and NOT IN (Eq 17)
// ---------------------------------------------------------------------------

fn not_in_query() -> Collection {
    collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R")],
            and([
                assign("Q", "A", col("r", "A")),
                not(exists(
                    &[bind("s", "S")],
                    or([
                        eq(col("s", "A"), col("r", "A")),
                        is_null(col("s", "A")),
                        is_null(col("r", "A")),
                    ]),
                )),
            ]),
        ),
    )
}

#[test]
fn not_in_with_null_in_s_returns_empty() {
    let mut s = Relation::new("S", &["A"]);
    s.push(vec![Value::Int(1)]);
    s.push(vec![Value::Null]);
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[1], &[3]]))
        .with(s);
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&not_in_query())
        .unwrap();
    assert!(out.is_empty());
}

#[test]
fn not_in_without_nulls_behaves_as_difference() {
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[1], &[3]]))
        .with(ints("S", &["A"], &[&[1]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&not_in_query())
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[3])]);
}

// ---------------------------------------------------------------------------
// §2.11 — outer joins (Eq 18 / Fig 12)
// ---------------------------------------------------------------------------

#[test]
fn fig12_left_join_with_literal_leaf() {
    // {Q(m,n) | ∃r∈R, s∈S, left(r, inner(11, s))
    //           [Q.m=r.m ∧ Q.n=s.n ∧ r.y=s.y ∧ r.h=11]}
    let q = collection(
        "Q",
        &["m", "n"],
        quant(
            &[bind("r", "R"), bind("s", "S")],
            None,
            Some(jleft(jvar("r"), jinner([jlit(11i64), jvar("s")]))),
            and([
                assign("Q", "m", col("r", "m")),
                assign("Q", "n", col("s", "n")),
                eq(col("r", "y"), col("s", "y")),
                eq(col("r", "h"), int(11)),
            ]),
        ),
    );
    let catalog = Catalog::new()
        .with(ints("R", &["m", "y", "h"], &[&[1, 10, 11], &[2, 20, 99]]))
        .with(ints("S", &["y", "n", "q"], &[&[10, 5, 0], &[30, 6, 0]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    let rows = sorted(&out);
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0], vec![Value::Int(1), Value::Int(5)]);
    assert_eq!(rows[1], vec![Value::Int(2), Value::Null]);
}

#[test]
fn full_outer_join_pads_both_sides() {
    let q = collection(
        "Q",
        &["a", "b"],
        quant(
            &[bind("r", "R"), bind("s", "S")],
            None,
            Some(jfull(jvar("r"), jvar("s"))),
            and([
                assign("Q", "a", col("r", "A")),
                assign("Q", "b", col("s", "B")),
                eq(col("r", "A"), col("s", "B")),
            ]),
        ),
    );
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[1], &[2]]))
        .with(ints("S", &["B"], &[&[2], &[3]]));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    let rows = sorted(&out);
    // (1, null), (2, 2), (null, 3) — Null sorts first.
    assert_eq!(rows.len(), 3);
    assert_eq!(rows[0], vec![Value::Null, Value::Int(3)]);
    assert_eq!(rows[1], vec![Value::Int(1), Value::Null]);
    assert_eq!(rows[2], vec![Value::Int(2), Value::Int(2)]);
}

// ---------------------------------------------------------------------------
// §2.12 / Fig 13 — head aggregates: lateral is right, LEFT JOIN+GROUP BY
// is wrong under duplicates
// ---------------------------------------------------------------------------

fn fig13_lateral() -> Collection {
    // Fig 13b/13d: sum of S.B where S.A < R.A, once per R tuple.
    let x = collection(
        "X",
        &["sm"],
        quant(
            &[bind("s", "S")],
            group_all(),
            None,
            and([
                lt(col("s", "A"), col("r", "A")),
                assign_agg("X", "sm", sum(col("s", "B"))),
            ]),
        ),
    );
    collection(
        "Q",
        &["A", "sm"],
        exists(
            &[bind("r", "R"), bind_coll("x", x)],
            and([
                assign("Q", "A", col("r", "A")),
                assign("Q", "sm", col("x", "sm")),
            ]),
        ),
    )
}

fn fig13_left_join_group_by() -> Collection {
    // Fig 13c: groups collapse duplicate R.A values — the counterexample.
    collection(
        "Q",
        &["A", "sm"],
        quant(
            &[bind("r", "R"), bind("s", "S")],
            group(&[("r", "A")]),
            Some(jleft(jvar("r"), jvar("s"))),
            and([
                assign("Q", "A", col("r", "A")),
                assign_agg("Q", "sm", sum(col("s", "B"))),
                lt(col("s", "A"), col("r", "A")),
            ]),
        ),
    )
}

#[test]
fn fig13_rewrites_agree_without_duplicates() {
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[3], &[5]]))
        .with(ints("S", &["A", "B"], &[&[1, 10], &[2, 20], &[4, 40]]));
    let engine = Engine::new(&catalog, Conventions::sql());
    let lateral = engine.eval_collection(&fig13_lateral()).unwrap();
    let leftjoin = engine.eval_collection(&fig13_left_join_group_by()).unwrap();
    assert!(lateral.bag_eq(&leftjoin));
    assert_eq!(sorted(&lateral), vec![row(&[3, 30]), row(&[5, 70])]);
}

#[test]
fn fig13_left_join_group_by_wrong_under_duplicates() {
    let catalog = Catalog::new()
        .with(ints("R", &["A"], &[&[3], &[3], &[5]])) // duplicate 3
        .with(ints("S", &["A", "B"], &[&[1, 10], &[2, 20], &[4, 40]]));
    let engine = Engine::new(&catalog, Conventions::sql());
    let lateral = engine.eval_collection(&fig13_lateral()).unwrap();
    let leftjoin = engine.eval_collection(&fig13_left_join_group_by()).unwrap();
    // Lateral: once per tuple of R → (3,30) ×2, (5,70).
    assert_eq!(
        sorted(&lateral),
        vec![row(&[3, 30]), row(&[3, 30]), row(&[5, 70])]
    );
    // LEFT JOIN + GROUP BY: duplicates collapse AND the sum doubles.
    assert_eq!(sorted(&leftjoin), vec![row(&[3, 60]), row(&[5, 70])]);
    assert!(!lateral.bag_eq(&leftjoin));
}

// ---------------------------------------------------------------------------
// Fig 9 — boolean sentences (Eqs 13, 14)
// ---------------------------------------------------------------------------

#[test]
fn sentences_with_aggregation_comparisons() {
    let catalog = Catalog::new()
        .with(ints("R", &["id", "q"], &[&[1, 2]]))
        .with(ints("S", &["id", "d"], &[&[1, 5], &[1, 6]]));
    let engine = Engine::new(&catalog, Conventions::sql());

    // (13): ∃r∈R[∃s∈S, γ∅ [r.id=s.id ∧ r.q ≤ count(s.d)]]
    let e13 = exists(
        &[bind("r", "R")],
        and([quant(
            &[bind("s", "S")],
            group_all(),
            None,
            and([
                eq(col("r", "id"), col("s", "id")),
                le(col("r", "q"), count(col("s", "d"))),
            ]),
        )]),
    );
    assert_eq!(engine.eval_sentence(&e13).unwrap(), Truth::True);

    // (14): ¬∃r∈R[∃s∈S, γ∅ [r.id=s.id ∧ r.q > count(s.d)]]
    let e14 = not(exists(
        &[bind("r", "R")],
        and([quant(
            &[bind("s", "S")],
            group_all(),
            None,
            and([
                eq(col("r", "id"), col("s", "id")),
                gt(col("r", "q"), count(col("s", "d"))),
            ]),
        )]),
    ));
    assert_eq!(engine.eval_sentence(&e14).unwrap(), Truth::True);

    // Flip the instance: r.q = 3 > count = 2.
    let catalog2 = Catalog::new()
        .with(ints("R", &["id", "q"], &[&[1, 3]]))
        .with(ints("S", &["id", "d"], &[&[1, 5], &[1, 6]]));
    let engine2 = Engine::new(&catalog2, Conventions::sql());
    assert_eq!(engine2.eval_sentence(&e13).unwrap(), Truth::False);
    assert_eq!(engine2.eval_sentence(&e14).unwrap(), Truth::False);
}

// ---------------------------------------------------------------------------
// §3.2 — the count bug (Eqs 27–29)
// ---------------------------------------------------------------------------

fn count_bug_v1() -> Collection {
    collection(
        "Q",
        &["id"],
        exists(
            &[bind("r", "R")],
            and([
                assign("Q", "id", col("r", "id")),
                quant(
                    &[bind("s", "S")],
                    group_all(),
                    None,
                    and([
                        eq(col("r", "id"), col("s", "id")),
                        eq(col("r", "q"), count(col("s", "d"))),
                    ]),
                ),
            ]),
        ),
    )
}

fn count_bug_v2() -> Collection {
    let x = collection(
        "X",
        &["id", "ct"],
        quant(
            &[bind("s", "S")],
            group(&[("s", "id")]),
            None,
            and([
                assign("X", "id", col("s", "id")),
                assign_agg("X", "ct", count(col("s", "d"))),
            ]),
        ),
    );
    collection(
        "Q",
        &["id"],
        exists(
            &[bind("r", "R"), bind_coll("x", x)],
            and([
                assign("Q", "id", col("r", "id")),
                eq(col("r", "id"), col("x", "id")),
                eq(col("r", "q"), col("x", "ct")),
            ]),
        ),
    )
}

fn count_bug_v3() -> Collection {
    let x = collection(
        "X",
        &["id", "ct"],
        quant(
            &[bind("r2", "R"), bind("s", "S")],
            group(&[("r2", "id")]),
            Some(jleft(jvar("r2"), jvar("s"))),
            and([
                assign("X", "id", col("r2", "id")),
                assign_agg("X", "ct", count(col("s", "d"))),
                eq(col("r2", "id"), col("s", "id")),
            ]),
        ),
    );
    collection(
        "Q",
        &["id"],
        exists(
            &[bind("r", "R"), bind_coll("x", x)],
            and([
                assign("Q", "id", col("r", "id")),
                eq(col("r", "id"), col("x", "id")),
                eq(col("r", "q"), col("x", "ct")),
            ]),
        ),
    )
}

#[test]
fn count_bug_on_paper_instance() {
    // R(9, 0), S empty: v1 returns 9; v2 returns nothing; v3 returns 9.
    let catalog = Catalog::new()
        .with(ints("R", &["id", "q"], &[&[9, 0]]))
        .with(ints("S", &["id", "d"], &[]));
    let engine = Engine::new(&catalog, Conventions::sql());
    let v1 = engine.eval_collection(&count_bug_v1()).unwrap();
    let v2 = engine.eval_collection(&count_bug_v2()).unwrap();
    let v3 = engine.eval_collection(&count_bug_v3()).unwrap();
    assert_eq!(sorted(&v1), vec![row(&[9])]);
    assert!(v2.is_empty());
    assert_eq!(sorted(&v3), vec![row(&[9])]);
}

#[test]
fn count_bug_versions_agree_when_every_id_has_rows() {
    let catalog = Catalog::new()
        .with(ints("R", &["id", "q"], &[&[1, 2], &[2, 1]]))
        .with(ints("S", &["id", "d"], &[&[1, 10], &[1, 11], &[2, 20]]));
    let engine = Engine::new(&catalog, Conventions::sql());
    let v1 = engine.eval_collection(&count_bug_v1()).unwrap();
    let v2 = engine.eval_collection(&count_bug_v2()).unwrap();
    let v3 = engine.eval_collection(&count_bug_v3()).unwrap();
    assert!(v1.bag_eq(&v2));
    assert!(v1.bag_eq(&v3));
    assert_eq!(sorted(&v1), vec![row(&[1]), row(&[2])]);
}

// ---------------------------------------------------------------------------
// §2.13.1 — external relations (Eqs 19–21, Fig 15)
// ---------------------------------------------------------------------------

#[test]
fn eq19_arithmetic_inline() {
    // {Q(A) | ∃r∈R,s∈S,t∈T [Q.A=r.A ∧ r.B - s.B > t.B]}
    let q = collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R"), bind("s", "S"), bind("t", "T")],
            and([
                assign("Q", "A", col("r", "A")),
                gt(sub(col("r", "B"), col("s", "B")), col("t", "B")),
            ]),
        ),
    );
    let catalog = Catalog::new()
        .with(ints("R", &["A", "B"], &[&[1, 10], &[2, 5]]))
        .with(ints("S", &["B"], &[&[3]]))
        .with(ints("T", &["B"], &[&[5]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1])]);
}

#[test]
fn eq20_reified_minus() {
    // {Q(A) | ∃r,s,t, f∈Minus [Q.A=r.A ∧ f.left=r.B ∧ f.right=s.B ∧ f.out>t.B]}
    let q = collection(
        "Q",
        &["A"],
        exists(
            &[
                bind("r", "R"),
                bind("s", "S"),
                bind("t", "T"),
                bind("f", "Minus"),
            ],
            and([
                assign("Q", "A", col("r", "A")),
                eq(col("f", "left"), col("r", "B")),
                eq(col("f", "right"), col("s", "B")),
                gt(col("f", "out"), col("t", "B")),
            ]),
        ),
    );
    let catalog = Catalog::with_standard_externals()
        .with(ints("R", &["A", "B"], &[&[1, 10], &[2, 5]]))
        .with(ints("S", &["B"], &[&[3]]))
        .with(ints("T", &["B"], &[&[5]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1])]);
}

#[test]
fn eq21_equijoin_between_externals() {
    // Minus joined with Bigger: "-".out = ">".left (Fig 15e).
    let q = collection(
        "Q",
        &["A"],
        exists(
            &[
                bind("r", "R"),
                bind("s", "S"),
                bind("t", "T"),
                bind("f", "Minus"),
                bind("g", "Bigger"),
            ],
            and([
                assign("Q", "A", col("r", "A")),
                eq(col("f", "left"), col("r", "B")),
                eq(col("f", "right"), col("s", "B")),
                eq(col("f", "out"), col("g", "left")),
                eq(col("g", "right"), col("t", "B")),
            ]),
        ),
    );
    let catalog = Catalog::with_standard_externals()
        .with(ints("R", &["A", "B"], &[&[1, 10], &[2, 5]]))
        .with(ints("S", &["B"], &[&[3]]))
        .with(ints("T", &["B"], &[&[5]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1])]);
}

#[test]
fn backward_access_pattern_solves_operands() {
    // Add(x, 3, 5): the (right, out)-bound pattern computes left = 2.
    let q = collection(
        "Q",
        &["x"],
        exists(
            &[bind("f", "Add")],
            and([
                eq(col("f", "right"), int(3)),
                eq(col("f", "out"), int(5)),
                assign("Q", "x", col("f", "left")),
            ]),
        ),
    );
    let catalog = Catalog::with_standard_externals();
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[2])]);
}

#[test]
fn no_access_path_is_reported() {
    // Minus with only one operand bound: unsolvable.
    let q = collection(
        "Q",
        &["x"],
        exists(
            &[bind("f", "Minus")],
            and([
                eq(col("f", "left"), int(3)),
                assign("Q", "x", col("f", "out")),
            ]),
        ),
    );
    let catalog = Catalog::with_standard_externals();
    let err = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap_err();
    assert!(matches!(err, EvalError::NoAccessPath { .. }));
}

// ---------------------------------------------------------------------------
// §3.1 — matrix multiplication (Eq 26, Fig 20)
// ---------------------------------------------------------------------------

#[test]
fn matrix_multiplication_via_external_star() {
    let q = collection(
        "C",
        &["row", "col", "val"],
        quant(
            &[bind("a", "A"), bind("b", "B"), bind("f", "*")],
            group(&[("a", "row"), ("b", "col")]),
            None,
            and([
                assign("C", "row", col("a", "row")),
                assign("C", "col", col("b", "col")),
                eq(col("a", "col"), col("b", "row")),
                assign_agg("C", "val", sum(col("f", "out"))),
                eq(col("f", "$1"), col("a", "val")),
                eq(col("f", "$2"), col("b", "val")),
            ]),
        ),
    );
    // A = [[1,2],[3,4]], B = [[5,6],[7,8]] → C = [[19,22],[43,50]].
    let catalog = Catalog::with_standard_externals()
        .with(ints(
            "A",
            &["row", "col", "val"],
            &[&[0, 0, 1], &[0, 1, 2], &[1, 0, 3], &[1, 1, 4]],
        ))
        .with(ints(
            "B",
            &["row", "col", "val"],
            &[&[0, 0, 5], &[0, 1, 6], &[1, 0, 7], &[1, 1, 8]],
        ));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(
        sorted(&out),
        vec![
            row(&[0, 0, 19]),
            row(&[0, 1, 22]),
            row(&[1, 0, 43]),
            row(&[1, 1, 50]),
        ]
    );
}

// ---------------------------------------------------------------------------
// §2.13.2 — abstract relations (Eqs 22–24, Figs 16–19)
// ---------------------------------------------------------------------------

fn likes_catalog() -> Catalog {
    // a likes {1,2}; b likes {1}; c likes {1,2} → only b's set is unique.
    let mut l = Relation::new("L", &["d", "b"]);
    for (d, b) in [("a", 1), ("a", 2), ("b", 1), ("c", 1), ("c", 2)] {
        l.push(vec![Value::str(d), Value::Int(b)]);
    }
    Catalog::new().with(l)
}

fn unique_set_direct() -> Collection {
    // Eq (22), the relationally complete formulation.
    collection(
        "Q",
        &["d"],
        exists(
            &[bind("l1", "L")],
            and([
                assign("Q", "d", col("l1", "d")),
                not(exists(
                    &[bind("l2", "L")],
                    and([
                        ne(col("l2", "d"), col("l1", "d")),
                        not(exists(
                            &[bind("l3", "L")],
                            and([
                                eq(col("l3", "d"), col("l2", "d")),
                                not(exists(
                                    &[bind("l4", "L")],
                                    and([
                                        eq(col("l4", "b"), col("l3", "b")),
                                        eq(col("l4", "d"), col("l1", "d")),
                                    ]),
                                )),
                            ]),
                        )),
                        not(exists(
                            &[bind("l5", "L")],
                            and([
                                eq(col("l5", "d"), col("l1", "d")),
                                not(exists(
                                    &[bind("l6", "L")],
                                    and([
                                        eq(col("l6", "d"), col("l2", "d")),
                                        eq(col("l6", "b"), col("l5", "b")),
                                    ]),
                                )),
                            ]),
                        )),
                    ]),
                )),
            ]),
        ),
    )
}

fn unique_set_with_abstract_subset() -> Program {
    // Eq (23): abstract Subset(left, right).
    let subset = collection(
        "Subset",
        &["left", "right"],
        not(exists(
            &[bind("l3", "L")],
            and([
                eq(col("l3", "d"), col("Subset", "left")),
                not(exists(
                    &[bind("l4", "L")],
                    and([
                        eq(col("l4", "b"), col("l3", "b")),
                        eq(col("l4", "d"), col("Subset", "right")),
                    ]),
                )),
            ]),
        )),
    );
    // Eq (24): the query modularized through Subset.
    let q = collection(
        "Q",
        &["d"],
        exists(
            &[bind("l1", "L")],
            and([
                assign("Q", "d", col("l1", "d")),
                not(exists(
                    &[bind("l2", "L"), bind("s1", "Subset"), bind("s2", "Subset")],
                    and([
                        ne(col("l2", "d"), col("l1", "d")),
                        eq(col("s1", "left"), col("l1", "d")),
                        eq(col("s1", "right"), col("l2", "d")),
                        eq(col("s2", "left"), col("l2", "d")),
                        eq(col("s2", "right"), col("l1", "d")),
                    ]),
                )),
            ]),
        ),
    );
    let mut p = Program::default().with_definition(define(subset));
    p.query = Some(q);
    p
}

#[test]
fn unique_set_query_direct() {
    let catalog = likes_catalog();
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&unique_set_direct())
        .unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out.rows[0][0], Value::str("b"));
}

#[test]
fn unique_set_query_via_abstract_subset_matches_direct() {
    let catalog = likes_catalog();
    let engine = Engine::new(&catalog, Conventions::set());
    let direct = engine.eval_collection(&unique_set_direct()).unwrap();
    let modular = engine
        .eval_program(&unique_set_with_abstract_subset())
        .unwrap();
    assert!(direct.set_eq(modular.query.as_ref().unwrap()));
}

#[test]
fn abstract_relation_underdetermined_is_reported() {
    // Using Subset without equating both attributes.
    let subset = collection(
        "Subset",
        &["left", "right"],
        not(exists(
            &[bind("l3", "L")],
            and([
                eq(col("l3", "d"), col("Subset", "left")),
                not(exists(
                    &[bind("l4", "L")],
                    and([
                        eq(col("l4", "b"), col("l3", "b")),
                        eq(col("l4", "d"), col("Subset", "right")),
                    ]),
                )),
            ]),
        )),
    );
    let q = collection(
        "Q",
        &["d"],
        exists(
            &[bind("l1", "L"), bind("s1", "Subset")],
            and([
                assign("Q", "d", col("l1", "d")),
                eq(col("s1", "left"), col("l1", "d")),
                // s1.right never determined
            ]),
        ),
    );
    let mut p = Program::default().with_definition(define(subset));
    p.query = Some(q);
    let catalog = likes_catalog();
    let err = Engine::new(&catalog, Conventions::set())
        .eval_program(&p)
        .unwrap_err();
    assert!(matches!(err, EvalError::AbstractUnderdetermined { .. }));
}

// ---------------------------------------------------------------------------
// Error behaviour
// ---------------------------------------------------------------------------

#[test]
fn unknown_relation_error() {
    let q = collection(
        "Q",
        &["A"],
        exists(&[bind("r", "Nope")], and([assign("Q", "A", col("r", "A"))])),
    );
    let catalog = Catalog::new();
    let err = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap_err();
    assert_eq!(err, EvalError::UnknownRelation("Nope".to_string()));
}

#[test]
fn aggregate_without_grouping_error() {
    let q = collection(
        "Q",
        &["s"],
        exists(
            &[bind("r", "R")],
            and([assign_agg("Q", "s", sum(col("r", "A")))]),
        ),
    );
    let catalog = Catalog::new().with(ints("R", &["A"], &[&[1]]));
    let err = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap_err();
    assert!(matches!(err, EvalError::AggregateOutsideGrouping(_)));
}

#[test]
fn missing_assignment_error() {
    let q = collection(
        "Q",
        &["A", "B"],
        exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
    );
    let catalog = Catalog::new().with(ints("R", &["A"], &[&[1]]));
    let err = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap_err();
    assert!(matches!(err, EvalError::MissingAssignment { .. }));
}

#[test]
fn conflicting_assignments_filter_rows() {
    // Q.A = r.A ∧ Q.A = r.B keeps only rows with r.A = r.B.
    let q = collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R")],
            and([
                assign("Q", "A", col("r", "A")),
                assign("Q", "A", col("r", "B")),
            ]),
        ),
    );
    let catalog = Catalog::new().with(ints("R", &["A", "B"], &[&[1, 1], &[1, 2]]));
    let out = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1])]);
}

#[test]
fn disjunctive_union_bag_vs_set() {
    let q = collection(
        "Q",
        &["A"],
        or([
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
            exists(&[bind("s", "S")], and([assign("Q", "A", col("s", "A"))])),
        ]),
    );
    let catalog =
        Catalog::new()
            .with(ints("R", &["A"], &[&[1]]))
            .with(ints("S", &["A"], &[&[1], &[2]]));
    let set = Engine::new(&catalog, Conventions::set())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&set), vec![row(&[1]), row(&[2])]);
    let bag = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(bag.len(), 3); // UNION ALL
}

#[test]
fn arithmetic_with_nulls_and_division() {
    // r.B / r.C > 1 with C = 0 → NULL → row filtered, not an error.
    let q = collection(
        "Q",
        &["A"],
        exists(
            &[bind("r", "R")],
            and([
                assign("Q", "A", col("r", "A")),
                gt(div(col("r", "B"), col("r", "C")), int(1)),
            ]),
        ),
    );
    let catalog = Catalog::new().with(ints(
        "R",
        &["A", "B", "C"],
        &[&[1, 10, 2], &[2, 10, 0], &[3, 1, 2]],
    ));
    let out = Engine::new(&catalog, Conventions::sql())
        .eval_collection(&q)
        .unwrap();
    assert_eq!(sorted(&out), vec![row(&[1])]);
}

// ---------------------------------------------------------------------------
// Evaluation strategies: hash join must be observably identical to the
// nested-loop reference — tuple for tuple, in emission order
// ---------------------------------------------------------------------------

mod strategy_equivalence {
    use super::*;
    use crate::EvalStrategy;

    /// Evaluate under both strategies and assert *exact* equality of the
    /// row vectors (not just bag equality): the hash-join probe iterates
    /// matches in original row order, so even emission order must agree.
    fn assert_strategies_identical(catalog: &Catalog, conv: Conventions, q: &Collection) {
        let reference = Engine::new(catalog, conv)
            .with_strategy(EvalStrategy::NestedLoop)
            .eval_collection(q)
            .unwrap();
        let hashed = Engine::new(catalog, conv)
            .with_strategy(EvalStrategy::HashJoin)
            .eval_collection(q)
            .unwrap();
        assert_eq!(reference.schema, hashed.schema);
        assert_eq!(
            reference.rows, hashed.rows,
            "strategies diverged on {q:?}\nnested-loop:\n{reference}\nhash-join:\n{hashed}"
        );
    }

    fn join_catalog() -> Catalog {
        Catalog::new()
            .with(ints(
                "R",
                &["A", "B"],
                &[&[1, 10], &[2, 20], &[2, 20], &[3, 30], &[4, 40]],
            ))
            .with(ints(
                "S",
                &["B", "C"],
                &[&[20, 5], &[20, 6], &[30, 7], &[50, 8]],
            ))
    }

    #[test]
    fn equijoin_identical_under_all_conventions() {
        let q = collection(
            "Q",
            &["A", "C"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "C", col("s", "C")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        let catalog = join_catalog();
        for conv in [
            Conventions::sql(),
            Conventions::set(),
            Conventions::souffle(),
        ] {
            assert_strategies_identical(&catalog, conv, &q);
        }
    }

    #[test]
    fn hash_join_actually_joins_something() {
        // Guard against the strategies agreeing vacuously on empty output.
        let q = collection(
            "Q",
            &["A", "C"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "C", col("s", "C")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        let out = Engine::new(&join_catalog(), Conventions::sql())
            .with_strategy(EvalStrategy::HashJoin)
            .eval_collection(&q)
            .unwrap();
        // R(2,20) ×2 matches S(20,5),S(20,6) → 4 rows; R(3,30)→S(30,7) → 1.
        assert_eq!(out.len(), 5);
    }

    #[test]
    fn nulls_never_hash_match() {
        let mut r = Relation::new("R", &["A", "B"]);
        r.push(vec![Value::Int(1), Value::Null]);
        r.push(vec![Value::Int(2), Value::Int(20)]);
        let mut s = Relation::new("S", &["B", "C"]);
        s.push(vec![Value::Null, Value::Int(9)]);
        s.push(vec![Value::Int(20), Value::Int(5)]);
        let catalog = Catalog::new().with(r).with(s);
        let q = collection(
            "Q",
            &["A", "C"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "C", col("s", "C")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        for conv in [Conventions::sql(), Conventions::souffle()] {
            assert_strategies_identical(&catalog, conv, &q);
        }
        let out = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::HashJoin)
            .eval_collection(&q)
            .unwrap();
        assert_eq!(sorted(&out), vec![row(&[2, 5])]); // NULL = NULL is not a match
    }

    #[test]
    fn mixed_int_float_keys_hash_match_like_compare() {
        // 1 = 1.0 under the engine's comparison; the hash key
        // normalization must agree (and 2 ≠ 2.5 must not match).
        let mut r = Relation::new("R", &["A"]);
        r.push(vec![Value::Int(1)]);
        r.push(vec![Value::Int(2)]);
        let mut s = Relation::new("S", &["A", "tag"]);
        s.push(vec![Value::Float(1.0), Value::str("f1")]);
        s.push(vec![Value::Float(2.5), Value::str("f25")]);
        let catalog = Catalog::new().with(r).with(s);
        let q = collection(
            "Q",
            &["A", "tag"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "tag", col("s", "tag")),
                    eq(col("r", "A"), col("s", "A")),
                ]),
            ),
        );
        assert_strategies_identical(&catalog, Conventions::sql(), &q);
        let out = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::HashJoin)
            .eval_collection(&q)
            .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][1], Value::str("f1"));
    }

    #[test]
    fn nan_keys_never_hash_match() {
        // NaN is incomparable even to itself: compare() returns None, so
        // the nested loop rejects NaN = NaN; hashing must too (raw bit
        // keys would wrongly match).
        let mut r = Relation::new("R", &["A"]);
        r.push(vec![Value::Float(f64::NAN)]);
        r.push(vec![Value::Float(1.5)]);
        let mut s = Relation::new("S", &["A"]);
        s.push(vec![Value::Float(f64::NAN)]);
        s.push(vec![Value::Float(1.5)]);
        let catalog = Catalog::new().with(r).with(s);
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "A"), col("s", "A")),
                ]),
            ),
        );
        assert_strategies_identical(&catalog, Conventions::sql(), &q);
        let out = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::HashJoin)
            .eval_collection(&q)
            .unwrap();
        assert_eq!(out.len(), 1); // only 1.5 = 1.5
    }

    #[test]
    fn three_way_chain_join_identical() {
        let catalog = Catalog::new()
            .with(ints("R", &["A", "B"], &[&[1, 2], &[2, 3], &[3, 4]]))
            .with(ints("S", &["B", "C"], &[&[2, 5], &[3, 6], &[9, 9]]))
            .with(ints("T", &["C", "D"], &[&[5, 0], &[6, 1], &[6, 2]]));
        let q = collection(
            "Q",
            &["A", "D"],
            exists(
                &[bind("r", "R"), bind("s", "S"), bind("t", "T")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "D", col("t", "D")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), col("t", "C")),
                ]),
            ),
        );
        for conv in [Conventions::sql(), Conventions::set()] {
            assert_strategies_identical(&catalog, conv, &q);
        }
    }

    #[test]
    fn non_equi_predicates_fall_back_and_agree() {
        // `<` cannot be hashed; the plan must cover only the equality and
        // the inequality must still filter at the leaf.
        let q = collection(
            "Q",
            &["A", "C"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "C", col("s", "C")),
                    eq(col("r", "B"), col("s", "B")),
                    lt(col("r", "A"), col("s", "C")),
                ]),
            ),
        );
        assert_strategies_identical(&join_catalog(), Conventions::sql(), &q);
    }

    #[test]
    fn constant_key_probe_identical() {
        // Selection by constant is a degenerate equi-join: key computable
        // from the (empty) outer context.
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([assign("Q", "A", col("r", "A")), eq(col("r", "B"), int(20))]),
            ),
        );
        assert_strategies_identical(&join_catalog(), Conventions::sql(), &q);
    }

    #[test]
    fn grouped_aggregation_over_hash_join_identical() {
        let q = collection(
            "Q",
            &["A", "ct"],
            quant(
                &[bind("r", "R"), bind("s", "S")],
                group(&[("r", "A")]),
                None,
                and([
                    assign("Q", "A", col("r", "A")),
                    assign_agg("Q", "ct", count(col("s", "C"))),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        for conv in [Conventions::sql(), Conventions::set()] {
            assert_strategies_identical(&join_catalog(), conv, &q);
        }
    }

    #[test]
    fn correlated_nested_scope_probes_outer_vars() {
        // NOT EXISTS-style correlated scope: the inner quantifier's
        // equality references the outer row, so the hash plan keys on an
        // outer-environment expression.
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    not(exists(
                        &[bind("s", "S")],
                        and([eq(col("s", "B"), col("r", "B"))]),
                    )),
                ]),
            ),
        );
        assert_strategies_identical(&join_catalog(), Conventions::sql(), &q);
    }

    #[test]
    fn shadowed_variable_names_do_not_mislead_the_probe() {
        // An inner scope rebinds `r`, shadowing the outer `r ∈ R`. The
        // probe key for `s` must NOT be computed from the outer `r` (the
        // sibling `r ∈ R2` shadows it); the plan must be dropped so the
        // leaf filter sees the inner binding, exactly like the reference.
        let catalog = Catalog::new()
            .with(ints("R", &["A"], &[&[1]]))
            .with(ints("R2", &["A"], &[&[2]]))
            .with(ints("S", &["B"], &[&[2]]));
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    exists(
                        &[bind("s", "S"), bind("r", "R2")],
                        and([eq(col("s", "B"), col("r", "A"))]),
                    ),
                ]),
            ),
        );
        assert_strategies_identical(&catalog, Conventions::sql(), &q);
        let out = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::HashJoin)
            .eval_collection(&q)
            .unwrap();
        // Inner r ∈ R2 has A=2 which matches S.B=2, so the outer row
        // survives; probing with the outer r.A=1 would wrongly drop it.
        assert_eq!(sorted(&out), vec![row(&[1])]);
    }

    #[test]
    fn error_paths_are_identical_across_strategies() {
        // A bad attribute reference in an equality filter must surface (or
        // not surface) identically: the nested loop only errors when
        // enumeration actually reaches the filter, so the hash planner
        // must not evaluate such an expression eagerly as a probe key.
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("s", "B"), col("r", "NOPE")),
                ]),
            ),
        );
        // Case 1: S empty — the filter is never evaluated; both must be Ok.
        let catalog = Catalog::new()
            .with(ints("R", &["A"], &[&[1]]))
            .with(Relation::new("S", &["B"]));
        for strategy in [EvalStrategy::NestedLoop, EvalStrategy::HashJoin] {
            let out = Engine::new(&catalog, Conventions::sql())
                .with_strategy(strategy)
                .eval_collection(&q)
                .unwrap();
            assert!(out.is_empty(), "{strategy:?}");
        }
        // Case 2: S non-empty — both must report the same error.
        let catalog =
            Catalog::new()
                .with(ints("R", &["A"], &[&[1]]))
                .with(ints("S", &["B"], &[&[2]]));
        for strategy in [EvalStrategy::NestedLoop, EvalStrategy::HashJoin] {
            let err = Engine::new(&catalog, Conventions::sql())
                .with_strategy(strategy)
                .eval_collection(&q)
                .unwrap_err();
            assert_eq!(
                err,
                EvalError::UnknownAttribute {
                    var: "r".into(),
                    attr: "NOPE".into()
                },
                "{strategy:?}"
            );
        }
    }

    #[test]
    fn env_override_selects_strategy() {
        // `Engine::new` consults ARC_EVAL_STRATEGY/ARC_PLAN; `with_strategy`
        // wins regardless. (The suite itself is run under both settings in
        // CI.)
        let catalog = join_catalog();
        let e = Engine::new(&catalog, Conventions::sql());
        assert_eq!(e.strategy(), EvalStrategy::from_env());
        let e = e.with_strategy(EvalStrategy::HashJoin);
        assert_eq!(e.strategy(), Ok(EvalStrategy::HashJoin));
    }

    #[test]
    fn config_typo_surfaces_as_engine_error_not_panic() {
        // A typo'd ARC_EVAL_STRATEGY must fail evaluation with a
        // descriptive engine error (see `EvalStrategy::parse` for the pure
        // parsing tests — process env vars are racy under parallel tests,
        // so this test injects the parse failure directly).
        let parsed = EvalStrategy::parse(Some("hash-jion"), None);
        let msg = parsed.unwrap_err();
        let catalog = join_catalog();
        let mut engine = Engine::new(&catalog, Conventions::sql());
        engine.set_strategy_result(Err(EvalError::Config(msg.clone())));
        let q = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        let err = engine.eval_collection(&q).unwrap_err();
        assert_eq!(err, EvalError::Config(msg));
        assert!(err.to_string().contains("hash-jion"), "{err}");
    }

    #[test]
    fn threads_typo_surfaces_as_engine_error_not_panic() {
        // Same deferred-error story for ARC_THREADS (pure parsing is
        // tested in arc-exec; the env var itself is racy under parallel
        // tests, so the failure is injected).
        let msg = arc_exec::parse_threads(Some("many")).unwrap_err();
        let catalog = join_catalog();
        let mut engine = Engine::new(&catalog, Conventions::sql());
        engine.set_threads_result(Err(EvalError::Config(msg.clone())));
        let q = collection(
            "Q",
            &["A"],
            exists(&[bind("r", "R")], and([assign("Q", "A", col("r", "A"))])),
        );
        let err = engine.eval_collection(&q).unwrap_err();
        assert_eq!(err, EvalError::Config(msg));
        assert!(err.to_string().contains("ARC_THREADS"), "{err}");
        // And explain reports it too (the renderer needs the thread count
        // for the partition(n) line).
        assert!(engine.explain_collection(&q).is_err());
    }

    #[test]
    fn with_threads_overrides_and_clamps() {
        let catalog = join_catalog();
        let e = Engine::new(&catalog, Conventions::sql()).with_threads(0);
        assert_eq!(e.threads(), Ok(1));
        let e = e.with_threads(8);
        assert_eq!(e.threads(), Ok(8));
        // An absurd count is clamped, not allowed to exhaust OS threads.
        let e = e.with_threads(500_000);
        assert_eq!(e.threads(), Ok(arc_exec::MAX_THREADS));
    }
}

// ---------------------------------------------------------------------------
// The planned pipeline (arc-plan): per-operator strategy choice, join
// reordering, predicate pushdown — bag-identical to the reference
// ---------------------------------------------------------------------------

mod planned_pipeline {
    use super::*;
    use crate::EvalStrategy;

    /// Evaluate under the planned pipeline and the nested-loop reference
    /// and assert bag equality (join reordering legitimately changes
    /// enumeration order, so exact row-vector equality is not required —
    /// the multiset is).
    fn assert_planned_matches_reference(catalog: &Catalog, conv: Conventions, q: &Collection) {
        let reference = Engine::new(catalog, conv)
            .with_strategy(EvalStrategy::NestedLoop)
            .eval_collection(q)
            .unwrap();
        let planned = Engine::new(catalog, conv)
            .with_strategy(EvalStrategy::Planned)
            .eval_collection(q)
            .unwrap();
        assert_eq!(reference.schema, planned.schema);
        assert!(
            reference.bag_eq(&planned),
            "planned diverged on {q:?}\nreference:\n{reference}\nplanned:\n{planned}"
        );
    }

    fn skew_catalog() -> Catalog {
        // Deliberately skewed cardinalities so the greedy ordering must
        // reorder (T ≪ S ≪ R) to behave differently from declaration
        // order.
        let mut r = Vec::new();
        for i in 0..60i64 {
            r.push(vec![Value::Int(i), Value::Int(i % 10)]);
        }
        let mut s = Vec::new();
        for i in 0..12i64 {
            s.push(vec![Value::Int(i % 10), Value::Int(i)]);
        }
        Catalog::new()
            .with(Relation::from_rows("R", &["A", "B"], r))
            .with(Relation::from_rows("S", &["B", "C"], s))
            .with(ints("T", &["C", "D"], &[&[3, 0], &[5, 1]]))
    }

    #[test]
    fn reordered_chain_join_is_bag_identical() {
        let q = collection(
            "Q",
            &["A", "D"],
            exists(
                &[bind("r", "R"), bind("s", "S"), bind("t", "T")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "D", col("t", "D")),
                    eq(col("r", "B"), col("s", "B")),
                    eq(col("s", "C"), col("t", "C")),
                ]),
            ),
        );
        for conv in [
            Conventions::sql(),
            Conventions::set(),
            Conventions::souffle(),
        ] {
            assert_planned_matches_reference(&skew_catalog(), conv, &q);
        }
    }

    #[test]
    fn planned_joins_auto_select_hash_without_env() {
        // The acceptance criterion of the plan layer: equi-joins probe
        // without any ARC_EVAL_STRATEGY override. Asserted through EXPLAIN
        // (with_strategy keeps this test independent of the process env).
        let catalog = skew_catalog();
        let engine = Engine::new(&catalog, Conventions::sql()).with_strategy(EvalStrategy::Planned);
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        let plan = engine.explain_collection(&q).unwrap();
        assert!(plan.contains("hash-probe"), "{plan}");
        // And the forced reference never does.
        let reference = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::NestedLoop)
            .explain_collection(&q)
            .unwrap();
        assert!(!reference.contains("hash-probe"), "{reference}");
        assert!(reference.contains("scan"), "{reference}");
    }

    #[test]
    fn pushdown_filters_scopes_with_selections() {
        // A selective constant filter lands on the scan step, not the
        // leaf, and results match the reference.
        let catalog = skew_catalog();
        let q = collection(
            "Q",
            &["A", "C"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    assign("Q", "C", col("s", "C")),
                    eq(col("r", "B"), col("s", "B")),
                    lt(col("r", "A"), int(7)),
                ]),
            ),
        );
        assert_planned_matches_reference(&catalog, Conventions::sql(), &q);
        // With ordered indexes enabled, the selective bound is consumed
        // by the index-range access path instead of running as a filter
        // at all (analyze() + with_indexes pin the statistics and index
        // state against the ARC_STATS/ARC_INDEX suite re-runs).
        let mut catalog = catalog;
        catalog.analyze();
        let engine = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .with_indexes(true);
        let plan = engine.explain_collection(&q).unwrap();
        assert!(plan.contains("index-range on [A..]"), "{plan}");
        assert!(!plan.contains("residual: r.A < 7"), "{plan}");
        // With indexes off, the filter line must still appear nested
        // under a step, not as a residual.
        let engine = Engine::new(&catalog, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .with_indexes(false);
        let plan = engine.explain_collection(&q).unwrap();
        assert!(plan.contains("filter: r.A < 7"), "{plan}");
        assert!(!plan.contains("residual: r.A < 7"), "{plan}");
    }

    #[test]
    fn correlated_grouped_and_negated_scopes_match_reference() {
        let catalog = skew_catalog();
        // Grouped aggregate over a join.
        let grouped = collection(
            "Q",
            &["B", "ct"],
            quant(
                &[bind("r", "R"), bind("s", "S")],
                group(&[("r", "B")]),
                None,
                and([
                    assign("Q", "B", col("r", "B")),
                    assign_agg("Q", "ct", count(col("s", "C"))),
                    eq(col("r", "B"), col("s", "B")),
                ]),
            ),
        );
        // NOT EXISTS with a correlated probe.
        let negated = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R")],
                and([
                    assign("Q", "A", col("r", "A")),
                    not(exists(
                        &[bind("s", "S")],
                        and([eq(col("s", "B"), col("r", "B"))]),
                    )),
                ]),
            ),
        );
        for q in [&grouped, &negated] {
            for conv in [Conventions::sql(), Conventions::set()] {
                assert_planned_matches_reference(&catalog, conv, q);
            }
        }
    }

    #[test]
    fn planned_error_paths_match_reference() {
        // The pushdown validator must leave unresolvable filters at the
        // leaf so errors surface (or stay silent) exactly like the
        // reference — same contract the hash-join strategy already obeys.
        let q = collection(
            "Q",
            &["A"],
            exists(
                &[bind("r", "R"), bind("s", "S")],
                and([
                    assign("Q", "A", col("r", "A")),
                    eq(col("s", "B"), col("r", "NOPE")),
                ]),
            ),
        );
        let empty_s = Catalog::new()
            .with(ints("R", &["A"], &[&[1]]))
            .with(Relation::new("S", &["B"]));
        let out = Engine::new(&empty_s, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .eval_collection(&q)
            .unwrap();
        assert!(out.is_empty());
        let full_s =
            Catalog::new()
                .with(ints("R", &["A"], &[&[1]]))
                .with(ints("S", &["B"], &[&[2]]));
        let err = Engine::new(&full_s, Conventions::sql())
            .with_strategy(EvalStrategy::Planned)
            .eval_collection(&q)
            .unwrap_err();
        assert_eq!(
            err,
            EvalError::UnknownAttribute {
                var: "r".into(),
                attr: "NOPE".into()
            }
        );
    }

    #[test]
    fn explain_resolves_definitions_before_catalog_like_evaluation() {
        // A program definition named `R` shadows the same-named catalog
        // relation during evaluation (`defined` is consulted first), so
        // EXPLAIN must resolve it the same way: the definition's schema
        // (attribute `X`), not the catalog's (attribute `A`).
        let def = collection(
            "R",
            &["X"],
            exists(&[bind("b", "Base")], and([assign("R", "X", col("b", "A"))])),
        );
        let mut program =
            Program::default().with_definition(arc_core::ast::Definition { collection: def });
        program.query = Some(collection(
            "Q",
            &["X"],
            exists(&[bind("r", "R")], and([assign("Q", "X", col("r", "X"))])),
        ));
        let catalog = Catalog::new()
            .with(ints("Base", &["A"], &[&[1]]))
            .with(ints("R", &["A"], &[&[9]])); // shadowed by the definition
        let engine = Engine::new(&catalog, Conventions::set()).with_strategy(EvalStrategy::Planned);
        // Evaluation succeeds through the definition (catalog R has no X).
        let out = engine.eval_program(&program).unwrap();
        assert_eq!(sorted(out.query.as_ref().unwrap()), vec![row(&[1])]);
        // EXPLAIN must not error and must plan the query over the defined
        // relation (unknown rows → default estimate, not the catalog's 1).
        let plan = engine.explain_program(&program).unwrap();
        assert!(plan.contains("scan R as r (est=32)"), "{plan}");
    }

    #[test]
    fn explain_renders_fixpoint_for_recursive_programs() {
        let anc = collection(
            "A",
            &["s", "t"],
            or([
                exists(
                    &[bind("p", "P")],
                    and([
                        assign("A", "s", col("p", "s")),
                        assign("A", "t", col("p", "t")),
                    ]),
                ),
                exists(
                    &[bind("p", "P"), bind("a2", "A")],
                    and([
                        assign("A", "s", col("p", "s")),
                        eq(col("p", "t"), col("a2", "s")),
                        assign("A", "t", col("a2", "t")),
                    ]),
                ),
            ]),
        );
        let program =
            Program::default().with_definition(arc_core::ast::Definition { collection: anc });
        let catalog = Catalog::new().with(ints("P", &["s", "t"], &[&[1, 2], &[2, 3]]));
        let engine = Engine::new(&catalog, Conventions::set()).with_strategy(EvalStrategy::Planned);
        let plan = engine.explain_program(&program).unwrap();
        assert!(plan.contains("fixpoint [A]"), "{plan}");
        assert!(plan.contains("union"), "{plan}");
        assert!(plan.contains("hash-probe"), "{plan}");
    }
}

#[test]
fn sentence_aggregate_under_connective_errors_like_collections() {
    // An aggregate under ∨ inside a non-grouping sentence scope must
    // report AggregateOutsideGrouping, exactly as the collection path
    // does — not silently degenerate to a non-emptiness check.
    let s = exists(
        &[bind("r", "R")],
        and([or([
            gt(sum(col("r", "A")), int(100)),
            gt(sum(col("r", "A")), int(200)),
        ])]),
    );
    let catalog = Catalog::new().with(ints("R", &["A"], &[&[1]]));
    let err = Engine::new(&catalog, Conventions::set())
        .eval_sentence(&s)
        .unwrap_err();
    assert!(
        matches!(err, EvalError::AggregateOutsideGrouping(_)),
        "got {err:?}"
    );
}
