//! Host crate for the workspace's runnable examples (sources live in the
//! top-level `/examples` directory). Run them with, e.g.:
//!
//! ```text
//! cargo run --example quickstart
//! cargo run --example count_bug
//! cargo run --example rosetta_stone
//! cargo run --example nl2sql_validation
//! cargo run --example matrix_multiplication
//! ```

#![warn(missing_docs)]
