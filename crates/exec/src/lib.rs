//! # arc-exec — morsel-driven parallel execution for ARC
//!
//! The paper's thesis is that an abstract relational language should
//! decouple what a query pattern *means* from how it is *evaluated*. The
//! plan layer (`arc-plan`) made evaluation an explicit operator pipeline;
//! this crate is the payoff: a scope pipeline whose outer step is a scan
//! can be **partitioned** — the scan's rows split into morsels, each
//! morsel driven through the full pipeline by a pool worker, and the
//! per-morsel outputs concatenated *in morsel order*, which reproduces
//! the sequential enumeration order exactly. Bag semantics therefore
//! merges by concatenation; set semantics deduplicates at the collection
//! boundary exactly as the sequential engine does.
//!
//! | module     | role                                                        |
//! |------------|-------------------------------------------------------------|
//! | [`pool`]   | persistent worker pool (`std::thread` + channels, no deps)  |
//! | [`morsel`] | morsel partitioning and ordered scatter/gather              |
//! | [`threads`]| `ARC_THREADS` value parsing shared with the engine          |
//!
//! The crate is engine-agnostic on purpose: it knows nothing about
//! relations, plans, or environments. The engine supplies a closure per
//! morsel (which forks its evaluation context, re-materializes the scope
//! pipeline from the shared plan, and enumerates its row range); hash
//! build sides are built once by the coordinator and shared read-only
//! (`Arc`) through the forked contexts. Keeping the pool generic means
//! the same subsystem can later drive partitioned fixpoint iterations or
//! parallel union branches without growing new thread code.

#![warn(missing_docs)]

pub mod morsel;
pub mod pool;
pub mod threads;

pub use morsel::{run_morsels, run_morsels_guarded, run_morsels_with, Morsels};
pub use pool::{BroadcastPanic, WorkerPool};
pub use threads::{available_parallelism, parse_threads, MAX_THREADS};
