//! Morsel-driven partitioning: split a row range into morsels, execute
//! them across the pool, and gather per-morsel results **in morsel
//! order** — which is what makes parallel execution deterministic: the
//! concatenation of per-morsel outputs is exactly the output a sequential
//! scan of the same rows would produce, regardless of which worker ran
//! which morsel or in what real-time order they finished.

use crate::pool::{BroadcastPanic, WorkerPool};
use arc_guard::QueryGuard;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How many morsels each worker should get on average: small enough that
/// a skewed morsel cannot serialize the tail, large enough that the
/// per-morsel overhead (context fork, result slot) stays negligible.
const MORSELS_PER_WORKER: usize = 4;

/// A partitioning of `0..total` rows into fixed-size morsels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morsels {
    total: usize,
    size: usize,
}

impl Morsels {
    /// Split `total` rows for `parallelism` workers.
    pub fn new(total: usize, parallelism: usize) -> Self {
        let chunks = parallelism.max(1) * MORSELS_PER_WORKER;
        Morsels {
            total,
            size: total.div_ceil(chunks).max(1),
        }
    }

    /// Split `total` rows for `parallelism` workers with the morsel size
    /// rounded up to a multiple of `align`: every morsel but the last
    /// covers whole aligned blocks. The engine's vectorized path uses
    /// chunk alignment (`align = CHUNK_ROWS`) so a morsel never splits a
    /// column chunk between workers; coverage and gather order are
    /// identical to [`Morsels::new`] — only the boundaries move.
    pub fn aligned(total: usize, parallelism: usize, align: usize) -> Self {
        let base = Morsels::new(total, parallelism);
        let align = align.max(1);
        Morsels {
            total,
            size: base.size.div_ceil(align) * align,
        }
    }

    /// Number of morsels (zero when there are no rows).
    pub fn count(&self) -> usize {
        self.total.div_ceil(self.size)
    }

    /// Row range of morsel `i`.
    pub fn range(&self, i: usize) -> Range<usize> {
        let lo = i * self.size;
        lo..(lo + self.size).min(self.total)
    }
}

/// Execute `work` once per morsel across up to `parallelism` threads of
/// `pool` (the calling thread participates), returning the results in
/// morsel order. Workers claim morsels from a shared counter, so load
/// balances dynamically while the gather order stays fixed.
pub fn run_morsels<T, F>(pool: &WorkerPool, parallelism: usize, morsels: Morsels, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    run_morsels_with(
        pool,
        parallelism,
        morsels,
        || (),
        |(), i, range| work(i, range),
    )
}

/// [`run_morsels`] with **per-worker state**: `init` runs once on each
/// participating thread (not once per morsel) and the resulting state is
/// threaded through every morsel that thread claims. Hosts use this for
/// state that is cheap to reuse but wasteful to rebuild per morsel —
/// the engine forks one evaluation context (cache snapshots included)
/// per worker instead of one per morsel.
pub fn run_morsels_with<S, T, I, F>(
    pool: &WorkerPool,
    parallelism: usize,
    morsels: Morsels,
    init: I,
    work: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
{
    match run_morsels_guarded(pool, parallelism, morsels, None, init, work) {
        Ok(slots) => slots
            .into_iter()
            .map(|s| s.expect("no guard: the barrier guarantees every morsel ran"))
            .collect(),
        // Legacy infallible surface: re-raise the contained panic.
        Err(p) => panic!("{p}"),
    }
}

/// [`run_morsels_with`] under a [`QueryGuard`]: workers stop claiming
/// morsels as soon as the guard trips (checked **before every claim**,
/// so a tripped guard stops within one morsel of work per worker), and a
/// panicking morsel is contained by the pool barrier instead of
/// unwinding through the caller.
///
/// * `Ok(slots)` — per-morsel results in morsel order. A slot is `None`
///   only when the guard tripped before that morsel was claimed; with no
///   guard (or an untripped one) every slot is `Some`.
/// * `Err(panic)` — some morsel panicked. All other claimed morsels
///   still completed (the barrier drains everything) and the pool stays
///   usable; the host converts this into its structured error.
pub fn run_morsels_guarded<S, T, I, F>(
    pool: &WorkerPool,
    parallelism: usize,
    morsels: Morsels,
    guard: Option<&QueryGuard>,
    init: I,
    work: F,
) -> Result<Vec<Option<T>>, BroadcastPanic>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, Range<usize>) -> T + Sync,
{
    let n = morsels.count();
    if n == 0 {
        return Ok(Vec::new());
    }
    // Registry accounting: every executed morsel counts (per-worker
    // lane attribution is the host's job — it owns the worker state).
    morsels_counter().add(n as u64);
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    pool.broadcast(parallelism.min(n).max(1), &|| {
        let mut state = init();
        loop {
            // Cooperative stop: a tripped guard ends this worker's
            // claiming before the next morsel starts.
            if guard.is_some_and(|g| g.check().is_err()) {
                break;
            }
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            // Always-on morsel latency sample (subject only to the
            // process-wide quantile gate, which also guards the clock
            // read — the gated-off path stays clock-free).
            let t0 = arc_trace::quantile::recording().then(std::time::Instant::now);
            let out = work(&mut state, i, morsels.range(i));
            if let Some(t0) = t0 {
                morsel_latency().record_nanos(t0.elapsed().as_nanos().min(u64::MAX as u128) as u64);
            }
            *slots[i].lock().expect("morsel slot") = Some(out);
        }
    })?;
    Ok(slots
        .into_iter()
        .map(|s| s.into_inner().expect("morsel slot"))
        .collect())
}

/// The `exec.morsels` registry counter: morsels executed process-wide.
fn morsels_counter() -> arc_trace::Counter {
    static C: std::sync::OnceLock<arc_trace::Counter> = std::sync::OnceLock::new();
    *C.get_or_init(|| arc_trace::counter("exec.morsels"))
}

/// The `exec.morsel.latency` quantile histogram: wall time per executed
/// morsel, sampled on every run (see `arc_trace::quantile`).
fn morsel_latency() -> arc_trace::QuantileHistogram {
    static Q: std::sync::OnceLock<arc_trace::QuantileHistogram> = std::sync::OnceLock::new();
    *Q.get_or_init(|| arc_trace::quantile_histogram("exec.morsel.latency"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_cover_the_range_exactly_once() {
        for total in [0usize, 1, 7, 64, 1000] {
            for par in [1usize, 2, 8] {
                let m = Morsels::new(total, par);
                let mut covered = 0;
                for i in 0..m.count() {
                    let r = m.range(i);
                    assert_eq!(r.start, covered, "gap at morsel {i}");
                    covered = r.end;
                }
                assert_eq!(covered, total, "total {total} par {par}");
            }
        }
    }

    #[test]
    fn aligned_morsels_cover_exactly_and_respect_alignment() {
        for total in [0usize, 1, 100, 1024, 1025, 5000, 100_000] {
            for par in [1usize, 2, 8] {
                for align in [1usize, 64, 1024] {
                    let m = Morsels::aligned(total, par, align);
                    let mut covered = 0;
                    for i in 0..m.count() {
                        let r = m.range(i);
                        assert_eq!(r.start, covered, "gap at morsel {i}");
                        assert_eq!(r.start % align, 0, "unaligned start");
                        covered = r.end;
                    }
                    assert_eq!(covered, total, "total {total} par {par} align {align}");
                }
            }
        }
    }

    #[test]
    fn results_gather_in_morsel_order() {
        let pool = WorkerPool::new(4);
        let rows: Vec<usize> = (0..997).collect();
        let out = run_morsels(&pool, 4, Morsels::new(rows.len(), 4), |_, range| {
            rows[range].to_vec()
        });
        let flat: Vec<usize> = out.into_iter().flatten().collect();
        assert_eq!(flat, rows, "concatenation must equal the sequential scan");
    }

    #[test]
    fn per_worker_state_initializes_once_per_thread() {
        use std::sync::atomic::AtomicUsize;
        let pool = WorkerPool::new(3);
        let inits = AtomicUsize::new(0);
        let out = run_morsels_with(
            &pool,
            4,
            Morsels::new(1000, 4),
            || {
                inits.fetch_add(1, Ordering::SeqCst);
                0usize
            },
            |state, _, range| {
                *state += 1;
                range.len()
            },
        );
        assert_eq!(out.iter().sum::<usize>(), 1000);
        let inits = inits.load(Ordering::SeqCst);
        assert!(
            (1..=4).contains(&inits),
            "init ran per worker, not per morsel: {inits}"
        );
    }

    #[test]
    fn empty_input_yields_no_morsels() {
        let pool = WorkerPool::new(1);
        let out: Vec<Vec<usize>> = run_morsels(&pool, 4, Morsels::new(0, 4), |_, _| Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn tripped_guard_stops_claims_and_leaves_unclaimed_slots_none() {
        let pool = WorkerPool::new(0); // inline: deterministic claim order
        let guard = QueryGuard::new(None, Some(64), None, None);
        let m = Morsels::new(100, 1);
        let done = AtomicUsize::new(0);
        let out = run_morsels_guarded(
            &pool,
            1,
            m,
            Some(&guard),
            || (),
            |(), i, _| {
                if i == 2 {
                    // Hard exhaustion mid-query: the guard trips…
                    let _ = guard.reserve_hard(1 << 20);
                }
                done.fetch_add(1, Ordering::SeqCst)
            },
        )
        .unwrap();
        // …and no later morsel is claimed (inline worker, so exactly the
        // first three slots filled).
        assert_eq!(done.load(Ordering::SeqCst), 3);
        assert!(out[..3].iter().all(Option::is_some));
        assert!(out[3..].iter().all(Option::is_none));
        assert_eq!(guard.trip_cause(), Some(arc_guard::Trip::MemoryBudget));
    }

    #[test]
    fn morsel_panics_surface_as_errors_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let err = run_morsels_guarded(
            &pool,
            3,
            Morsels::new(50, 3),
            None,
            || (),
            |(), i, _| {
                if i == 1 {
                    panic!("morsel 1 dies");
                }
                i
            },
        )
        .expect_err("the panicking morsel must be reported");
        assert_eq!(err.message, "morsel 1 dies");
        // Same pool, next query: fully functional.
        let out = run_morsels(&pool, 3, Morsels::new(10, 3), |i, _| i);
        assert_eq!(out.len(), Morsels::new(10, 3).count());
    }
}
