//! The persistent worker pool.
//!
//! Workers are plain `std::thread`s parked on a shared FIFO of type-erased
//! jobs. The pool is deliberately dumb: all scheduling intelligence
//! (morsel sizing, partition-axis selection, merge order) lives in
//! [`crate::morsel`] and in the engine — the pool only guarantees that a
//! [`WorkerPool::broadcast`] call runs its task `parallelism` times
//! concurrently and does not return until every instance has finished.
//!
//! ## Why the lifetime erasure is sound
//!
//! Queued jobs must be `'static` (worker threads outlive any borrow), but
//! a broadcast task borrows the caller's stack: the catalog, the scope
//! plan, the outer environment. [`WorkerPool::broadcast`] therefore
//! erases the task's lifetime — and re-establishes safety with a strict
//! **completion barrier**: every enqueued instance sends a completion
//! message (normal return *and* caught panic both send), and `broadcast`
//! receives all of them before returning. The erased borrow can never be
//! observed after the borrowed data is gone, because `broadcast` does not
//! return while any instance may still run. This is the same contract
//! scoped-thread libraries implement; it lives here so the *threads*
//! can persist across queries while the *borrows* stay scoped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A type-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Set by `Drop`: workers drain the queue, then exit instead of
    /// parking (a dropped pool must not leak its threads forever).
    closed: std::sync::atomic::AtomicBool,
}

/// A persistent pool of worker threads executing queued jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Worker threads spawned so far (the pool grows on demand and never
    /// shrinks; parked workers cost one blocked OS thread each).
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// A pool with `workers` threads spawned up front. `broadcast` grows
    /// the pool lazily, so `WorkerPool::new(0)` is a valid cold start.
    pub fn new(workers: usize) -> Self {
        let pool = WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                closed: std::sync::atomic::AtomicBool::new(false),
            }),
            spawned: Mutex::new(0),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide pool. Created empty on first use; each
    /// `broadcast` grows it to the parallelism it needs, so the pool ends
    /// up sized to the largest `ARC_THREADS` the process has seen.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Spawn workers until at least `n` exist.
    pub fn ensure_workers(&self, n: usize) {
        let mut spawned = self.spawned.lock().expect("pool mutex");
        while *spawned < n {
            let shared = self.shared.clone();
            std::thread::Builder::new()
                .name(format!("arc-exec-{spawned}"))
                .spawn(move || worker_loop(shared))
                .expect("spawn arc-exec worker");
            *spawned += 1;
        }
    }

    /// Number of worker threads currently spawned.
    pub fn workers(&self) -> usize {
        *self.spawned.lock().expect("pool mutex")
    }

    /// Run `task` `parallelism` times concurrently — once inline on the
    /// calling thread, the rest on pool workers — and return only when
    /// every instance has finished. A panic in any instance is re-raised
    /// on the caller *after* the barrier (so borrows stay sound even on
    /// unwind). The calling thread steals queued jobs while it waits, so
    /// nested broadcasts cannot deadlock a fully-busy pool.
    pub fn broadcast(&self, parallelism: usize, task: &(dyn Fn() + Sync)) {
        let helpers = parallelism.saturating_sub(1);
        if helpers == 0 {
            task();
            return;
        }
        self.ensure_workers(helpers);

        // SAFETY: the erased reference is only invoked by jobs whose
        // completion messages are all received below before this function
        // returns; see the module docs for the barrier argument.
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task) };

        let (tx, rx) = channel::<std::thread::Result<()>>();
        {
            let mut queue = self.shared.queue.lock().expect("pool mutex");
            for _ in 0..helpers {
                let tx = tx.clone();
                queue.push_back(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(erased));
                    // A dropped receiver is impossible while the barrier
                    // below is still draining; ignore the send result so a
                    // worker can never panic out of its loop.
                    let _ = tx.send(outcome);
                }));
            }
            self.shared.available.notify_all();
        }

        let mut panic = catch_unwind(AssertUnwindSafe(task)).err();

        // Completion barrier with work-stealing: while helper instances
        // are still pending, run other queued jobs instead of blocking,
        // so a broadcast issued from inside a pool worker always makes
        // progress even when every worker is busy.
        let mut done = 0;
        while done < helpers {
            match rx.try_recv() {
                Ok(outcome) => {
                    done += 1;
                    if let Err(p) = outcome {
                        panic.get_or_insert(p);
                    }
                }
                Err(TryRecvError::Empty) => {
                    let stolen = self.shared.queue.lock().expect("pool mutex").pop_front();
                    match stolen {
                        Some(job) => job(),
                        None => {
                            // Nothing left to steal: our remaining
                            // instances are running on workers; block.
                            let outcome = rx.recv().expect("worker lost completion channel");
                            done += 1;
                            if let Err(p) = outcome {
                                panic.get_or_insert(p);
                            }
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    unreachable!("completion senders outlive the barrier")
                }
            }
        }
        if let Some(p) = panic {
            resume_unwind(p);
        }
    }
}

impl Drop for WorkerPool {
    /// Wake every worker and let it exit once the queue is drained. The
    /// global pool lives in a `static` and is never dropped; this exists
    /// so ad-hoc pools (`WorkerPool::new`) cannot leak parked threads
    /// for the rest of the process. In-flight `broadcast` jobs still
    /// complete: workers only exit on an *empty* queue.
    fn drop(&mut self) {
        self.shared
            .closed
            .store(true, std::sync::atomic::Ordering::SeqCst);
        let _guard = self.shared.queue.lock().expect("pool mutex");
        self.shared.available.notify_all();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool mutex");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.closed.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool mutex");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_task_parallelism_times() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        pool.broadcast(4, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn broadcast_of_one_stays_inline() {
        let pool = WorkerPool::new(0);
        let mut side = 0;
        let cell = std::sync::Mutex::new(&mut side);
        pool.broadcast(1, &|| {
            **cell.lock().unwrap() += 1;
        });
        assert_eq!(side, 1);
        assert_eq!(pool.workers(), 0, "no worker needed for parallelism 1");
    }

    #[test]
    fn broadcast_grows_the_pool_on_demand() {
        let pool = WorkerPool::new(0);
        pool.broadcast(3, &|| {});
        assert!(pool.workers() >= 2);
    }

    #[test]
    fn panics_propagate_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(3, &|| {
                if hits.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("first instance dies");
                }
            });
        }));
        assert!(outcome.is_err());
        // Every instance ran (the barrier drains all of them).
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // The pool survives the panic.
        pool.broadcast(3, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn nested_broadcast_does_not_deadlock() {
        let pool = WorkerPool::new(1); // deliberately undersized
        let hits = AtomicUsize::new(0);
        pool.broadcast(2, &|| {
            // Each outer instance broadcasts again: the stealing barrier
            // must drain the nested jobs even with one worker.
            WorkerPool::global().broadcast(2, &|| {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn dropped_pool_releases_its_workers() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.broadcast(3, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        let shared = Arc::downgrade(&pool.shared);
        drop(pool);
        // Workers exit once woken with a closed flag and an empty queue,
        // dropping their Arc<Shared> clones.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while shared.strong_count() > 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        assert_eq!(shared.strong_count(), 0, "worker threads did not exit");
    }

    #[test]
    fn borrowed_state_is_visible_after_the_barrier() {
        let pool = WorkerPool::new(4);
        let data: Vec<usize> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        pool.broadcast(4, &|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= data.len() {
                break;
            }
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }
}
