//! The persistent worker pool.
//!
//! Workers are plain `std::thread`s parked on a shared FIFO of type-erased
//! jobs. The pool is deliberately dumb: all scheduling intelligence
//! (morsel sizing, partition-axis selection, merge order) lives in
//! [`crate::morsel`] and in the engine — the pool only guarantees that a
//! [`WorkerPool::broadcast`] call runs its task `parallelism` times
//! concurrently and does not return until every instance has finished.
//!
//! ## Why the lifetime erasure is sound
//!
//! Queued jobs must be `'static` (worker threads outlive any borrow), but
//! a broadcast task borrows the caller's stack: the catalog, the scope
//! plan, the outer environment. [`WorkerPool::broadcast`] therefore
//! erases the task's lifetime — and re-establishes safety with a strict
//! **completion barrier**: every enqueued instance sends a completion
//! message (normal return *and* caught panic both send), and `broadcast`
//! receives all of them before returning. The erased borrow can never be
//! observed after the borrowed data is gone, because `broadcast` does not
//! return while any instance may still run. This is the same contract
//! scoped-thread libraries implement; it lives here so the *threads*
//! can persist across queries while the *borrows* stay scoped.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A worker (or inline) instance of a [`WorkerPool::broadcast`] task
/// panicked. The panic was caught **after** the completion barrier — all
/// borrows stayed sound, the pool is still usable — and is reported as a
/// value so callers can convert it into a structured error instead of
/// unwinding through the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastPanic {
    /// Best-effort text of the first panic payload observed.
    pub message: String,
}

impl std::fmt::Display for BroadcastPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "broadcast task panicked: {}", self.message)
    }
}

impl std::error::Error for BroadcastPanic {}

/// A type-erased unit of work queued on the pool.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    /// Set by `Drop`: workers drain the queue, then exit instead of
    /// parking (a dropped pool must not leak its threads forever).
    closed: std::sync::atomic::AtomicBool,
}

/// A persistent pool of worker threads executing queued jobs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Join handles of the worker threads spawned so far (the pool grows
    /// on demand and never shrinks; parked workers cost one blocked OS
    /// thread each). [`WorkerPool::shutdown`] drains and joins these.
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl WorkerPool {
    /// A pool with `workers` threads spawned up front. `broadcast` grows
    /// the pool lazily, so `WorkerPool::new(0)` is a valid cold start.
    pub fn new(workers: usize) -> Self {
        let pool = WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
                closed: std::sync::atomic::AtomicBool::new(false),
            }),
            handles: Mutex::new(Vec::new()),
        };
        pool.ensure_workers(workers);
        pool
    }

    /// The process-wide pool. Created empty on first use; each
    /// `broadcast` grows it to the parallelism it needs, so the pool ends
    /// up sized to the largest `ARC_THREADS` the process has seen.
    pub fn global() -> &'static WorkerPool {
        static GLOBAL: OnceLock<WorkerPool> = OnceLock::new();
        GLOBAL.get_or_init(|| WorkerPool::new(0))
    }

    /// Spawn workers until at least `n` exist.
    pub fn ensure_workers(&self, n: usize) {
        let mut handles = self.handles.lock().expect("pool mutex");
        while handles.len() < n {
            let shared = self.shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("arc-exec-{}", handles.len()))
                .spawn(move || worker_loop(shared))
                .expect("spawn arc-exec worker");
            handles.push(handle);
        }
    }

    /// Number of worker threads currently spawned.
    pub fn workers(&self) -> usize {
        self.handles.lock().expect("pool mutex").len()
    }

    /// Close the pool and **join** every worker thread: signal shutdown,
    /// wake parked workers, then block (parked in `JoinHandle::join`, no
    /// polling) until each has exited. In-flight jobs complete first —
    /// workers only exit on an empty queue. Idempotent; called by `Drop`.
    ///
    /// The wait is recorded in the registry (`exec.pool.shutdowns`
    /// counter; `exec.pool.shutdown_wait` duration histogram when tracing
    /// is enabled), so a pool whose teardown stalls shows up in the
    /// metrics instead of silently eating process-exit time.
    pub fn shutdown(&self) {
        let handles: Vec<_> = {
            let mut handles = self.handles.lock().expect("pool mutex");
            if handles.is_empty() {
                return;
            }
            std::mem::take(&mut *handles)
        };
        self.shared
            .closed
            .store(true, std::sync::atomic::Ordering::SeqCst);
        {
            let _guard = self.shared.queue.lock().expect("pool mutex");
            self.shared.available.notify_all();
        }
        let start = arc_trace::maybe_now();
        for handle in handles {
            // A worker that panicked already reported through its job's
            // completion channel; the thread itself has nothing to add.
            let _ = handle.join();
        }
        shutdowns_counter().inc();
        arc_trace::record_since(shutdown_wait_histogram(), start);
    }

    /// Run `task` `parallelism` times concurrently — once inline on the
    /// calling thread, the rest on pool workers — and return only when
    /// every instance has finished. A panic in any instance is caught and
    /// reported as `Err(BroadcastPanic)` *after* the barrier (so borrows
    /// stay sound and the pool stays alive for the next broadcast). The
    /// calling thread steals queued jobs while it waits, so nested
    /// broadcasts cannot deadlock a fully-busy pool.
    pub fn broadcast(
        &self,
        parallelism: usize,
        task: &(dyn Fn() + Sync),
    ) -> Result<(), BroadcastPanic> {
        let helpers = parallelism.saturating_sub(1);
        if helpers == 0 {
            return catch_unwind(AssertUnwindSafe(task)).map_err(|p| BroadcastPanic {
                message: arc_guard::panic_message(p.as_ref()),
            });
        }
        self.ensure_workers(helpers);

        // SAFETY: the erased reference is only invoked by jobs whose
        // completion messages are all received below before this function
        // returns; see the module docs for the barrier argument.
        let erased: &'static (dyn Fn() + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn() + Sync), &'static (dyn Fn() + Sync)>(task) };

        let (tx, rx) = channel::<std::thread::Result<()>>();
        {
            let mut queue = self.shared.queue.lock().expect("pool mutex");
            for _ in 0..helpers {
                let tx = tx.clone();
                queue.push_back(Box::new(move || {
                    let outcome = catch_unwind(AssertUnwindSafe(erased));
                    // A dropped receiver is impossible while the barrier
                    // below is still draining; ignore the send result so a
                    // worker can never panic out of its loop.
                    let _ = tx.send(outcome);
                }));
            }
            self.shared.available.notify_all();
        }

        let mut panic = catch_unwind(AssertUnwindSafe(task)).err();

        // Completion barrier with work-stealing: while helper instances
        // are still pending, run other queued jobs instead of blocking,
        // so a broadcast issued from inside a pool worker always makes
        // progress even when every worker is busy.
        let mut done = 0;
        while done < helpers {
            match rx.try_recv() {
                Ok(outcome) => {
                    done += 1;
                    if let Err(p) = outcome {
                        panic.get_or_insert(p);
                    }
                }
                Err(TryRecvError::Empty) => {
                    let stolen = self.shared.queue.lock().expect("pool mutex").pop_front();
                    match stolen {
                        Some(job) => job(),
                        None => {
                            // Nothing left to steal: our remaining
                            // instances are running on workers; block.
                            let outcome = rx.recv().expect("worker lost completion channel");
                            done += 1;
                            if let Err(p) = outcome {
                                panic.get_or_insert(p);
                            }
                        }
                    }
                }
                Err(TryRecvError::Disconnected) => {
                    unreachable!("completion senders outlive the barrier")
                }
            }
        }
        match panic {
            Some(p) => Err(BroadcastPanic {
                message: arc_guard::panic_message(p.as_ref()),
            }),
            None => Ok(()),
        }
    }
}

impl Drop for WorkerPool {
    /// [`WorkerPool::shutdown`]: close the pool and join its workers. The
    /// global pool lives in a `static` and is never dropped; this exists
    /// so ad-hoc pools (`WorkerPool::new`) cannot leak parked threads
    /// for the rest of the process. In-flight `broadcast` jobs still
    /// complete: workers only exit on an *empty* queue, and `Drop` waits
    /// for the exits instead of firing and forgetting (the old
    /// notify-and-hope teardown left tests busy-polling `strong_count`
    /// for up to 5 seconds).
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The `exec.pool.shutdowns` registry counter.
fn shutdowns_counter() -> arc_trace::Counter {
    static C: OnceLock<arc_trace::Counter> = OnceLock::new();
    *C.get_or_init(|| arc_trace::counter("exec.pool.shutdowns"))
}

/// The `exec.pool.shutdown_wait` registry histogram (time spent joining
/// workers at pool teardown).
fn shutdown_wait_histogram() -> arc_trace::Histogram {
    static H: OnceLock<arc_trace::Histogram> = OnceLock::new();
    *H.get_or_init(|| arc_trace::histogram("exec.pool.shutdown_wait"))
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool mutex");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.closed.load(std::sync::atomic::Ordering::SeqCst) {
                    return;
                }
                queue = shared.available.wait(queue).expect("pool mutex");
            }
        };
        job();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_task_parallelism_times() {
        let pool = WorkerPool::new(3);
        let hits = AtomicUsize::new(0);
        pool.broadcast(4, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn broadcast_of_one_stays_inline() {
        let pool = WorkerPool::new(0);
        let mut side = 0;
        let cell = std::sync::Mutex::new(&mut side);
        pool.broadcast(1, &|| {
            **cell.lock().unwrap() += 1;
        })
        .unwrap();
        assert_eq!(side, 1);
        assert_eq!(pool.workers(), 0, "no worker needed for parallelism 1");
    }

    #[test]
    fn broadcast_grows_the_pool_on_demand() {
        let pool = WorkerPool::new(0);
        pool.broadcast(3, &|| {}).unwrap();
        assert!(pool.workers() >= 2);
    }

    #[test]
    fn panics_surface_as_values_after_the_barrier() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        let outcome = pool.broadcast(3, &|| {
            if hits.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("first instance dies");
            }
        });
        let err = outcome.expect_err("a panicking instance must be reported");
        assert_eq!(err.message, "first instance dies");
        // Every instance ran (the barrier drains all of them).
        assert_eq!(hits.load(Ordering::SeqCst), 3);
        // The pool survives the panic.
        pool.broadcast(3, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn inline_panics_surface_as_values_too() {
        let pool = WorkerPool::new(0);
        let err = pool
            .broadcast(1, &|| panic!("inline instance dies"))
            .expect_err("the inline instance panicked");
        assert_eq!(err.message, "inline instance dies");
        let mut ran = false;
        let cell = std::sync::Mutex::new(&mut ran);
        pool.broadcast(1, &|| **cell.lock().unwrap() = true)
            .unwrap();
        assert!(ran);
    }

    #[test]
    fn nested_broadcast_does_not_deadlock() {
        let pool = WorkerPool::new(1); // deliberately undersized
        let hits = AtomicUsize::new(0);
        pool.broadcast(2, &|| {
            // Each outer instance broadcasts again: the stealing barrier
            // must drain the nested jobs even with one worker.
            WorkerPool::global()
                .broadcast(2, &|| {
                    hits.fetch_add(1, Ordering::SeqCst);
                })
                .unwrap();
        })
        .unwrap();
        assert_eq!(hits.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn dropped_pool_releases_its_workers() {
        let pool = WorkerPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.broadcast(3, &|| {
            hits.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        let shared = Arc::downgrade(&pool.shared);
        let before = arc_trace::snapshot();
        drop(pool);
        // Drop joins the workers, so by the time it returns every worker
        // has exited and dropped its Arc<Shared> clone — no polling.
        assert_eq!(shared.strong_count(), 0, "worker threads did not exit");
        // The teardown is a recorded pool metric.
        let delta = arc_trace::snapshot().diff(&before);
        assert!(
            delta.counter("exec.pool.shutdowns") >= 1,
            "shutdown must count itself"
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_records_wait_when_tracing() {
        let was = arc_trace::enabled();
        arc_trace::set_enabled(true);
        let before = arc_trace::snapshot();
        let pool = WorkerPool::new(2);
        pool.shutdown();
        assert_eq!(pool.workers(), 0, "shutdown drains the handle list");
        pool.shutdown(); // second call: nothing left to join, no double count
                         // Concurrent tests drop pools of their own, so the process-global
                         // delta is a lower bound, never an exact count.
        let delta = arc_trace::snapshot().diff(&before);
        arc_trace::set_enabled(was);
        assert!(delta.counter("exec.pool.shutdowns") >= 1);
        assert!(delta.hist("exec.pool.shutdown_wait").count >= 1);
        // A closed pool can still be re-grown and used (ensure_workers
        // spawns fresh threads... they would exit immediately with the
        // closed flag set, so broadcast falls back to inline stealing).
        drop(pool);
    }

    #[test]
    fn borrowed_state_is_visible_after_the_barrier() {
        let pool = WorkerPool::new(4);
        let data: Vec<usize> = (0..1000).collect();
        let sum = AtomicUsize::new(0);
        let next = AtomicUsize::new(0);
        pool.broadcast(4, &|| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= data.len() {
                break;
            }
            sum.fetch_add(data[i], Ordering::Relaxed);
        })
        .unwrap();
        assert_eq!(sum.load(Ordering::Relaxed), 1000 * 999 / 2);
    }
}
