//! Parallelism configuration: interpreting `ARC_THREADS` values.
//!
//! The engine reads the environment variable (see its `strategy` module);
//! the pure parsing lives here next to the pool so every host of the
//! executor agrees on the accepted spellings.

/// Upper bound on configured parallelism: far above any real machine this
/// engine targets, low enough that a typo (`ARC_THREADS=1000000`) cannot
/// spawn an absurd number of OS threads.
pub const MAX_THREADS: usize = 256;

/// The machine's available parallelism (1 when undetectable).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Interpret an `ARC_THREADS` value. `None`/empty means sequential
/// (parallelism 1 — the conservative default: results are identical
/// either way, so opting in is a pure performance decision); `auto` or
/// `0` means [`available_parallelism`]; otherwise a thread count in
/// `1..=`[`MAX_THREADS`]. Anything else is a descriptive error (the
/// engine surfaces it as a configuration error on first evaluation, never
/// a panic).
pub fn parse_threads(value: Option<&str>) -> Result<usize, String> {
    let Some(v) = value.map(str::trim).filter(|v| !v.is_empty()) else {
        return Ok(1);
    };
    if v.eq_ignore_ascii_case("auto") {
        return Ok(available_parallelism().min(MAX_THREADS));
    }
    match v.parse::<usize>() {
        Ok(0) => Ok(available_parallelism().min(MAX_THREADS)),
        Ok(n) if n <= MAX_THREADS => Ok(n),
        Ok(n) => Err(format!(
            "ARC_THREADS `{n}` exceeds the maximum of {MAX_THREADS}"
        )),
        Err(_) => Err(format!(
            "unknown ARC_THREADS `{v}` (expected a thread count, `auto`, or `0` for auto)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential() {
        assert_eq!(parse_threads(None), Ok(1));
        assert_eq!(parse_threads(Some("")), Ok(1));
        assert_eq!(parse_threads(Some("  ")), Ok(1));
    }

    #[test]
    fn explicit_counts_parse() {
        assert_eq!(parse_threads(Some("1")), Ok(1));
        assert_eq!(parse_threads(Some("8")), Ok(8));
        assert_eq!(parse_threads(Some(" 4 ")), Ok(4));
    }

    #[test]
    fn auto_uses_available_parallelism() {
        let auto = parse_threads(Some("auto")).unwrap();
        assert!(auto >= 1);
        assert_eq!(parse_threads(Some("0")).unwrap(), auto);
        assert_eq!(parse_threads(Some("AUTO")).unwrap(), auto);
    }

    #[test]
    fn junk_is_a_descriptive_error() {
        let err = parse_threads(Some("many")).unwrap_err();
        assert!(err.contains("many"), "{err}");
        assert!(err.contains("ARC_THREADS"), "{err}");
        let err = parse_threads(Some("100000")).unwrap_err();
        assert!(err.contains("maximum"), "{err}");
    }
}
