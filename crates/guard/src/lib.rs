//! # arc-guard — per-query resource governance and fault isolation
//!
//! The serving-layer story (ROADMAP: "Engine as a shared service") needs
//! one bad query — a runaway cross product, a panicking worker, an
//! oversized build — to stop taking the whole process with it. This
//! crate is the mechanism: a [`QueryGuard`] created once per engine
//! entry point and shared (`Arc`) by every worker evaluating that query.
//! It carries three cooperative limits and one test harness:
//!
//! * a **cancellation flag** ([`CancelHandle`]) the caller can trip from
//!   another thread;
//! * a **deadline** (wall-clock instant, from `ARC_TIMEOUT_MS` or
//!   `Engine::with_timeout`);
//! * a **memory budget** (`ARC_MEM_BUDGET`): an atomic accountant charged
//!   with coarse byte estimates at every allocation-heavy seam. A build
//!   whose reservation would exceed the budget *releases its claim* and
//!   degrades to a streaming path ([`QueryGuard::try_reserve`] returning
//!   `false`); only a hard reservation ([`QueryGuard::reserve_hard`],
//!   used for fixpoint deltas that cannot stream) trips the guard;
//! * a **fault plan** ([`FaultPlan`], `ARC_FAULT=seam:N[:kind]`): a
//!   deterministic injector that fires a panic, budget denial, or
//!   cancellation at the Nth visit of a named seam, so CI can walk every
//!   error path on demand.
//!
//! All checks are cooperative: execution seams call
//! [`QueryGuard::check`] (per morsel, per fixpoint round, and on an
//! amortized enumeration tick) and surface a [`Trip`] as a structured
//! engine error within one morsel of work. The first trip wins — every
//! seam that observes a tripped guard reports the *same* cause, so a
//! query that dies of a deadline never half-reports a budget error.
//!
//! The crate is std-only with no dependencies so both `arc-exec` (the
//! worker pool's morsel claim loop) and `arc-engine` (every build seam)
//! can use it.

#![warn(missing_docs)]

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Named guard seams: every point where the engine checks the guard,
/// charges the memory accountant, or lets the fault injector fire.
/// `ARC_FAULT` specs are validated against this registry.
pub mod seam {
    /// Amortized per-environment check inside scope enumeration.
    pub const ENUMERATE: &str = "enumerate";
    /// Per-morsel check at partition-scan entry.
    pub const MORSEL: &str = "morsel";
    /// Per-round check (and delta reservation) in recursive fixpoints.
    pub const FIXPOINT_ROUND: &str = "fixpoint-round";
    /// Hash-join index build (degrades to a streaming nested probe).
    pub const HASH_BUILD: &str = "hash-build";
    /// Semi-join key-set build (degrades to the nested fallback).
    pub const SEMI_BUILD: &str = "semi-build";
    /// Columnar chunk-view build (degrades to the row path).
    pub const CHUNK_BUILD: &str = "chunk-build";
    /// Ordered secondary-index build (degrades to a row-filter scan).
    pub const ORDERED_BUILD: &str = "ordered-build";
    /// Cached selection-vector build (degrades to per-row filtering).
    pub const SELECTION_BUILD: &str = "selection-build";
    /// Every registered seam, in documentation order. CI's fault-matrix
    /// smoke leg iterates this list.
    pub const ALL: &[&str] = &[
        ENUMERATE,
        MORSEL,
        FIXPOINT_ROUND,
        HASH_BUILD,
        SEMI_BUILD,
        CHUNK_BUILD,
        ORDERED_BUILD,
        SELECTION_BUILD,
    ];

    /// Canonicalize a seam name to its `'static` registry entry.
    pub fn lookup(name: &str) -> Option<&'static str> {
        ALL.iter().find(|s| **s == name).copied()
    }
}

/// Why a guard tripped. Maps 1:1 onto the engine's structured
/// `EvalError::{Cancelled, DeadlineExceeded, MemoryBudget}` variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trip {
    /// The caller tripped the [`CancelHandle`].
    Cancelled,
    /// The wall-clock deadline passed.
    DeadlineExceeded,
    /// A hard reservation exceeded the memory budget.
    MemoryBudget,
}

impl Trip {
    fn as_u8(self) -> u8 {
        match self {
            Trip::Cancelled => 1,
            Trip::DeadlineExceeded => 2,
            Trip::MemoryBudget => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Trip> {
        match v {
            1 => Some(Trip::Cancelled),
            2 => Some(Trip::DeadlineExceeded),
            3 => Some(Trip::MemoryBudget),
            _ => None,
        }
    }
}

impl std::fmt::Display for Trip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Trip::Cancelled => write!(f, "cancelled"),
            Trip::DeadlineExceeded => write!(f, "deadline exceeded"),
            Trip::MemoryBudget => write!(f, "memory budget exceeded"),
        }
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the seam (exercises worker-panic containment).
    Panic,
    /// Behave as if the memory budget denied the seam's reservation
    /// (build seams degrade; check seams trip [`Trip::MemoryBudget`]).
    Budget,
    /// Trip cooperative cancellation at the seam.
    Cancel,
}

/// A deterministic fault: fire `kind` at the `at`-th visit of `seam`.
/// Parsed from `ARC_FAULT=seam:N[:panic|budget|cancel]` (kind defaults
/// to `panic`); visits are counted per query, so the same spec fires at
/// the same point on every run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The registered seam name (canonicalized via [`seam::lookup`]).
    pub seam: &'static str,
    /// 1-based visit count at which the fault fires.
    pub at: u64,
    /// What happens when it fires.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Parse a `seam:N[:kind]` spec, validating the seam against the
    /// registry. Empty input means "no fault" (`Ok(None)`).
    pub fn parse(spec: &str) -> Result<Option<FaultPlan>, String> {
        let spec = spec.trim();
        if spec.is_empty() {
            return Ok(None);
        }
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("");
        let seam = seam::lookup(name).ok_or_else(|| {
            format!(
                "unknown fault seam `{name}` (expected one of {})",
                seam::ALL.join(", ")
            )
        })?;
        let at = parts
            .next()
            .ok_or_else(|| format!("fault spec `{spec}` is missing a visit count (seam:N)"))?;
        let at: u64 = at
            .parse()
            .map_err(|_| format!("fault visit count `{at}` is not a positive integer"))?;
        if at == 0 {
            return Err("fault visit counts are 1-based (seam:1 fires on the first visit)".into());
        }
        let kind = match parts.next() {
            None | Some("panic") => FaultKind::Panic,
            Some("budget") => FaultKind::Budget,
            Some("cancel") => FaultKind::Cancel,
            Some(k) => {
                return Err(format!(
                    "unknown fault kind `{k}` (expected `panic`, `budget`, or `cancel`)"
                ))
            }
        };
        if parts.next().is_some() {
            return Err(format!(
                "trailing fields in fault spec `{spec}` (seam:N[:kind])"
            ));
        }
        Ok(Some(FaultPlan { seam, at, kind }))
    }
}

/// Parse a memory budget: plain bytes, or with a `k`/`m`/`g` (or
/// `kb`/`mb`/`gb`) suffix, case-insensitive. Empty and `0` both mean
/// "no budget".
pub fn parse_mem_budget(value: &str) -> Result<Option<usize>, String> {
    let v = value.trim().to_lowercase();
    if v.is_empty() {
        return Ok(None);
    }
    let (digits, mult) = ["kb", "mb", "gb", "k", "m", "g", "b"]
        .iter()
        .find_map(|s| v.strip_suffix(s).map(|d| (d, *s)))
        .map(|(d, s)| {
            let mult: usize = match s {
                "k" | "kb" => 1 << 10,
                "m" | "mb" => 1 << 20,
                "g" | "gb" => 1 << 30,
                _ => 1,
            };
            (d.trim_end(), mult)
        })
        .unwrap_or((v.as_str(), 1));
    let n: usize = digits
        .parse()
        .map_err(|_| format!("unparseable memory budget `{value}` (expected bytes, e.g. `64m`)"))?;
    Ok(n.checked_mul(mult).filter(|&b| b > 0))
}

/// Shared cancellation state: the flag a [`CancelHandle`] trips, plus an
/// `armed` bit so an engine that never handed out a handle skips guard
/// construction entirely.
#[derive(Debug, Default)]
pub struct CancelState {
    flag: AtomicBool,
    armed: AtomicBool,
}

impl CancelState {
    /// Mark that a handle exists; subsequent queries build a guard.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Relaxed);
    }

    /// Has a handle ever been handed out?
    pub fn armed(&self) -> bool {
        self.armed.load(Ordering::Relaxed)
    }

    /// Is the flag currently tripped?
    pub fn is_set(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// A caller-side handle that cancels the query currently running on the
/// engine it came from. Cloneable and sendable across threads; tripping
/// it is sticky until [`CancelHandle::reset`].
#[derive(Debug, Clone)]
pub struct CancelHandle(Arc<CancelState>);

impl CancelHandle {
    /// Wrap shared state (the engine calls this; `state.arm()` first).
    pub fn new(state: Arc<CancelState>) -> CancelHandle {
        CancelHandle(state)
    }

    /// Trip cancellation: the running query surfaces `Cancelled` within
    /// one morsel of work. Queries started while the flag stays set are
    /// cancelled immediately.
    pub fn cancel(&self) {
        self.0.flag.store(true, Ordering::Relaxed);
    }

    /// Clear the flag so the next query on the same engine runs to
    /// completion.
    pub fn reset(&self) {
        self.0.flag.store(false, Ordering::Relaxed);
    }

    /// Is the flag currently tripped?
    pub fn is_cancelled(&self) -> bool {
        self.0.is_set()
    }
}

/// The per-query guard: cooperative limits shared by every worker
/// evaluating one query. See the crate docs for the protocol.
#[derive(Debug)]
pub struct QueryGuard {
    cancel: Option<Arc<CancelState>>,
    deadline: Option<Instant>,
    budget: Option<usize>,
    used: AtomicUsize,
    peak: AtomicUsize,
    degradations: AtomicU64,
    faults: AtomicU64,
    tripped: AtomicU8,
    fault_plan: Option<FaultPlan>,
    fault_visits: AtomicU64,
}

impl QueryGuard {
    /// A guard with the given limits. `cancel` is the engine's shared
    /// cancellation state (present only when a handle was handed out).
    pub fn new(
        deadline: Option<Instant>,
        budget: Option<usize>,
        fault_plan: Option<FaultPlan>,
        cancel: Option<Arc<CancelState>>,
    ) -> QueryGuard {
        QueryGuard {
            cancel,
            deadline,
            budget,
            used: AtomicUsize::new(0),
            peak: AtomicUsize::new(0),
            degradations: AtomicU64::new(0),
            faults: AtomicU64::new(0),
            tripped: AtomicU8::new(0),
            fault_plan,
            fault_visits: AtomicU64::new(0),
        }
    }

    /// Cooperative check: already tripped → that cause; else the cancel
    /// flag, then the deadline. First trip wins and is sticky, so every
    /// seam reports the same structured error.
    pub fn check(&self) -> Result<(), Trip> {
        if let Some(t) = Trip::from_u8(self.tripped.load(Ordering::Relaxed)) {
            return Err(t);
        }
        if self.cancel.as_ref().is_some_and(|c| c.is_set()) {
            return Err(self.trip(Trip::Cancelled));
        }
        if self.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(self.trip(Trip::DeadlineExceeded));
        }
        Ok(())
    }

    /// Record a trip (first cause wins); returns the winning cause.
    pub fn trip(&self, cause: Trip) -> Trip {
        match self
            .tripped
            .compare_exchange(0, cause.as_u8(), Ordering::Relaxed, Ordering::Relaxed)
        {
            Ok(_) => cause,
            Err(prev) => Trip::from_u8(prev).unwrap_or(cause),
        }
    }

    /// The recorded trip cause, if any.
    pub fn trip_cause(&self) -> Option<Trip> {
        Trip::from_u8(self.tripped.load(Ordering::Relaxed))
    }

    /// Soft reservation for a degradable build: charge `bytes`, and if
    /// the budget is exceeded release the claim and return `false` — the
    /// caller falls back to its streaming path. Always charges (and
    /// returns `true`) when no budget is set, so `mem_peak` is
    /// meaningful under a pure deadline guard too.
    pub fn try_reserve(&self, bytes: usize) -> bool {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev.saturating_add(bytes);
        if self.budget.is_some_and(|b| now > b) {
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return false;
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        true
    }

    /// Hard reservation for allocations that cannot stream (fixpoint
    /// deltas): on denial the guard trips [`Trip::MemoryBudget`].
    pub fn reserve_hard(&self, bytes: usize) -> Result<(), Trip> {
        if self.try_reserve(bytes) {
            Ok(())
        } else {
            Err(self.trip(Trip::MemoryBudget))
        }
    }

    /// Return a previous reservation to the accountant.
    pub fn release(&self, bytes: usize) {
        self.used.fetch_sub(
            bytes.min(self.used.load(Ordering::Relaxed)),
            Ordering::Relaxed,
        );
    }

    /// Bytes currently reserved.
    pub fn mem_used(&self) -> usize {
        self.used.load(Ordering::Relaxed)
    }

    /// High-water mark of the accountant.
    pub fn mem_peak(&self) -> usize {
        self.peak.load(Ordering::Relaxed)
    }

    /// Count one graceful degradation (a build that fell back to a
    /// streaming path instead of allocating past the budget).
    pub fn note_degradation(&self) {
        self.degradations.fetch_add(1, Ordering::Relaxed);
    }

    /// Degradations so far.
    pub fn degradations(&self) -> u64 {
        self.degradations.load(Ordering::Relaxed)
    }

    /// Injected faults fired so far.
    pub fn faults_fired(&self) -> u64 {
        self.faults.load(Ordering::Relaxed)
    }

    /// Is a fault plan armed? Seams use this to skip injection work on
    /// the fast path.
    pub fn fault_armed(&self) -> bool {
        self.fault_plan.is_some()
    }

    /// Visit a seam for fault injection: counts visits of the planned
    /// seam and returns the fault kind exactly at the planned visit.
    /// Returns `None` (and counts nothing) when no plan is armed or the
    /// seam doesn't match.
    pub fn fire_fault(&self, seam: &str) -> Option<FaultKind> {
        let plan = self.fault_plan.as_ref()?;
        if plan.seam != seam {
            return None;
        }
        let visit = self.fault_visits.fetch_add(1, Ordering::Relaxed) + 1;
        if visit == plan.at {
            self.faults.fetch_add(1, Ordering::Relaxed);
            Some(plan.kind)
        } else {
            None
        }
    }
}

/// Best-effort text of a panic payload (the common `&str` / `String`
/// forms), for converting caught worker panics into structured errors.
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = QueryGuard::new(None, None, None, None);
        assert_eq!(g.check(), Ok(()));
        assert!(g.try_reserve(usize::MAX / 2));
        assert_eq!(g.check(), Ok(()));
        assert_eq!(g.trip_cause(), None);
    }

    #[test]
    fn deadline_trips_and_is_sticky() {
        let g = QueryGuard::new(
            Some(Instant::now() - Duration::from_millis(1)),
            None,
            None,
            None,
        );
        assert_eq!(g.check(), Err(Trip::DeadlineExceeded));
        // Sticky: later causes cannot overwrite the first.
        g.trip(Trip::MemoryBudget);
        assert_eq!(g.trip_cause(), Some(Trip::DeadlineExceeded));
    }

    #[test]
    fn cancel_handle_trips_and_resets() {
        let state = Arc::new(CancelState::default());
        let handle = CancelHandle::new(state.clone());
        let g = QueryGuard::new(None, None, None, Some(state.clone()));
        assert_eq!(g.check(), Ok(()));
        handle.cancel();
        assert_eq!(g.check(), Err(Trip::Cancelled));
        handle.reset();
        // The guard already tripped (sticky), but a *fresh* guard on the
        // same state runs clean — the same-engine re-run contract.
        let g2 = QueryGuard::new(None, None, None, Some(state));
        assert_eq!(g2.check(), Ok(()));
    }

    #[test]
    fn soft_reservations_release_on_denial() {
        let g = QueryGuard::new(None, Some(100), None, None);
        assert!(g.try_reserve(60));
        assert!(!g.try_reserve(60), "would exceed the budget");
        assert_eq!(g.mem_used(), 60, "denied claim was released");
        assert!(g.try_reserve(40), "exactly at the budget is fine");
        assert_eq!(g.mem_peak(), 100);
        assert_eq!(g.check(), Ok(()), "soft denial never trips");
        g.release(40);
        assert_eq!(g.mem_used(), 60);
    }

    #[test]
    fn hard_reservation_trips_memory_budget() {
        let g = QueryGuard::new(None, Some(10), None, None);
        assert_eq!(g.reserve_hard(8), Ok(()));
        assert_eq!(g.reserve_hard(8), Err(Trip::MemoryBudget));
        assert_eq!(g.check(), Err(Trip::MemoryBudget));
    }

    #[test]
    fn faults_fire_exactly_at_the_planned_visit() {
        let plan = FaultPlan::parse("hash-build:3:budget").unwrap().unwrap();
        let g = QueryGuard::new(None, None, Some(plan), None);
        assert!(g.fault_armed());
        assert_eq!(g.fire_fault(seam::MORSEL), None, "other seams don't count");
        assert_eq!(g.fire_fault(seam::HASH_BUILD), None);
        assert_eq!(g.fire_fault(seam::HASH_BUILD), None);
        assert_eq!(g.fire_fault(seam::HASH_BUILD), Some(FaultKind::Budget));
        assert_eq!(g.fire_fault(seam::HASH_BUILD), None, "fires exactly once");
        assert_eq!(g.faults_fired(), 1);
    }

    #[test]
    fn fault_specs_parse_and_validate() {
        assert_eq!(FaultPlan::parse("").unwrap(), None);
        let p = FaultPlan::parse("morsel:2").unwrap().unwrap();
        assert_eq!((p.seam, p.at, p.kind), (seam::MORSEL, 2, FaultKind::Panic));
        let p = FaultPlan::parse("enumerate:5:cancel").unwrap().unwrap();
        assert_eq!(p.kind, FaultKind::Cancel);
        for bad in [
            "nope:1",
            "morsel",
            "morsel:0",
            "morsel:x",
            "morsel:1:explode",
            "morsel:1:panic:extra",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad}");
        }
        for s in seam::ALL {
            assert!(FaultPlan::parse(&format!("{s}:1")).is_ok(), "{s}");
            assert_eq!(seam::lookup(s), Some(*s));
        }
    }

    #[test]
    fn mem_budgets_parse_with_suffixes() {
        assert_eq!(parse_mem_budget(""), Ok(None));
        assert_eq!(parse_mem_budget("0"), Ok(None));
        assert_eq!(parse_mem_budget("4096"), Ok(Some(4096)));
        assert_eq!(parse_mem_budget("64k"), Ok(Some(64 << 10)));
        assert_eq!(parse_mem_budget("64K"), Ok(Some(64 << 10)));
        assert_eq!(parse_mem_budget("2mb"), Ok(Some(2 << 20)));
        assert_eq!(parse_mem_budget("1g"), Ok(Some(1 << 30)));
        assert_eq!(parse_mem_budget("512b"), Ok(Some(512)));
        assert!(parse_mem_budget("lots").is_err());
        assert!(parse_mem_budget("-5").is_err());
    }

    #[test]
    fn panic_messages_extract_common_payloads() {
        let p: Box<dyn Any + Send> = Box::new("boom");
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p: Box<dyn Any + Send> = Box::new(String::from("kaboom"));
        assert_eq!(panic_message(p.as_ref()), "kaboom");
        let p: Box<dyn Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(p.as_ref()), "worker panicked");
    }
}
